package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hpcpower/internal/vfs"
)

// Snapshot file layout (snap-<LSN>.snap):
//
//	magic[8] lsn[u64le] payloadLen[u64le] crc[u32le] payload
//
// A snapshot is written to a temp file, fsynced, and renamed into place,
// so a crash mid-write leaves either the previous snapshot or a stray
// .tmp (ignored) — never a half-visible one. The LSN records the applied
// watermark the payload state corresponds to: recovery loads the latest
// CRC-valid snapshot and replays the WAL strictly after it.
const (
	snapMagic      = "PWRSNP1\n"
	snapHeaderSize = 8 + 8 + 8 + 4
	snapPrefix     = "snap-"
	snapSuffix     = ".snap"
)

func snapshotName(lsn uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix)
}

// WriteSnapshot atomically persists a snapshot payload taken at lsn.
func WriteSnapshot(dir string, lsn uint64, payload []byte) error {
	return WriteSnapshotFS(vfs.OS, dir, lsn, payload)
}

// WriteSnapshotFS is WriteSnapshot through an explicit filesystem. Every
// failure path removes the temp file, so repeated failing attempts (a
// full or erroring disk) never accumulate .tmp litter, and the previous
// snapshot is untouched until the final rename.
func WriteSnapshotFS(fsys vfs.FS, dir string, lsn uint64, payload []byte) error {
	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(payload, crcTable))

	tmp, err := vfs.CreateTemp(fsys, dir, snapPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	if _, err := tmp.Write(hdr); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot header: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot payload: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	final := filepath.Join(dir, snapshotName(lsn))
	if err := fsys.Rename(tmpName, final); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return syncDir(fsys, dir)
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(fsys vfs.FS, path string) (lsn uint64, payload []byte, err error) {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < snapHeaderSize || string(data[:8]) != snapMagic {
		return 0, nil, &CorruptError{Offset: 0, Reason: "bad snapshot header"}
	}
	lsn = binary.LittleEndian.Uint64(data[8:16])
	plen := binary.LittleEndian.Uint64(data[16:24])
	wantCRC := binary.LittleEndian.Uint32(data[24:28])
	body := data[snapHeaderSize:]
	if uint64(len(body)) != plen {
		return 0, nil, &CorruptError{Offset: snapHeaderSize, Reason: "snapshot payload length mismatch"}
	}
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, nil, &CorruptError{Offset: snapHeaderSize, Reason: "snapshot crc mismatch"}
	}
	return lsn, body, nil
}

// listSnapshots returns snapshot file names sorted ascending by LSN.
func listSnapshots(fsys vfs.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), snapPrefix) && strings.HasSuffix(e.Name(), snapSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// LatestSnapshot returns the newest CRC-valid snapshot in dir, skipping
// (and counting) corrupt ones — a damaged latest snapshot falls back to
// the previous one rather than failing recovery. found is false when no
// valid snapshot exists.
func LatestSnapshot(dir string) (lsn uint64, payload []byte, found bool, skippedCorrupt int, err error) {
	return LatestSnapshotFS(vfs.OS, dir)
}

// LatestSnapshotFS is LatestSnapshot through an explicit filesystem.
func LatestSnapshotFS(fsys vfs.FS, dir string) (lsn uint64, payload []byte, found bool, skippedCorrupt int, err error) {
	names, err := listSnapshots(fsys, dir)
	if err != nil {
		return 0, nil, false, 0, fmt.Errorf("wal: listing snapshots: %w", err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		l, p, rerr := readSnapshot(fsys, filepath.Join(dir, names[i]))
		if rerr == nil {
			return l, p, true, skippedCorrupt, nil
		}
		if truncatable(rerr) || os.IsNotExist(rerr) {
			skippedCorrupt++
			continue
		}
		return 0, nil, false, skippedCorrupt, fmt.Errorf("wal: reading snapshot %s: %w", names[i], rerr)
	}
	return 0, nil, false, skippedCorrupt, nil
}

// ReapSnapshots removes all but the newest keep snapshots.
func ReapSnapshots(dir string, keep int) (removed int, err error) {
	return ReapSnapshotsFS(vfs.OS, dir, keep)
}

// ReapSnapshotsFS is ReapSnapshots through an explicit filesystem.
func ReapSnapshotsFS(fsys vfs.FS, dir string, keep int) (removed int, err error) {
	if keep < 1 {
		keep = 1
	}
	names, err := listSnapshots(fsys, dir)
	if err != nil {
		return 0, fmt.Errorf("wal: listing snapshots: %w", err)
	}
	for i := 0; i < len(names)-keep; i++ {
		if err := fsys.Remove(filepath.Join(dir, names[i])); err != nil {
			return removed, fmt.Errorf("wal: reaping snapshot %s: %w", names[i], err)
		}
		removed++
	}
	return removed, nil
}
