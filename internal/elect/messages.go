// Package elect implements heartbeat-based failure detection and
// witness-quorum leader election for a primary/standby/witness group.
// It is dependency-free (stdlib only) and deliberately small: safety
// never rests on the lease clock — it rests on the fenced, forward-only
// epoch. A lease only decides *liveness* (when a node may ack and when
// a standby may try to take over); the epoch decides *correctness* (at
// most one leader can ever be granted a given epoch, because every
// voter persists the highest epoch it has promised before replying).
package elect

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Message size and field bounds: every decoder rejects input outside
// these limits so a fuzzer (or a confused peer) can never make a node
// allocate unboundedly or carry garbage identities into its state.
const (
	maxMessageBytes = 4096
	maxIDLen        = 256
	maxURLLen       = 2048
	maxReasonLen    = 512
)

var errTooLarge = errors.New("elect: message too large")

// HeartbeatRequest is sent by the leader to every peer each tick. Epoch
// is the leader's current fencing epoch. FrontierEpoch/FrontierLSN carry
// the leader's committed data frontier — the highest (epoch, LSN) it has
// released ingest acks through — so even a data-less witness learns (and
// persists) how far the group's acked history reaches, and can refuse to
// elect a candidate that would roll it back.
type HeartbeatRequest struct {
	From          string `json:"from"`
	URL           string `json:"url"`
	Epoch         uint64 `json:"epoch"`
	FrontierEpoch uint64 `json:"frontier_epoch,omitempty"`
	FrontierLSN   uint64 `json:"frontier_lsn,omitempty"`
}

// HeartbeatResponse acks (or refuses) a heartbeat. OK is true when the
// sender's epoch is still the highest the responder has promised; a
// false OK carries the higher promised epoch and, when known, the
// leader that owns it — the deposed sender uses that hint to rejoin.
type HeartbeatResponse struct {
	From      string `json:"from"`
	Epoch     uint64 `json:"epoch"`
	OK        bool   `json:"ok"`
	LeaderID  string `json:"leader_id,omitempty"`
	LeaderURL string `json:"leader_url,omitempty"`
}

// VoteRequest asks a peer to promise epoch Epoch to the candidate.
// FrontierEpoch/FrontierLSN are the candidate's committed data frontier;
// a voter refuses any candidate whose frontier is lexicographically
// behind the highest frontier the voter has seen (its own, or one
// learned from leader heartbeats) — the Raft §5.4.1 up-to-dateness rule
// adapted for a data-less witness. Without it a freshly-restarted stale
// node could win an election and truncate acked records on rejoin.
type VoteRequest struct {
	From          string `json:"from"`
	URL           string `json:"url"`
	Epoch         uint64 `json:"epoch"`
	FrontierEpoch uint64 `json:"frontier_epoch,omitempty"`
	FrontierLSN   uint64 `json:"frontier_lsn,omitempty"`
}

// VoteResponse grants or refuses a promise. A voter grants Epoch only
// if it is strictly above every epoch it has ever promised, and it
// fsyncs the new promise before replying — so each epoch is granted to
// at most one candidate across crashes and restarts.
type VoteResponse struct {
	From      string `json:"from"`
	Epoch     uint64 `json:"epoch"`
	Granted   bool   `json:"granted"`
	LeaderID  string `json:"leader_id,omitempty"`
	LeaderURL string `json:"leader_url,omitempty"`
}

func checkID(field, v string) error {
	if v == "" {
		return fmt.Errorf("elect: missing %s", field)
	}
	if len(v) > maxIDLen {
		return fmt.Errorf("elect: %s too long (%d bytes)", field, len(v))
	}
	return nil
}

func checkURL(field, v string) error {
	if len(v) > maxURLLen {
		return fmt.Errorf("elect: %s too long (%d bytes)", field, len(v))
	}
	return nil
}

// DecodeHeartbeatRequest parses and validates a heartbeat request.
// Arbitrary input yields a value or an error — never a panic.
func DecodeHeartbeatRequest(data []byte) (HeartbeatRequest, error) {
	var m HeartbeatRequest
	if len(data) > maxMessageBytes {
		return m, errTooLarge
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("elect: bad heartbeat request: %w", err)
	}
	if err := checkID("from", m.From); err != nil {
		return HeartbeatRequest{}, err
	}
	if err := checkURL("url", m.URL); err != nil {
		return HeartbeatRequest{}, err
	}
	return m, nil
}

// DecodeHeartbeatResponse parses and validates a heartbeat response.
func DecodeHeartbeatResponse(data []byte) (HeartbeatResponse, error) {
	var m HeartbeatResponse
	if len(data) > maxMessageBytes {
		return m, errTooLarge
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("elect: bad heartbeat response: %w", err)
	}
	if err := checkID("from", m.From); err != nil {
		return HeartbeatResponse{}, err
	}
	if err := checkID("leader_id", orSelf(m.LeaderID, m.From)); err != nil {
		return HeartbeatResponse{}, err
	}
	if err := checkURL("leader_url", m.LeaderURL); err != nil {
		return HeartbeatResponse{}, err
	}
	return m, nil
}

// DecodeVoteRequest parses and validates a vote request.
func DecodeVoteRequest(data []byte) (VoteRequest, error) {
	var m VoteRequest
	if len(data) > maxMessageBytes {
		return m, errTooLarge
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("elect: bad vote request: %w", err)
	}
	if err := checkID("from", m.From); err != nil {
		return VoteRequest{}, err
	}
	if err := checkURL("url", m.URL); err != nil {
		return VoteRequest{}, err
	}
	if m.Epoch == 0 {
		return VoteRequest{}, errors.New("elect: vote request for epoch 0")
	}
	return m, nil
}

// DecodeVoteResponse parses and validates a vote response.
func DecodeVoteResponse(data []byte) (VoteResponse, error) {
	var m VoteResponse
	if len(data) > maxMessageBytes {
		return m, errTooLarge
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("elect: bad vote response: %w", err)
	}
	if err := checkID("from", m.From); err != nil {
		return VoteResponse{}, err
	}
	if err := checkID("leader_id", orSelf(m.LeaderID, m.From)); err != nil {
		return VoteResponse{}, err
	}
	if err := checkURL("leader_url", m.LeaderURL); err != nil {
		return VoteResponse{}, err
	}
	return m, nil
}

// orSelf substitutes fallback when the optional field is empty, so the
// shared length check still applies to present values.
func orSelf(v, fallback string) string {
	if v == "" {
		return fallback
	}
	return v
}
