package elect

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Clock abstracts time so tests can skew, freeze, and jump it. Safety
// never depends on it: a wrong clock can delay an election or expire a
// lease early, but can never mint a second leader for an epoch.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// Transport carries election RPCs to a peer. Implementations must be
// safe for concurrent use.
type Transport interface {
	Heartbeat(ctx context.Context, url string, req HeartbeatRequest) (HeartbeatResponse, error)
	RequestVote(ctx context.Context, url string, req VoteRequest) (VoteResponse, error)
}

// Peer is one other member of the election group.
type Peer struct {
	ID      string
	URL     string
	Witness bool
}

// Config wires an Elector to its group and to the serving layer.
type Config struct {
	// ID and URL identify this node; URL is the advertised address
	// peers and the shipper should use to reach it.
	ID  string
	URL string
	// Peers are the other members (typically one data node + one
	// witness for a 3-node group).
	Peers []Peer
	// Witness marks a vote-only member: it answers heartbeats and
	// votes but never campaigns and never leads.
	Witness bool
	// Lead starts this node as the leader candidate (the configured
	// primary). Its lease is invalid at boot: it must complete one
	// quorum heartbeat round before HasLease turns true, so a deposed
	// primary restarting with a stale epoch discovers the new leader
	// instead of acking at the stale epoch.
	Lead bool

	// HeartbeatEvery is the leader heartbeat / tick cadence. 0 means
	// 250 ms.
	HeartbeatEvery time.Duration
	// LeaseTTL is how long a quorum round keeps the lease alive, and
	// how long a follower waits without hearing a leader before it
	// campaigns. 0 means 4 × HeartbeatEvery.
	LeaseTTL time.Duration

	State     *StateFile
	Clock     Clock
	Transport Transport
	// Rand yields jitter in [0,1) for election timeouts. Nil means
	// math/rand.
	Rand func() float64
	Logf func(format string, args ...any)

	// Epoch returns the local data epoch (nil on a witness). The
	// campaign epoch is max(promised, Epoch())+1 so election epochs
	// and data-fencing epochs share one space.
	Epoch func() uint64
	// Frontier returns this node's committed data frontier — the
	// highest (epoch, LSN) it has released ingest acks through (as
	// primary) or durably applied from its upstream (as follower).
	// Campaign vote requests and leader heartbeats carry it, and every
	// voter refuses candidates behind the highest frontier it has seen,
	// so a restarted stale node can never win an election and roll back
	// acked records. Nil (witness, or pre-frontier callers) means
	// "report zero", which makes the check vacuous when no member
	// reports one.
	Frontier func() (epoch, lsn uint64)
	// PromoteTo promotes the local node to primary at exactly epoch.
	// An error aborts the takeover (the epoch stays burned). Nil on a
	// witness.
	PromoteTo func(epoch uint64) error
	// LeaderChanged reports that some other node leads at epoch. It is
	// re-invoked every tick while the fact stands, so it must be cheap
	// and idempotent — the serving layer uses it to self-demote a
	// deposed primary and to (re)target a follower's upstream.
	LeaderChanged func(epoch uint64, leaderID, leaderURL string)
}

// Status is a point-in-time view of the election state for /readyz.
type Status struct {
	Role             string        `json:"role"`
	ID               string        `json:"id"`
	LeaderID         string        `json:"leader_id"`
	LeaderURL        string        `json:"leader_url"`
	Epoch            uint64        `json:"epoch"`
	FrontierEpoch    uint64        `json:"frontier_epoch"`
	FrontierLSN      uint64        `json:"frontier_lsn"`
	HasLease         bool          `json:"has_lease"`
	LeaseRemaining   time.Duration `json:"-"`
	WitnessOK        bool          `json:"witness_ok"`
	LastTransition   string        `json:"last_transition"`
	LastTransitionAt time.Time     `json:"-"`
}

// Elector runs failure detection and leader election for one node. All
// exported methods are safe for concurrent use.
type Elector struct {
	cfg Config

	mu          sync.Mutex
	isLeader    bool
	myEpoch     uint64 // epoch this node leads at (leader only)
	leaderID    string
	leaderURL   string
	leaderEpoch uint64
	leaseUntil  time.Time
	witnessOK   bool
	reason      string
	reasonAt    time.Time

	stop   chan struct{}
	done   chan struct{}
	closed bool
}

// New validates cfg and returns an Elector. Run or Tick drives it.
func New(cfg Config) (*Elector, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("elect: missing ID")
	}
	if cfg.State == nil {
		return nil, fmt.Errorf("elect: missing State")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("elect: missing Transport")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 4 * cfg.HeartbeatEvery
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if !cfg.Witness && (cfg.Epoch == nil || cfg.PromoteTo == nil) {
		return nil, fmt.Errorf("elect: data node needs Epoch and PromoteTo")
	}
	e := &Elector{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	now := cfg.Clock.Now()
	e.reasonAt = now
	switch {
	case cfg.Witness:
		e.reason = "witness"
	case cfg.Lead && cfg.State.Promised() == 0:
		// Configured primary with no promise history: lead at the
		// recovered data epoch, but with the lease already expired — no
		// acks until a quorum round confirms no higher epoch exists.
		e.isLeader = true
		e.myEpoch = cfg.Epoch()
		e.leaderID, e.leaderURL, e.leaderEpoch = cfg.ID, cfg.URL, e.myEpoch
		e.reason = "boot as configured primary (lease pending quorum)"
	case cfg.Lead:
		// Configured primary, but the promise file is non-empty: some
		// epoch ≤ promised may have been granted to another node (the
		// file records the epoch, not the grantee), so assuming
		// leadership here could put two unfenced leaders at the same
		// epoch. Boot as a follower instead — if nobody else leads, the
		// first election timeout restores leadership through a proper
		// campaign.
		e.leaseUntil = now.Add(e.electionTimeout())
		e.reason = fmt.Sprintf("boot as follower (epoch %d may be promised elsewhere)", cfg.State.Promised())
	default:
		// Follower: give an existing leader a full timeout to be heard
		// before campaigning.
		e.leaseUntil = now.Add(e.electionTimeout())
		e.reason = "boot as follower"
	}
	return e, nil
}

// electionTimeout returns LeaseTTL plus jitter so two followers do not
// campaign in lockstep.
func (e *Elector) electionTimeout() time.Duration {
	return e.cfg.LeaseTTL + time.Duration(float64(e.cfg.LeaseTTL)*e.cfg.Rand())
}

func (e *Elector) quorum() int { return (len(e.cfg.Peers)+1)/2 + 1 }

// localFrontier reports this node's own committed data frontier, or
// zero when none is wired (witness).
func (e *Elector) localFrontier() (epoch, lsn uint64) {
	if e.cfg.Frontier == nil {
		return 0, 0
	}
	return e.cfg.Frontier()
}

// knownFrontier is the highest committed frontier this node can attest
// to: the max of its own data and everything leaders have reported in
// heartbeats (persisted, so it survives a voter restart). Votes are
// refused below this line. Caller holds mu.
func (e *Elector) knownFrontier() (epoch, lsn uint64) {
	epoch, lsn = e.cfg.State.MaxFrontier()
	if le, ll := e.localFrontier(); frontierLess(epoch, lsn, le, ll) {
		epoch, lsn = le, ll
	}
	return epoch, lsn
}

// HasLease reports whether this node currently leads with a live
// lease — the gate the serving layer checks before acking writes.
func (e *Elector) HasLease() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.isLeader && e.cfg.Clock.Now().Before(e.leaseUntil)
}

// IsLeader reports whether this node believes it leads (lease or not).
func (e *Elector) IsLeader() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.isLeader
}

// Status returns the current election state for /readyz.
func (e *Elector) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Clock.Now()
	st := Status{
		ID:               e.cfg.ID,
		LeaderID:         e.leaderID,
		LeaderURL:        e.leaderURL,
		Epoch:            e.cfg.State.Promised(),
		WitnessOK:        e.witnessOK,
		LastTransition:   e.reason,
		LastTransitionAt: e.reasonAt,
	}
	st.FrontierEpoch, st.FrontierLSN = e.knownFrontier()
	switch {
	case e.cfg.Witness:
		st.Role = "witness"
	case e.isLeader:
		st.Role = "leader"
		st.Epoch = e.myEpoch
		if now.Before(e.leaseUntil) {
			st.HasLease = true
			st.LeaseRemaining = e.leaseUntil.Sub(now)
		}
	default:
		st.Role = "follower"
	}
	return st
}

// NoteLocalPromotion records an out-of-band promotion (the manual
// POST /v1/promote path) so the elector leads at that epoch instead of
// campaigning against its own node. The lease is granted provisionally;
// the next quorum round confirms or revokes it.
func (e *Elector) NoteLocalPromotion(epoch uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.cfg.State.Store(epoch); err != nil {
		e.cfg.Logf("elect: persist promotion epoch %d: %v", epoch, err)
	}
	e.isLeader = true
	e.myEpoch = epoch
	e.leaderID, e.leaderURL, e.leaderEpoch = e.cfg.ID, e.cfg.URL, epoch
	e.leaseUntil = e.cfg.Clock.Now().Add(e.cfg.LeaseTTL)
	e.transition(fmt.Sprintf("manual promotion at epoch %d", epoch))
}

// transition records a state-change reason. Caller holds mu.
func (e *Elector) transition(reason string) {
	e.reason = reason
	e.reasonAt = e.cfg.Clock.Now()
	e.cfg.Logf("elect: %s", reason)
}

// becomeFollower steps down. Caller holds mu.
func (e *Elector) becomeFollower(reason string) {
	e.isLeader = false
	e.myEpoch = 0
	e.leaseUntil = e.cfg.Clock.Now().Add(e.electionTimeout())
	e.transition(reason)
}

// Run ticks the elector every HeartbeatEvery until ctx ends or Close.
func (e *Elector) Run(ctx context.Context) {
	defer close(e.done)
	t := time.NewTicker(e.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-e.stop:
			return
		case <-t.C:
			e.Tick(ctx)
		}
	}
}

// Close stops Run and waits for the in-flight tick to finish.
func (e *Elector) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	<-e.done
}

// Tick advances the state machine one step: leaders heartbeat for
// lease renewal, followers watch for silence and campaign. Exported so
// tests drive it with a fake clock instead of the Run loop.
func (e *Elector) Tick(ctx context.Context) {
	if e.cfg.Witness {
		return
	}
	e.mu.Lock()
	leader := e.isLeader
	e.mu.Unlock()
	if leader {
		e.heartbeatRound(ctx)
	} else {
		e.followerTick(ctx)
	}
	e.notifyLeaderChange()
}

// notifyLeaderChange re-reports a foreign leader to the serving layer.
// It fires every tick while the fact stands (LeaderChanged must be
// idempotent), so a failed rejoin is retried for free.
func (e *Elector) notifyLeaderChange() {
	if e.cfg.LeaderChanged == nil {
		return
	}
	e.mu.Lock()
	notify := !e.isLeader && e.leaderID != "" && e.leaderID != e.cfg.ID && e.leaderURL != ""
	epoch, id, url := e.leaderEpoch, e.leaderID, e.leaderURL
	e.mu.Unlock()
	if notify {
		e.cfg.LeaderChanged(epoch, id, url)
	}
}

// heartbeatRound sends one heartbeat to every peer and renews the
// lease on a quorum of acks at our epoch. Any response carrying a
// higher epoch deposes us.
func (e *Elector) heartbeatRound(ctx context.Context) {
	e.mu.Lock()
	epoch := e.myEpoch
	if e.cfg.Epoch != nil {
		// The data epoch is authoritative (a manual promote may have
		// advanced it).
		if de := e.cfg.Epoch(); de > epoch {
			epoch = de
			e.myEpoch = de
		}
	}
	fe, fl := e.localFrontier()
	req := HeartbeatRequest{From: e.cfg.ID, URL: e.cfg.URL, Epoch: epoch, FrontierEpoch: fe, FrontierLSN: fl}
	peers := e.cfg.Peers
	e.mu.Unlock()

	type result struct {
		peer Peer
		resp HeartbeatResponse
		err  error
	}
	results := make(chan result, len(peers))
	rpcCtx, cancel := context.WithTimeout(ctx, e.cfg.HeartbeatEvery)
	defer cancel()
	for _, p := range peers {
		go func(p Peer) {
			resp, err := e.cfg.Transport.Heartbeat(rpcCtx, p.URL, req)
			results <- result{peer: p, resp: resp, err: err}
		}(p)
	}

	acks := 1 // self
	witnessSeen, witnessOK := false, false
	var deposedBy *HeartbeatResponse
	for range peers {
		r := <-results
		if r.peer.Witness {
			witnessSeen = true
		}
		if r.err != nil {
			continue
		}
		if r.peer.Witness {
			witnessOK = true
		}
		if r.resp.OK && r.resp.Epoch == epoch {
			acks++
		} else if r.resp.Epoch > epoch {
			resp := r.resp
			deposedBy = &resp
		} else if !r.resp.OK && r.resp.Epoch == epoch && r.resp.LeaderID != "" && r.resp.LeaderID != e.cfg.ID {
			// Same epoch, different owner: a restarted ex-primary whose
			// epoch file was advanced during a prior rejoin boots at the
			// incumbent's exact epoch. Its claim is refused but nothing is
			// numerically higher, so without this it would stall as a
			// leaderless leader forever.
			resp := r.resp
			deposedBy = &resp
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if witnessSeen {
		e.witnessOK = witnessOK
	}
	if !e.isLeader || e.myEpoch != epoch {
		return // deposed concurrently by a handler
	}
	if deposedBy != nil {
		if err := e.cfg.State.Store(deposedBy.Epoch); err != nil {
			e.cfg.Logf("elect: persist higher epoch %d: %v", deposedBy.Epoch, err)
		}
		e.leaderEpoch = deposedBy.Epoch
		e.leaderID = deposedBy.LeaderID
		e.leaderURL = deposedBy.LeaderURL
		e.becomeFollower(fmt.Sprintf("deposed: epoch %d supersedes our %d (leader %q)", deposedBy.Epoch, epoch, deposedBy.LeaderID))
		return
	}
	if acks >= e.quorum() {
		e.leaseUntil = e.cfg.Clock.Now().Add(e.cfg.LeaseTTL)
	} else if !e.cfg.Clock.Now().Before(e.leaseUntil) && e.reason != "lease lost: no quorum" {
		e.transition("lease lost: no quorum")
	}
}

// followerTick campaigns when no leader has been heard for a full
// election timeout.
func (e *Elector) followerTick(ctx context.Context) {
	e.mu.Lock()
	now := e.cfg.Clock.Now()
	if now.Before(e.leaseUntil) {
		e.mu.Unlock()
		return
	}
	// Don't campaign while our own data is known-stale: the group's
	// acked frontier (learned from leader heartbeats, persisted) reaches
	// past what we hold, so voters would refuse us anyway. Back off
	// without burning an epoch and wait to catch up via the stream — or
	// for the data-holder to return and win.
	le, ll := e.localFrontier()
	if fe, fl := e.cfg.State.MaxFrontier(); frontierLess(le, ll, fe, fl) {
		e.leaseUntil = now.Add(e.electionTimeout())
		reason := fmt.Sprintf("not campaigning: local frontier %d/%d behind group's %d/%d", le, ll, fe, fl)
		if e.reason != reason {
			e.transition(reason)
		}
		e.mu.Unlock()
		return
	}
	// Campaign: promise the next epoch to ourselves — durably, before
	// any vote request leaves the node.
	epoch := e.cfg.State.Promised()
	if de := e.cfg.Epoch(); de > epoch {
		epoch = de
	}
	epoch++
	if err := e.cfg.State.Store(epoch); err != nil {
		e.cfg.Logf("elect: persist campaign epoch %d: %v", epoch, err)
		e.leaseUntil = now.Add(e.electionTimeout())
		e.mu.Unlock()
		return
	}
	req := VoteRequest{From: e.cfg.ID, URL: e.cfg.URL, Epoch: epoch, FrontierEpoch: le, FrontierLSN: ll}
	peers := e.cfg.Peers
	e.transition(fmt.Sprintf("campaigning for epoch %d (frontier %d/%d)", epoch, le, ll))
	e.mu.Unlock()

	type result struct {
		peer Peer
		resp VoteResponse
		err  error
	}
	results := make(chan result, len(peers))
	rpcCtx, cancel := context.WithTimeout(ctx, e.cfg.HeartbeatEvery)
	defer cancel()
	for _, p := range peers {
		go func(p Peer) {
			resp, err := e.cfg.Transport.RequestVote(rpcCtx, p.URL, req)
			results <- result{peer: p, resp: resp, err: err}
		}(p)
	}

	grants := 1 // own vote
	witnessSeen, witnessOK := false, false
	var ahead *VoteResponse
	for range peers {
		r := <-results
		if r.peer.Witness {
			witnessSeen = true
		}
		if r.err != nil {
			continue
		}
		if r.peer.Witness {
			witnessOK = true
		}
		if r.resp.Granted {
			grants++
		} else if r.resp.Epoch > epoch {
			resp := r.resp
			ahead = &resp
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if witnessSeen {
		e.witnessOK = witnessOK
	}
	if ahead != nil {
		// A higher epoch exists; adopt what we learned and back off.
		if err := e.cfg.State.Store(ahead.Epoch); err != nil {
			e.cfg.Logf("elect: persist higher epoch %d: %v", ahead.Epoch, err)
		}
		if ahead.LeaderID != "" {
			e.leaderEpoch, e.leaderID, e.leaderURL = ahead.Epoch, ahead.LeaderID, ahead.LeaderURL
		}
		e.leaseUntil = e.cfg.Clock.Now().Add(e.electionTimeout())
		e.transition(fmt.Sprintf("campaign for epoch %d lost: epoch %d exists", epoch, ahead.Epoch))
		return
	}
	if e.isLeader || e.cfg.State.Promised() != epoch {
		// A handler promoted us or granted a higher epoch mid-campaign;
		// our quorum (if any) is stale.
		return
	}
	if grants < e.quorum() {
		e.leaseUntil = e.cfg.Clock.Now().Add(e.electionTimeout())
		e.transition(fmt.Sprintf("campaign for epoch %d failed: %d/%d votes", epoch, grants, e.quorum()))
		return
	}
	if err := e.cfg.PromoteTo(epoch); err != nil {
		e.cfg.Logf("elect: promote to epoch %d refused: %v", epoch, err)
		e.leaseUntil = e.cfg.Clock.Now().Add(e.electionTimeout())
		e.transition(fmt.Sprintf("won epoch %d but promotion refused", epoch))
		return
	}
	e.isLeader = true
	e.myEpoch = epoch
	e.leaderID, e.leaderURL, e.leaderEpoch = e.cfg.ID, e.cfg.URL, epoch
	e.leaseUntil = e.cfg.Clock.Now().Add(e.cfg.LeaseTTL)
	e.transition(fmt.Sprintf("won election: leading at epoch %d (%d/%d votes)", epoch, grants, e.quorum()))
}

// OnHeartbeat handles a leader's heartbeat: accept (and promise) its
// epoch if nothing higher has been promised, refuse with the higher
// epoch and leader hint otherwise.
func (e *Elector) OnHeartbeat(req HeartbeatRequest) HeartbeatResponse {
	e.mu.Lock()
	defer e.mu.Unlock()
	resp := HeartbeatResponse{From: e.cfg.ID}
	promised := e.cfg.State.Promised()
	// Record the sender's committed frontier before anything else. Even
	// a heartbeat we are about to refuse came from a node that held a
	// lease when it released those acks, so the frontier is real acked
	// history; recording it (forward-only) can only tighten the vote
	// check. It is fsynced before the reply, and acks only flow under a
	// lease renewed by these rounds — so every released ack is covered,
	// within one heartbeat round, by a frontier durably held on a
	// quorum. The residual round only matters for vacuous (no-follower)
	// acks; with a live sync follower its own data covers the gap.
	if err := e.cfg.State.NoteFrontier(req.FrontierEpoch, req.FrontierLSN); err != nil {
		e.cfg.Logf("elect: persist frontier %d/%d: %v", req.FrontierEpoch, req.FrontierLSN, err)
		resp.Epoch = promised
		return resp
	}
	switch {
	case req.Epoch < promised:
		resp.Epoch = promised
		resp.LeaderID, resp.LeaderURL = e.leaderID, e.leaderURL
	case req.Epoch == promised && e.leaderEpoch == req.Epoch && e.leaderID != "" && e.leaderID != req.From:
		// This epoch already has a different owner — refuse the claim.
		resp.Epoch = promised
		resp.LeaderID, resp.LeaderURL = e.leaderID, e.leaderURL
	default:
		if err := e.cfg.State.Store(req.Epoch); err != nil {
			e.cfg.Logf("elect: persist heartbeat epoch %d: %v", req.Epoch, err)
			resp.Epoch = promised
			return resp
		}
		if e.isLeader && req.From != e.cfg.ID {
			e.becomeFollower(fmt.Sprintf("deposed by heartbeat: %q leads at epoch %d", req.From, req.Epoch))
		}
		e.leaderID, e.leaderURL, e.leaderEpoch = req.From, req.URL, req.Epoch
		if !e.isLeader {
			e.leaseUntil = e.cfg.Clock.Now().Add(e.electionTimeout())
		}
		resp.OK = true
		resp.Epoch = req.Epoch
		resp.LeaderID, resp.LeaderURL = e.leaderID, e.leaderURL
	}
	return resp
}

// OnVote handles a vote request: grant iff the requested epoch is
// strictly above every promise ever made, persisting the new promise
// before the grant leaves the node.
func (e *Elector) OnVote(req VoteRequest) VoteResponse {
	e.mu.Lock()
	defer e.mu.Unlock()
	resp := VoteResponse{From: e.cfg.ID}
	promised := e.cfg.State.Promised()
	if req.Epoch <= promised {
		resp.Epoch = promised
		resp.LeaderID, resp.LeaderURL = e.leaderID, e.leaderURL
		return resp
	}
	// Up-to-dateness (Raft §5.4.1, adapted): refuse any candidate whose
	// data frontier is behind the highest this voter can attest to — its
	// own data, or a frontier a leader reported in a heartbeat. Electing
	// such a candidate would force the real data-holder to truncate
	// acked records when it rejoins. The refusal does not burn a
	// promise, so the epoch stays winnable by an up-to-date candidate.
	if fe, fl := e.knownFrontier(); frontierLess(req.FrontierEpoch, req.FrontierLSN, fe, fl) {
		resp.Epoch = promised
		resp.LeaderID, resp.LeaderURL = e.leaderID, e.leaderURL
		e.cfg.Logf("elect: refusing vote for %q at epoch %d: candidate frontier %d/%d behind known %d/%d",
			req.From, req.Epoch, req.FrontierEpoch, req.FrontierLSN, fe, fl)
		return resp
	}
	if err := e.cfg.State.Store(req.Epoch); err != nil {
		e.cfg.Logf("elect: persist vote epoch %d: %v", req.Epoch, err)
		resp.Epoch = promised
		return resp
	}
	if e.isLeader {
		e.becomeFollower(fmt.Sprintf("granted epoch %d to %q; stepping down from %d", req.Epoch, req.From, e.myEpoch))
	} else {
		e.leaseUntil = e.cfg.Clock.Now().Add(e.electionTimeout())
	}
	// The grantee is this epoch's owner-elect: nobody else can assemble
	// a quorum at req.Epoch once this promise is fsynced, so a later
	// same-epoch heartbeat from anyone else (a restarted ex-primary
	// booting at an epoch it never won) must be refused, not adopted.
	e.leaderID, e.leaderURL, e.leaderEpoch = req.From, req.URL, req.Epoch
	resp.Granted = true
	resp.Epoch = req.Epoch
	return resp
}
