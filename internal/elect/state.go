package elect

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// StateFile persists the two durable facts election safety needs:
//
//   - the highest epoch this node has ever promised — by granting a
//     vote, by winning an election, or by accepting a leader's
//     heartbeat. A voter that crashes after granting epoch E must never
//     grant E again.
//   - the highest committed data frontier (epoch, LSN) this node has
//     seen — its own, or one learned from a leader's heartbeat. A voter
//     that has seen acked data reach (e, l) must never elect a
//     candidate behind that point, or the group would truncate acked
//     records when the stale winner forces the data-holder to rejoin.
//
// Both are fsynced (tmp file + fsync + rename + directory sync) before
// the reply that depends on them leaves the node, and both only move
// forward.
//
// File format: "promised [frontierEpoch frontierLSN]\n". The one-field
// form is the pre-frontier format and still parses (frontier 0,0).
type StateFile struct {
	path      string
	promised  uint64
	frontierE uint64
	frontierL uint64
}

// OpenStateFile loads the promised epoch and max-seen frontier from
// path, treating a missing file as a node that has promised and seen
// nothing.
func OpenStateFile(path string) (*StateFile, error) {
	s := &StateFile{path: path}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("elect: read state: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) != 1 && len(fields) != 3 {
		return nil, fmt.Errorf("elect: parse state %q: want 1 or 3 fields, got %d", path, len(fields))
	}
	vals := make([]uint64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("elect: parse state %q: %w", path, err)
		}
		vals[i] = v
	}
	s.promised = vals[0]
	if len(vals) == 3 {
		s.frontierE, s.frontierL = vals[1], vals[2]
	}
	return s, nil
}

// Promised returns the highest promised epoch.
func (s *StateFile) Promised() uint64 { return s.promised }

// MaxFrontier returns the highest committed data frontier this node has
// durably recorded, as a lexicographic (epoch, LSN) pair.
func (s *StateFile) MaxFrontier() (epoch, lsn uint64) {
	return s.frontierE, s.frontierL
}

// Store durably records a promise for epoch. Promises only move
// forward; storing an epoch at or below the current promise is a no-op,
// so a delayed or replayed message can never roll the promise back.
func (s *StateFile) Store(epoch uint64) error {
	if epoch <= s.promised {
		return nil
	}
	return s.write(epoch, s.frontierE, s.frontierL)
}

// NoteFrontier durably records that the group's acked history reaches
// (epoch, lsn). Forward-only under lexicographic order; recording a
// frontier at or behind the current one is a no-op.
func (s *StateFile) NoteFrontier(epoch, lsn uint64) error {
	if !frontierLess(s.frontierE, s.frontierL, epoch, lsn) {
		return nil
	}
	return s.write(s.promised, epoch, lsn)
}

func (s *StateFile) write(promised, fe, fl uint64) error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("elect: write state: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d %d %d\n", promised, fe, fl); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("elect: write state: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("elect: sync state: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("elect: close state: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("elect: rename state: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(s.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	s.promised, s.frontierE, s.frontierL = promised, fe, fl
	return nil
}

// frontierLess reports whether frontier (e1, l1) is strictly behind
// (e2, l2) in lexicographic order. Epoch dominates: each epoch's leader
// was elected at or past the previous epoch's acked frontier, so a
// higher-epoch frontier always covers a lower-epoch one even when the
// LSN spaces differ across leaders.
func frontierLess(e1, l1, e2, l2 uint64) bool {
	return e1 < e2 || (e1 == e2 && l1 < l2)
}
