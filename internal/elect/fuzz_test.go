package elect

import (
	"encoding/json"
	"testing"
)

// FuzzElectDecode feeds arbitrary bytes to every election message
// decoder: each must return a value or an error — never panic — and an
// accepted message must survive an encode/decode round trip.
func FuzzElectDecode(f *testing.F) {
	f.Add([]byte(`{"from":"a","url":"http://a","epoch":3}`))
	f.Add([]byte(`{"from":"a","url":"http://a","epoch":3,"frontier_epoch":3,"frontier_lsn":120}`))
	f.Add([]byte(`{"from":"a","epoch":5,"frontier_lsn":18446744073709551615}`))
	f.Add([]byte(`{"from":"w","epoch":4,"ok":true,"leader_id":"b","leader_url":"http://b"}`))
	f.Add([]byte(`{"from":"b","epoch":9,"granted":true}`))
	f.Add([]byte(`{"from":""}`))
	f.Add([]byte(`{"epoch":18446744073709551615}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeHeartbeatRequest(data); err == nil {
			enc, _ := json.Marshal(m)
			m2, err := DecodeHeartbeatRequest(enc)
			if err != nil || m2 != m {
				t.Fatalf("heartbeat request round trip: %+v -> %+v (%v)", m, m2, err)
			}
		}
		if m, err := DecodeHeartbeatResponse(data); err == nil {
			enc, _ := json.Marshal(m)
			m2, err := DecodeHeartbeatResponse(enc)
			if err != nil || m2 != m {
				t.Fatalf("heartbeat response round trip: %+v -> %+v (%v)", m, m2, err)
			}
		}
		if m, err := DecodeVoteRequest(data); err == nil {
			if m.Epoch == 0 {
				t.Fatal("vote request for epoch 0 accepted")
			}
			enc, _ := json.Marshal(m)
			m2, err := DecodeVoteRequest(enc)
			if err != nil || m2 != m {
				t.Fatalf("vote request round trip: %+v -> %+v (%v)", m, m2, err)
			}
		}
		if m, err := DecodeVoteResponse(data); err == nil {
			enc, _ := json.Marshal(m)
			m2, err := DecodeVoteResponse(enc)
			if err != nil || m2 != m {
				t.Fatalf("vote response round trip: %+v -> %+v (%v)", m, m2, err)
			}
		}
	})
}
