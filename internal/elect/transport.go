package elect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Paths for the election RPCs, shared by the handler and transport.
const (
	PathHeartbeat = "/v1/elect/heartbeat"
	PathVote      = "/v1/elect/vote"
)

// HTTPTransport carries election RPCs as POSTed JSON.
type HTTPTransport struct {
	// Client is the HTTP client. Nil means a client with a 2 s timeout.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

func (t *HTTPTransport) post(ctx context.Context, url, path string, msg any) ([]byte, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("elect: encode: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("elect: request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxMessageBytes+1))
	if err != nil {
		return nil, fmt.Errorf("elect: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("elect: %s: http %d", path, resp.StatusCode)
	}
	return data, nil
}

// Heartbeat implements Transport.
func (t *HTTPTransport) Heartbeat(ctx context.Context, url string, req HeartbeatRequest) (HeartbeatResponse, error) {
	data, err := t.post(ctx, url, PathHeartbeat, req)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	return DecodeHeartbeatResponse(data)
}

// RequestVote implements Transport.
func (t *HTTPTransport) RequestVote(ctx context.Context, url string, req VoteRequest) (VoteResponse, error) {
	data, err := t.post(ctx, url, PathVote, req)
	if err != nil {
		return VoteResponse{}, err
	}
	return DecodeVoteResponse(data)
}

// Handler serves the election RPC endpoints for e. Mount it on the
// node's mux; witnesses serve little else.
func Handler(e *Elector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxMessageBytes+1))
		if err != nil {
			http.Error(w, "read body", http.StatusBadRequest)
			return
		}
		req, err := DecodeHeartbeatRequest(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeMsg(w, e.OnHeartbeat(req))
	})
	mux.HandleFunc("POST "+PathVote, func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxMessageBytes+1))
		if err != nil {
			http.Error(w, "read body", http.StatusBadRequest)
			return
		}
		req, err := DecodeVoteRequest(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeMsg(w, e.OnVote(req))
	})
	return mux
}

func writeMsg(w http.ResponseWriter, msg any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(msg)
}
