package elect

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func writeLegacyState(path, contents string) error {
	return os.WriteFile(path, []byte(contents), 0o644)
}

// fakeClock is a manually-advanced clock; each node gets its own so
// tests can skew and jump them independently.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// memNet delivers RPCs by calling the target elector's handler
// directly, with per-directed-link partitions.
type memNet struct {
	mu    sync.Mutex
	nodes map[string]*Elector // keyed by URL
	cut   map[string]bool     // "from->to" blocked
}

func newMemNet() *memNet {
	return &memNet{nodes: make(map[string]*Elector), cut: make(map[string]bool)}
}

func (n *memNet) add(url string, e *Elector) { n.nodes[url] = e }

// isolate cuts every link to and from url (symmetric partition).
func (n *memNet) isolate(url string, others ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, o := range others {
		n.cut[url+"->"+o] = true
		n.cut[o+"->"+url] = true
	}
}

func (n *memNet) heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[string]bool)
}

func (n *memNet) blocked(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cut[from+"->"+to]
}

type memTransport struct {
	net  *memNet
	from string
}

func (t *memTransport) Heartbeat(_ context.Context, url string, req HeartbeatRequest) (HeartbeatResponse, error) {
	if t.net.blocked(t.from, url) {
		return HeartbeatResponse{}, fmt.Errorf("partitioned")
	}
	e, ok := t.net.nodes[url]
	if !ok {
		return HeartbeatResponse{}, fmt.Errorf("no node at %s", url)
	}
	return e.OnHeartbeat(req), nil
}

func (t *memTransport) RequestVote(_ context.Context, url string, req VoteRequest) (VoteResponse, error) {
	if t.net.blocked(t.from, url) {
		return VoteResponse{}, fmt.Errorf("partitioned")
	}
	e, ok := t.net.nodes[url]
	if !ok {
		return VoteResponse{}, fmt.Errorf("no node at %s", url)
	}
	return e.OnVote(req), nil
}

// group is a 3-node test harness: data nodes a and b plus witness w.
type group struct {
	t          *testing.T
	net        *memNet
	a, b, w    *Elector
	ca, cb, cw *fakeClock

	mu         sync.Mutex
	dataEpochs map[string]uint64   // node id -> data epoch
	frontiers  map[string]uint64   // node id -> committed frontier LSN
	promotions map[uint64][]string // epoch -> node ids that won it
	leaders    map[string]string   // node id -> last LeaderChanged URL
}

const (
	hb  = 100 * time.Millisecond
	ttl = 400 * time.Millisecond
)

func newGroup(t *testing.T) *group {
	t.Helper()
	g := &group{
		t:          t,
		net:        newMemNet(),
		ca:         newFakeClock(),
		cb:         newFakeClock(),
		cw:         newFakeClock(),
		dataEpochs: map[string]uint64{"a": 1, "b": 0},
		frontiers:  make(map[string]uint64),
		promotions: make(map[uint64][]string),
		leaders:    make(map[string]string),
	}
	dir := t.TempDir()
	peerA := Peer{ID: "a", URL: "http://a"}
	peerB := Peer{ID: "b", URL: "http://b"}
	peerW := Peer{ID: "w", URL: "http://w", Witness: true}
	mk := func(id, url string, peers []Peer, clock *fakeClock, lead, witness bool) *Elector {
		sf, err := OpenStateFile(filepath.Join(dir, id+".promised"))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			ID: id, URL: url, Peers: peers,
			Witness: witness, Lead: lead,
			HeartbeatEvery: hb, LeaseTTL: ttl,
			State:     sf,
			Clock:     clock,
			Transport: &memTransport{net: g.net, from: url},
			Rand:      func() float64 { return 0.5 },
		}
		if !witness {
			cfg.Epoch = func() uint64 {
				g.mu.Lock()
				defer g.mu.Unlock()
				return g.dataEpochs[id]
			}
			cfg.PromoteTo = func(epoch uint64) error {
				g.mu.Lock()
				defer g.mu.Unlock()
				g.promotions[epoch] = append(g.promotions[epoch], id)
				g.dataEpochs[id] = epoch
				return nil
			}
			cfg.LeaderChanged = func(epoch uint64, _, url string) {
				g.mu.Lock()
				defer g.mu.Unlock()
				g.leaders[id] = url
				// Model the replication stream's ObserveEpoch: a live
				// follower adopts its leader's epoch, so the frontier it
				// advertises when campaigning carries the current epoch.
				if epoch > g.dataEpochs[id] {
					g.dataEpochs[id] = epoch
				}
			}
			cfg.Frontier = func() (uint64, uint64) {
				g.mu.Lock()
				defer g.mu.Unlock()
				return g.dataEpochs[id], g.frontiers[id]
			}
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.net.add(url, e)
		return e
	}
	g.a = mk("a", "http://a", []Peer{peerB, peerW}, g.ca, true, false)
	g.b = mk("b", "http://b", []Peer{peerA, peerW}, g.cb, false, false)
	g.w = mk("w", "http://w", []Peer{peerA, peerB}, g.cw, false, true)
	return g
}

func (g *group) tickAll() {
	ctx := context.Background()
	g.a.Tick(ctx)
	g.b.Tick(ctx)
	g.w.Tick(ctx)
	g.checkInvariants()
}

// checkInvariants asserts the safety property the whole design hangs
// on: every epoch has at most one winner, and no two nodes lead at the
// same epoch at the same instant.
func (g *group) checkInvariants() {
	g.t.Helper()
	g.mu.Lock()
	for epoch, ids := range g.promotions {
		if len(ids) > 1 {
			g.t.Fatalf("epoch %d promoted on %d nodes: %v", epoch, len(ids), ids)
		}
	}
	g.mu.Unlock()
	sa, sb := g.a.Status(), g.b.Status()
	if sa.Role == "leader" && sb.Role == "leader" && sa.Epoch == sb.Epoch {
		g.t.Fatalf("two leaders at epoch %d", sa.Epoch)
	}
}

// advanceAll moves every clock in lockstep (the synchronized-clock
// baseline; skew tests move them independently).
func (g *group) advanceAll(d time.Duration) {
	g.ca.Advance(d)
	g.cb.Advance(d)
	g.cw.Advance(d)
}

func TestLeaderAcquiresLeaseAfterQuorumRound(t *testing.T) {
	g := newGroup(t)
	if g.a.HasLease() {
		t.Fatal("configured primary must boot without a lease")
	}
	g.tickAll()
	if !g.a.HasLease() {
		t.Fatal("leader should hold the lease after a quorum round")
	}
	st := g.a.Status()
	if st.Role != "leader" || st.Epoch != 1 || !st.WitnessOK {
		t.Fatalf("bad leader status: %+v", st)
	}
	if st := g.b.Status(); st.Role != "follower" || st.LeaderID != "a" {
		t.Fatalf("follower should have learned the leader: %+v", st)
	}
}

func TestFailoverOnLeaderSilence(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	// Symmetric partition of the primary: it can reach nobody, nobody
	// can reach it.
	g.net.isolate("http://a", "http://b", "http://w")
	for i := 0; i < 20 && !g.b.IsLeader(); i++ {
		g.advanceAll(hb)
		g.tickAll()
	}
	if !g.b.IsLeader() || !g.b.HasLease() {
		t.Fatal("standby did not take over after leader silence")
	}
	if g.a.HasLease() {
		t.Fatal("partitioned leader kept its lease past the TTL")
	}
	if st := g.b.Status(); st.Epoch != 2 {
		t.Fatalf("takeover should land at epoch 2, got %d", st.Epoch)
	}
	// Heal: the deposed primary must discover the new leader on its
	// next heartbeat round and report it via LeaderChanged.
	g.net.heal()
	for i := 0; i < 10; i++ {
		g.advanceAll(hb)
		g.tickAll()
	}
	if g.a.IsLeader() {
		t.Fatal("deposed primary still thinks it leads after heal")
	}
	g.mu.Lock()
	url := g.leaders["a"]
	g.mu.Unlock()
	if url != "http://b" {
		t.Fatalf("deposed primary learned leader %q, want http://b", url)
	}
}

func TestLeaderLosesLeaseWithoutQuorumAndRegainsIt(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	// Asymmetric partition: the leader cannot reach anyone, but the
	// followers' own clocks have not timed out yet — no election.
	g.net.isolate("http://a", "http://b", "http://w")
	g.ca.Advance(ttl + hb)
	g.a.Tick(context.Background())
	if g.a.HasLease() {
		t.Fatal("leader kept lease without a quorum")
	}
	// Heal before anyone campaigns: the same leader regains the lease
	// at the same epoch — no epoch burned on a blip.
	g.net.heal()
	g.a.Tick(context.Background())
	if !g.a.HasLease() {
		t.Fatal("leader did not regain lease after heal")
	}
	if st := g.a.Status(); st.Epoch != 1 {
		t.Fatalf("blip should not burn an epoch, got %d", st.Epoch)
	}
}

// TestSkewedClockDelaysElectionButNeverSplitsAnEpoch pins the headline
// safety claim: clock skew can stall or hasten elections, but every
// epoch still has exactly one owner because ownership is a persisted
// promise, not a timestamp.
func TestSkewedClockDelaysElectionButNeverSplitsAnEpoch(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	g.net.isolate("http://a", "http://b", "http://w")
	// The standby's clock is frozen: no matter how much real time the
	// leader loses, the standby never campaigns — liveness is lost,
	// safety is kept.
	g.ca.Advance(10 * ttl)
	g.cw.Advance(10 * ttl)
	for i := 0; i < 10; i++ {
		g.tickAll()
	}
	if g.b.IsLeader() {
		t.Fatal("frozen-clock standby should not have campaigned")
	}
	// Now the standby's clock jumps far ahead in one step: exactly one
	// election fires and it lands on a fresh epoch.
	g.cb.Advance(100 * ttl)
	for i := 0; i < 10; i++ {
		g.tickAll()
	}
	if !g.b.IsLeader() {
		t.Fatal("standby should win after its clock jump")
	}
	g.mu.Lock()
	winners := len(g.promotions[2])
	g.mu.Unlock()
	if winners != 1 {
		t.Fatalf("epoch 2 should have exactly one winner, got %d", winners)
	}
}

// TestJumpingClocksUnderChurn drives a randomized schedule of clock
// jumps, partitions, and heals, asserting after every step that no
// epoch ever has two owners and no two nodes lead the same epoch.
func TestJumpingClocksUnderChurn(t *testing.T) {
	g := newGroup(t)
	rng := rand.New(rand.NewSource(11))
	clocks := []*fakeClock{g.ca, g.cb, g.cw}
	urls := []string{"http://a", "http://b", "http://w"}
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0: // jump one clock ahead
			clocks[rng.Intn(3)].Advance(time.Duration(rng.Int63n(int64(3 * ttl))))
		case 1: // symmetric partition of one node
			u := urls[rng.Intn(3)]
			var others []string
			for _, o := range urls {
				if o != u {
					others = append(others, o)
				}
			}
			g.net.isolate(u, others...)
		case 2:
			g.net.heal()
		default:
			g.advanceAll(hb)
		}
		g.tickAll()
	}
}

// TestCampaignWithSkewedCandidateAgainstHealthyLeader: a standby whose
// clock races ahead campaigns against a live, connected leader. The
// vote mechanism makes this safe: the leader itself grants the higher
// epoch and steps down — one leader per epoch, no split.
func TestCampaignWithSkewedCandidateAgainstHealthyLeader(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	// The jump lands between heartbeats: the standby's election timer
	// (set at the last heartbeat, on its own clock) is now long past.
	g.cb.Advance(3 * ttl)
	g.b.Tick(context.Background())
	g.checkInvariants()
	if !g.b.IsLeader() {
		t.Fatal("fast-clock standby should have won the election")
	}
	if g.a.IsLeader() {
		t.Fatal("old leader must step down after granting a higher epoch")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.promotions[2]) != 1 || g.promotions[2][0] != "b" {
		t.Fatalf("epoch 2 owners: %v", g.promotions[2])
	}
}

// TestVotePromiseSurvivesRestart: a voter that granted an epoch and
// crashed must refuse the same epoch after restart — the fsynced state
// file is what makes epochs unique across crashes.
func TestVotePromiseSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "promised")
	sf, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mkWitness := func(sf *StateFile) *Elector {
		e, err := New(Config{
			ID: "w", URL: "http://w", Witness: true,
			State: sf, Clock: newFakeClock(), Transport: &memTransport{net: newMemNet()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	w := mkWitness(sf)
	if resp := w.OnVote(VoteRequest{From: "a", URL: "http://a", Epoch: 7}); !resp.Granted {
		t.Fatal("first grant refused")
	}
	// "Crash": reopen the state file into a fresh elector.
	sf2, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := sf2.Promised(); got != 7 {
		t.Fatalf("promise not durable: %d", got)
	}
	w2 := mkWitness(sf2)
	if resp := w2.OnVote(VoteRequest{From: "b", URL: "http://b", Epoch: 7}); resp.Granted {
		t.Fatal("epoch 7 granted twice across a crash")
	}
	if resp := w2.OnVote(VoteRequest{From: "b", URL: "http://b", Epoch: 8}); !resp.Granted {
		t.Fatal("higher epoch should still be grantable")
	}
}

func TestWitnessNeverCampaigns(t *testing.T) {
	g := newGroup(t)
	g.net.isolate("http://a", "http://b", "http://w")
	g.net.isolate("http://b", "http://w")
	for i := 0; i < 30; i++ {
		g.advanceAll(ttl)
		g.tickAll()
	}
	if st := g.w.Status(); st.Role != "witness" {
		t.Fatalf("witness changed role: %+v", st)
	}
}

func TestPromotionRefusalKeepsFollower(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	// Make b's promotion fail (e.g. the node is still recovering).
	g.mu.Lock()
	g.promotions = map[uint64][]string{}
	g.mu.Unlock()
	refuse := func(epoch uint64) error { return fmt.Errorf("still recovering") }
	g.b.cfg.PromoteTo = refuse
	g.net.isolate("http://a", "http://b", "http://w")
	g.advanceAll(2 * ttl)
	g.b.Tick(context.Background())
	if g.b.IsLeader() {
		t.Fatal("refused promotion must not make a leader")
	}
	if st := g.b.Status(); st.Role != "follower" {
		t.Fatalf("want follower, got %+v", st)
	}
}

// TestRestartedExPrimaryAtIncumbentEpochDefers: a rejoined-then-
// restarted ex-primary boots with -role primary at the SAME data epoch
// the incumbent leads at (its epoch file was advanced during the
// rejoin). Its heartbeat is refused with an equal — not higher — epoch,
// which must still depose it, or it stalls as a leaderless leader.
func TestRestartedExPrimaryAtIncumbentEpochDefers(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	// b takes over at epoch 2.
	g.net.isolate("http://a", "http://b", "http://w")
	for i := 0; i < 20 && !g.b.IsLeader(); i++ {
		g.advanceAll(hb)
		g.tickAll()
	}
	if !g.b.IsLeader() {
		t.Fatal("standby did not take over")
	}
	// "Restart" a as a configured primary whose data epoch was advanced
	// to 2 by a prior rejoin: fresh elector, Lead=true, Epoch()==2.
	g.mu.Lock()
	g.dataEpochs["a"] = 2
	g.mu.Unlock()
	sf, err := OpenStateFile(filepath.Join(t.TempDir(), "a2.promised"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(Config{
		ID: "a", URL: "http://a",
		Peers:          []Peer{{ID: "b", URL: "http://b"}, {ID: "w", URL: "http://w", Witness: true}},
		Lead:           true,
		HeartbeatEvery: hb, LeaseTTL: ttl,
		State: sf, Clock: g.ca,
		Transport: &memTransport{net: g.net, from: "http://a"},
		Rand:      func() float64 { return 0.5 },
		Epoch:     func() uint64 { return 2 },
		PromoteTo: func(uint64) error { return fmt.Errorf("must not promote") },
		LeaderChanged: func(_ uint64, _, url string) {
			g.mu.Lock()
			g.leaders["a"] = url
			g.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.net.nodes["http://a"] = a2
	g.net.heal()
	for i := 0; i < 5 && a2.IsLeader(); i++ {
		g.advanceAll(hb)
		a2.Tick(context.Background())
		g.b.Tick(context.Background())
		g.w.Tick(context.Background())
	}
	if a2.IsLeader() {
		t.Fatal("restarted ex-primary at the incumbent's epoch was not deposed")
	}
	if !g.b.IsLeader() {
		t.Fatal("incumbent must keep leading")
	}
	g.mu.Lock()
	url := g.leaders["a"]
	g.mu.Unlock()
	if url != "http://b" {
		t.Fatalf("deposed node learned leader %q, want http://b", url)
	}
}

// TestBootAsFollowerWhenEpochPromised: a node configured with Lead=true
// whose promise file is non-empty must NOT boot as leader — the promised
// epoch may have been granted to another node, and booting as leader at
// it would put two unfenced leaders at the same epoch (the exact
// sequence that loses acked records: the impostor deposes the real
// leader, which then truncates on rejoin). Leadership must come back
// only through a campaign.
func TestBootAsFollowerWhenEpochPromised(t *testing.T) {
	dir := t.TempDir()
	sf, err := OpenStateFile(filepath.Join(dir, "promised"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Store(4); err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	promoted := 0
	e, err := New(Config{
		ID: "a", URL: "http://a",
		Peers:          []Peer{{ID: "w", URL: "http://w", Witness: true}},
		Lead:           true,
		HeartbeatEvery: hb, LeaseTTL: ttl,
		State: sf, Clock: clock,
		Transport: &memTransport{net: newMemNet()},
		Rand:      func() float64 { return 0.5 },
		Epoch:     func() uint64 { return 4 },
		PromoteTo: func(uint64) error { promoted++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.IsLeader() {
		t.Fatal("Lead=true with a non-empty promise file must boot as follower")
	}
	if st := e.Status(); st.Role != "follower" {
		t.Fatalf("want follower, got %+v", st)
	}
	_ = promoted
}

// TestBootFollowerRegainsLeadershipByCampaign: the boot-as-follower rule
// must not strand a healthy group leaderless — after an election
// timeout the restarted node campaigns at a fresh epoch and wins.
func TestBootFollowerRegainsLeadershipByCampaign(t *testing.T) {
	g := newGroup(t)
	g.tickAll()
	// Restart the leader with its promise file carrying its own epoch
	// (it stored epoch 2 when it won an election, say).
	sf, err := OpenStateFile(filepath.Join(t.TempDir(), "a.promised"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Store(1); err != nil {
		t.Fatal(err)
	}
	a2, err := New(Config{
		ID: "a", URL: "http://a",
		Peers:          []Peer{{ID: "b", URL: "http://b"}, {ID: "w", URL: "http://w", Witness: true}},
		Lead:           true,
		HeartbeatEvery: hb, LeaseTTL: ttl,
		State: sf, Clock: g.ca,
		Transport: &memTransport{net: g.net, from: "http://a"},
		Rand:      func() float64 { return 0.5 },
		Epoch: func() uint64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.dataEpochs["a"]
		},
		PromoteTo: func(epoch uint64) error {
			g.mu.Lock()
			defer g.mu.Unlock()
			g.promotions[epoch] = append(g.promotions[epoch], "a")
			g.dataEpochs["a"] = epoch
			return nil
		},
		Frontier: func() (uint64, uint64) {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.dataEpochs["a"], g.frontiers["a"]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a2.IsLeader() {
		t.Fatal("restart with promised epoch must boot as follower")
	}
	g.net.nodes["http://a"] = a2
	for i := 0; i < 30 && !a2.IsLeader() && !g.b.IsLeader(); i++ {
		g.advanceAll(hb)
		a2.Tick(context.Background())
		g.b.Tick(context.Background())
		g.checkInvariants()
	}
	if !a2.IsLeader() && !g.b.IsLeader() {
		t.Fatal("group stayed leaderless after a boot-as-follower restart")
	}
}

// TestStaleCandidateRefused is the acked-data-loss scenario end to end:
// the leader's heartbeats teach the witness how far acked history
// reaches; a data node holding less than that must not be electable,
// while the real data-holder must be.
func TestStaleCandidateRefused(t *testing.T) {
	g := newGroup(t)
	g.mu.Lock()
	g.frontiers["a"] = 100 // a acked through lsn 100
	g.frontiers["b"] = 40  // b's replica is far behind
	g.mu.Unlock()
	g.tickAll() // heartbeat round: w and b learn a's frontier (1, 100)
	if fe, fl := g.w.cfg.State.MaxFrontier(); fe != 1 || fl != 100 {
		t.Fatalf("witness frontier after heartbeat: %d/%d, want 1/100", fe, fl)
	}
	// a dies; b campaigns with its stale frontier.
	g.net.isolate("http://a", "http://b", "http://w")
	for i := 0; i < 20; i++ {
		g.advanceAll(hb)
		g.tickAll()
	}
	if g.b.IsLeader() {
		t.Fatal("stale candidate won an election over acked data")
	}
	// b catches up (e.g. finishes draining the stream) — now electable.
	g.mu.Lock()
	g.frontiers["b"] = 100
	g.mu.Unlock()
	for i := 0; i < 30 && !g.b.IsLeader(); i++ {
		g.advanceAll(hb)
		g.tickAll()
	}
	if !g.b.IsLeader() {
		t.Fatal("caught-up candidate should win")
	}
}

// TestWitnessFrontierSurvivesRestart: the max-seen frontier must be as
// durable as the promise — a witness that crashes between learning the
// frontier and the next election must still refuse a stale candidate.
func TestWitnessFrontierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "promised")
	sf, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mkWitness := func(sf *StateFile) *Elector {
		e, err := New(Config{
			ID: "w", URL: "http://w", Witness: true,
			State: sf, Clock: newFakeClock(), Transport: &memTransport{net: newMemNet()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	w := mkWitness(sf)
	w.OnHeartbeat(HeartbeatRequest{From: "a", URL: "http://a", Epoch: 3, FrontierEpoch: 3, FrontierLSN: 77})
	sf2, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fe, fl := sf2.MaxFrontier(); fe != 3 || fl != 77 {
		t.Fatalf("frontier not durable: %d/%d", fe, fl)
	}
	w2 := mkWitness(sf2)
	if resp := w2.OnVote(VoteRequest{From: "b", URL: "http://b", Epoch: 9, FrontierEpoch: 3, FrontierLSN: 50}); resp.Granted {
		t.Fatal("stale candidate granted after witness restart")
	}
	if resp := w2.OnVote(VoteRequest{From: "b", URL: "http://b", Epoch: 9, FrontierEpoch: 3, FrontierLSN: 77}); !resp.Granted {
		t.Fatal("up-to-date candidate refused")
	}
}

// TestStateFileParsesLegacySingleField: a promise file written by the
// pre-frontier format (one field) must still open, with a zero
// frontier.
func TestStateFileParsesLegacySingleField(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "promised")
	if err := writeLegacyState(path, "5\n"); err != nil {
		t.Fatal(err)
	}
	sf, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Promised() != 5 {
		t.Fatalf("promised = %d, want 5", sf.Promised())
	}
	if fe, fl := sf.MaxFrontier(); fe != 0 || fl != 0 {
		t.Fatalf("legacy frontier = %d/%d, want 0/0", fe, fl)
	}
	if err := sf.NoteFrontier(2, 9); err != nil {
		t.Fatal(err)
	}
	sf2, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sf2.Promised() != 5 {
		t.Fatalf("promise lost upgrading format: %d", sf2.Promised())
	}
	if fe, fl := sf2.MaxFrontier(); fe != 2 || fl != 9 {
		t.Fatalf("upgraded frontier = %d/%d, want 2/9", fe, fl)
	}
}

func TestStateFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "promised")
	sf, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Store(3); err != nil {
		t.Fatal(err)
	}
	if err := sf.Store(2); err != nil {
		t.Fatal(err)
	}
	sf2, err := OpenStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sf2.Promised() != 3 {
		t.Fatalf("promise rolled back: %d", sf2.Promised())
	}
}
