package mlearn

import (
	"fmt"
	"math"
	"sort"

	"hpcpower/internal/rng"
	"hpcpower/internal/stats"
)

// Fig. 15's claim is that prediction quality holds "across users and not
// just for a few users which submit the most jobs". ErrorByUserVolume
// makes that measurable: users are bucketed by how many jobs they submit,
// and each bucket reports its mean absolute prediction error.

// VolumeBucket is one activity bucket of the per-user error breakdown.
type VolumeBucket struct {
	// Quartile is 1 (least active users) to 4 (most active).
	Quartile int
	Users    int
	// MinJobs/MaxJobs delimit the bucket's user sizes in the dataset.
	MinJobs, MaxJobs int
	// MeanErrPct / MedianErrPct aggregate the per-user mean errors.
	MeanErrPct   float64
	MedianErrPct float64
	// FracUsersBelow5 is the Fig. 15 headline within the bucket.
	FracUsersBelow5 float64
}

// ErrorByUserVolume evaluates the model across cfg.Reps stratified splits
// and buckets per-user mean errors by user activity quartile.
func ErrorByUserVolume(samples []Sample, factory func() Model, cfg EvalConfig) ([]VolumeBucket, error) {
	if len(samples) < 20 {
		return nil, fmt.Errorf("mlearn: only %d samples", len(samples))
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 10
	}
	jobCount := map[string]int{}
	for _, s := range samples {
		jobCount[s.User]++
	}

	root := rng.New(cfg.Seed)
	perUserErrs := map[string][]float64{}
	for rep := 0; rep < cfg.Reps; rep++ {
		sp := StratifiedSplit(samples, cfg.ValidFrac, root.Split(uint64(rep)))
		m := factory()
		if err := m.Fit(sp.Train); err != nil {
			return nil, err
		}
		for _, v := range sp.Valid {
			p := Prediction{Features: v.Features, Actual: v.PowerW, Predicted: m.Predict(v.Features)}
			if e := p.AbsErrPct(); !math.IsNaN(e) {
				perUserErrs[v.User] = append(perUserErrs[v.User], e)
			}
		}
	}
	if len(perUserErrs) == 0 {
		return nil, fmt.Errorf("mlearn: no validation predictions")
	}

	type userErr struct {
		user string
		jobs int
		mean float64
	}
	all := make([]userErr, 0, len(perUserErrs))
	for u, es := range perUserErrs {
		all = append(all, userErr{user: u, jobs: jobCount[u], mean: stats.Mean(es)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].jobs != all[b].jobs {
			return all[a].jobs < all[b].jobs
		}
		return all[a].user < all[b].user
	})

	var out []VolumeBucket
	n := len(all)
	for q := 0; q < 4; q++ {
		lo := q * n / 4
		hi := (q + 1) * n / 4
		if lo >= hi {
			continue
		}
		slice := all[lo:hi]
		errs := make([]float64, len(slice))
		below5 := 0
		minJ, maxJ := slice[0].jobs, slice[0].jobs
		for i, u := range slice {
			errs[i] = u.mean
			if u.mean < 5 {
				below5++
			}
			if u.jobs < minJ {
				minJ = u.jobs
			}
			if u.jobs > maxJ {
				maxJ = u.jobs
			}
		}
		out = append(out, VolumeBucket{
			Quartile: q + 1, Users: len(slice),
			MinJobs: minJ, MaxJobs: maxJ,
			MeanErrPct:      stats.Mean(errs),
			MedianErrPct:    stats.Median(errs),
			FracUsersBelow5: 100 * float64(below5) / float64(len(slice)),
		})
	}
	return out, nil
}
