package mlearn

import (
	"fmt"
	"sort"
)

// Hyper-parameter exploration for the ablation benches DESIGN.md calls
// out: how sensitive the paper's result is to the BDT's depth/leaf-size
// and KNN's k. The paper uses fixed "simple, low-overhead" settings; the
// grid search shows the result is flat across a wide region — i.e. the
// conclusion does not hinge on tuning.

// GridPoint is one evaluated hyper-parameter setting.
type GridPoint struct {
	Label  string
	Result EvalResult
}

// GridSearchBDT evaluates the tree over a depth × min-leaf grid and
// returns the points sorted by FracBelow10 descending (best first).
func GridSearchBDT(samples []Sample, depths, minLeaves []int, cfg EvalConfig) ([]GridPoint, error) {
	if len(depths) == 0 || len(minLeaves) == 0 {
		return nil, fmt.Errorf("mlearn: empty grid")
	}
	var out []GridPoint
	for _, d := range depths {
		for _, ml := range minLeaves {
			params := TreeParams{MaxDepth: d, MinLeaf: ml}
			res, err := Evaluate(samples, func() Model { return NewBDT(params) }, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, GridPoint{
				Label:  fmt.Sprintf("depth=%d,minleaf=%d", d, ml),
				Result: res,
			})
		}
	}
	sortGrid(out)
	return out, nil
}

// GridSearchKNN evaluates KNN over candidate k values.
func GridSearchKNN(samples []Sample, ks []int, cfg EvalConfig) ([]GridPoint, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("mlearn: empty grid")
	}
	var out []GridPoint
	for _, k := range ks {
		params := KNNParams{K: k, UserMismatchPenalty: DefaultKNNParams().UserMismatchPenalty}
		res, err := Evaluate(samples, func() Model { return NewKNN(params) }, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, GridPoint{Label: fmt.Sprintf("k=%d", k), Result: res})
	}
	sortGrid(out)
	return out, nil
}

func sortGrid(pts []GridPoint) {
	sort.SliceStable(pts, func(a, b int) bool {
		return pts[a].Result.FracBelow10 > pts[b].Result.FracBelow10
	})
}
