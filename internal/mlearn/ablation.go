package mlearn

import (
	"fmt"
)

// This file holds the ablation tooling DESIGN.md calls out: a naive
// baseline predictor (a job's power is its user's historical mean) and a
// feature-ablation harness that quantifies how much each of the three
// pre-execution features contributes — the paper's narrative that the BDT
// splits "first, based on user, then number of nodes and last, wall time"
// made measurable.

// Baseline predicts a job's power as its user's mean training power —
// what operators do today without a model. Beating it is the bar any
// learned predictor must clear.
type Baseline struct {
	userMean map[string]float64
	global   float64
}

// NewBaseline returns an untrained baseline predictor.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements Model.
func (m *Baseline) Name() string { return "UserMean" }

// Fit implements Model.
func (m *Baseline) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("mlearn: baseline fit on empty training set")
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	var total float64
	for _, s := range samples {
		sums[s.User] += s.PowerW
		counts[s.User]++
		total += s.PowerW
	}
	m.userMean = make(map[string]float64, len(sums))
	for u, sum := range sums {
		m.userMean[u] = sum / float64(counts[u])
	}
	m.global = total / float64(len(samples))
	return nil
}

// Predict implements Model.
func (m *Baseline) Predict(f Features) float64 {
	if v, ok := m.userMean[f.User]; ok {
		return v
	}
	return m.global
}

// FeatureSet selects which of the three pre-execution features a model
// may see; masked features are replaced by constants before training and
// prediction.
type FeatureSet struct {
	User, Nodes, Wall bool
}

// String names the feature set, e.g. "user+nodes".
func (fs FeatureSet) String() string {
	out := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if out != "" {
			out += "+"
		}
		out += name
	}
	add(fs.User, "user")
	add(fs.Nodes, "nodes")
	add(fs.Wall, "wall")
	if out == "" {
		return "none"
	}
	return out
}

// mask hides disabled features behind constants.
func (fs FeatureSet) mask(f Features) Features {
	if !fs.User {
		f.User = "*"
	}
	if !fs.Nodes {
		f.Nodes = 1
	}
	if !fs.Wall {
		f.WallHours = 1
	}
	return f
}

// maskedModel wraps a model so it only sees the enabled features.
type maskedModel struct {
	inner Model
	fs    FeatureSet
}

func (m *maskedModel) Name() string { return m.inner.Name() + "[" + m.fs.String() + "]" }

func (m *maskedModel) Fit(samples []Sample) error {
	masked := make([]Sample, len(samples))
	for i, s := range samples {
		masked[i] = Sample{Features: m.fs.mask(s.Features), PowerW: s.PowerW}
	}
	return m.inner.Fit(masked)
}

func (m *maskedModel) Predict(f Features) float64 { return m.inner.Predict(m.fs.mask(f)) }

// Masked wraps a model factory with a feature mask.
func Masked(factory func() Model, fs FeatureSet) func() Model {
	return func() Model { return &maskedModel{inner: factory(), fs: fs} }
}

// AblationResult is one row of the feature-ablation study.
type AblationResult struct {
	Features FeatureSet
	Result   EvalResult
}

// AblationSets is the build-up the paper's hierarchy suggests: user
// alone, then +nodes, then +wall, plus the no-user control.
var AblationSets = []FeatureSet{
	{User: true},
	{User: true, Nodes: true},
	{User: true, Nodes: true, Wall: true},
	{Nodes: true, Wall: true},
}

// EvaluateAblation runs the BDT with each feature subset.
func EvaluateAblation(samples []Sample, cfg EvalConfig) ([]AblationResult, error) {
	var out []AblationResult
	for _, fs := range AblationSets {
		res, err := Evaluate(samples, Masked(func() Model { return NewBDT(DefaultTreeParams()) }, fs), cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Features: fs, Result: res})
	}
	return out, nil
}

// FeatureImportance reports each feature's share of the total SSE
// reduction over a fitted tree's splits — which feature the tree leans
// on, and in which order it tends to split.
func (t *BDT) FeatureImportance() map[string]float64 {
	imp := map[string]float64{"user": 0, "nodes": 0, "wall": 0}
	var walk func(n *treeNode, weight float64)
	walk = func(n *treeNode, weight float64) {
		if n == nil || n.isLeaf {
			return
		}
		switch {
		case n.userSet != nil:
			imp["user"] += weight
		case n.featIdx == 0:
			imp["nodes"] += weight
		default:
			imp["wall"] += weight
		}
		walk(n.left, weight/2)
		walk(n.right, weight/2)
	}
	walk(t.root, 1)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for k := range imp {
			imp[k] /= total
		}
	}
	return imp
}

// RootSplitFeature returns which feature the fitted tree splits on first
// ("user", "nodes", "wall", or "" for a leaf-only tree). The paper's BDT
// splits on the user first.
func (t *BDT) RootSplitFeature() string {
	if t.root == nil || t.root.isLeaf {
		return ""
	}
	switch {
	case t.root.userSet != nil:
		return "user"
	case t.root.featIdx == 0:
		return "nodes"
	default:
		return "wall"
	}
}
