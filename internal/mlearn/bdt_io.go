package mlearn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// BDT model serialization: a trained tree saved by powpredict must load
// in powserved and produce bit-identical predictions, so the online
// predict endpoint is exactly the offline model. The format is JSON —
// float64 values round-trip exactly through Go's shortest-form encoding —
// with the tree flattened into an explicit node list (no recursion limits
// on load, and malformed files fail with errors, never panics).

// bdtFileVersion guards the on-disk schema.
const bdtFileVersion = 1

// bdtFile is the on-disk model.
type bdtFile struct {
	Format   string     `json:"format"` // "hpcpower-bdt"
	Version  int        `json:"version"`
	Params   TreeParams `json:"params"`
	Fallback float64    `json:"fallback"`
	// Nodes in pre-order; index 0 is the root. Empty means an untrained
	// model (fallback-only).
	Nodes []bdtNode `json:"nodes"`
}

// bdtNode is one serialized tree node. Children are indices into the
// node list (-1 for none); exactly one of Users / numeric split is
// meaningful on interior nodes.
type bdtNode struct {
	Leaf  bool    `json:"leaf"`
	Value float64 `json:"value,omitempty"`
	Std   float64 `json:"std,omitempty"`
	N     int     `json:"n,omitempty"`

	Users     []string `json:"users,omitempty"` // categorical: left if user ∈ Users
	FeatIdx   int      `json:"feat,omitempty"`  // 0 = lnNodes, 1 = lnWall
	Threshold float64  `json:"thr,omitempty"`   // numeric: left if x ≤ thr
	Left      int      `json:"l"`
	Right     int      `json:"r"`
}

// Save writes the fitted model as JSON.
func (t *BDT) Save(w io.Writer) error {
	f := bdtFile{
		Format:   "hpcpower-bdt",
		Version:  bdtFileVersion,
		Params:   t.params,
		Fallback: t.fallback,
	}
	var flatten func(n *treeNode) int
	flatten = func(n *treeNode) int {
		idx := len(f.Nodes)
		f.Nodes = append(f.Nodes, bdtNode{Left: -1, Right: -1})
		e := &f.Nodes[idx]
		if n.isLeaf {
			e.Leaf = true
			e.Value, e.Std, e.N = n.value, n.std, n.n
			return idx
		}
		if n.userSet != nil {
			users := make([]string, 0, len(n.userSet))
			for u := range n.userSet {
				users = append(users, u)
			}
			sort.Strings(users)
			e.Users = users
		} else {
			e.FeatIdx, e.Threshold = n.featIdx, n.threshold
		}
		l := flatten(n.left)
		r := flatten(n.right)
		// f.Nodes may have been reallocated by the recursive appends.
		f.Nodes[idx].Left, f.Nodes[idx].Right = l, r
		return idx
	}
	if t.root != nil {
		flatten(t.root)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("mlearn: saving BDT: %w", err)
	}
	return nil
}

// LoadBDT reads a model written by Save, validating structure so that a
// malformed or adversarial file yields an error, never a panic or an
// ill-formed tree.
func LoadBDT(r io.Reader) (*BDT, error) {
	dec := json.NewDecoder(r)
	var f bdtFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("mlearn: decoding BDT: %w", err)
	}
	if f.Format != "hpcpower-bdt" {
		return nil, fmt.Errorf("mlearn: not a BDT model file (format %q)", f.Format)
	}
	if f.Version != bdtFileVersion {
		return nil, fmt.Errorf("mlearn: unsupported BDT model version %d", f.Version)
	}
	t := &BDT{params: f.Params, fallback: f.Fallback}
	if len(f.Nodes) == 0 {
		return t, nil
	}
	// Rebuild with an explicit visited set: every node must be reachable
	// exactly once (a tree, not a DAG or a cycle) and children must point
	// forward into the list.
	visited := make([]bool, len(f.Nodes))
	var build func(idx, depth int) (*treeNode, error)
	build = func(idx, depth int) (*treeNode, error) {
		if idx < 0 || idx >= len(f.Nodes) {
			return nil, fmt.Errorf("mlearn: BDT node index %d out of range", idx)
		}
		if visited[idx] {
			return nil, fmt.Errorf("mlearn: BDT node %d referenced twice", idx)
		}
		if depth > len(f.Nodes) {
			return nil, fmt.Errorf("mlearn: BDT deeper than its node count")
		}
		visited[idx] = true
		e := &f.Nodes[idx]
		if e.Leaf {
			if e.N < 0 || e.Std < 0 {
				return nil, fmt.Errorf("mlearn: BDT leaf %d has negative std or count", idx)
			}
			return &treeNode{isLeaf: true, value: e.Value, std: e.Std, n: e.N}, nil
		}
		n := &treeNode{featIdx: e.FeatIdx, threshold: e.Threshold}
		if len(e.Users) > 0 {
			n.userSet = make(map[string]bool, len(e.Users))
			for _, u := range e.Users {
				n.userSet[u] = true
			}
		} else if e.FeatIdx != 0 && e.FeatIdx != 1 {
			return nil, fmt.Errorf("mlearn: BDT node %d has feature index %d", idx, e.FeatIdx)
		}
		var err error
		if n.left, err = build(e.Left, depth+1); err != nil {
			return nil, err
		}
		if n.right, err = build(e.Right, depth+1); err != nil {
			return nil, err
		}
		return n, nil
	}
	root, err := build(0, 0)
	if err != nil {
		return nil, err
	}
	for i, v := range visited {
		if !v {
			return nil, fmt.Errorf("mlearn: BDT node %d unreachable", i)
		}
	}
	t.root = root
	return t, nil
}

// SaveFile writes the model to a file (atomic enough for a model export:
// write then rename is unnecessary — models are read-only after export).
func (t *BDT) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mlearn: %w", err)
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBDTFile reads a model file written by SaveFile.
func LoadBDTFile(path string) (*BDT, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mlearn: %w", err)
	}
	defer f.Close()
	return LoadBDT(f)
}
