package mlearn

import (
	"fmt"
	"math"
	"testing"

	"hpcpower/internal/gen"
	"hpcpower/internal/rng"
	"hpcpower/internal/trace"
)

var (
	emmySamples   []Sample
	meggieSamples []Sample
)

func samples(t testing.TB, system string) []Sample {
	t.Helper()
	switch system {
	case "Emmy":
		if emmySamples == nil {
			ds, err := gen.Generate(gen.EmmyConfig(0.05, 42))
			if err != nil {
				t.Fatal(err)
			}
			emmySamples = SamplesFromDataset(ds)
		}
		return emmySamples
	default:
		if meggieSamples == nil {
			ds, err := gen.Generate(gen.MeggieConfig(0.05, 42))
			if err != nil {
				t.Fatal(err)
			}
			meggieSamples = SamplesFromDataset(ds)
		}
		return meggieSamples
	}
}

// synthetic builds a small, perfectly learnable dataset: each (user,
// nodes, wall) combination has a fixed power.
func synthetic(n int, noise float64, seed uint64) []Sample {
	src := rng.New(seed)
	users := []string{"u1", "u2", "u3", "u4"}
	nodesOpts := []int{1, 2, 4, 8}
	wallOpts := []float64{2, 6, 24}
	var out []Sample
	for i := 0; i < n; i++ {
		u := users[src.Intn(len(users))]
		nd := nodesOpts[src.Intn(len(nodesOpts))]
		w := wallOpts[src.Intn(len(wallOpts))]
		// Deterministic power per combination.
		power := 80 + 20*float64(len(u)%3) + 10*math.Log2(float64(nd)) + 5*math.Log2(w) +
			30*float64(u[1]-'0')
		power *= 1 + noise*src.Norm()
		out = append(out, Sample{
			Features: Features{User: u, Nodes: nd, WallHours: w},
			PowerW:   power,
		})
	}
	return out
}

func TestSamplesFromDataset(t *testing.T) {
	ds := &trace.Dataset{}
	ds.Jobs = append(ds.Jobs, trace.Job{User: "u1", Nodes: 4, AvgPowerPerNode: 150})
	s := SamplesFromDataset(ds)
	if len(s) != 1 || s[0].User != "u1" || s[0].PowerW != 150 {
		t.Errorf("samples = %+v", s)
	}
}

func TestStratifiedSplit(t *testing.T) {
	data := synthetic(500, 0, 1)
	sp := StratifiedSplit(data, 0.2, rng.New(2))
	if len(sp.Train)+len(sp.Valid) != len(data) {
		t.Fatalf("split loses samples: %d + %d != %d", len(sp.Train), len(sp.Valid), len(data))
	}
	frac := float64(len(sp.Valid)) / float64(len(data))
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("validation fraction = %v", frac)
	}
	// Paper constraint: every validation user appears in training.
	trainUsers := map[string]bool{}
	for _, s := range sp.Train {
		trainUsers[s.User] = true
	}
	for _, s := range sp.Valid {
		if !trainUsers[s.User] {
			t.Fatalf("validation user %s missing from training", s.User)
		}
	}
}

func TestStratifiedSplitSingletonUsers(t *testing.T) {
	data := []Sample{
		{Features: Features{User: "solo", Nodes: 1, WallHours: 1}, PowerW: 100},
	}
	for i := 0; i < 30; i++ {
		data = append(data, Sample{
			Features: Features{User: "busy", Nodes: 2, WallHours: 2}, PowerW: 120,
		})
	}
	sp := StratifiedSplit(data, 0.2, rng.New(3))
	for _, s := range sp.Valid {
		if s.User == "solo" {
			t.Error("singleton user leaked into validation")
		}
	}
}

func TestBDTLearnsDeterministicData(t *testing.T) {
	data := synthetic(800, 0, 4)
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	// On noise-free repetitive data the tree should be near-perfect.
	for _, s := range data[:100] {
		pred := m.Predict(s.Features)
		if math.Abs(pred-s.PowerW)/s.PowerW > 0.01 {
			t.Fatalf("BDT off by %.1f%% on %+v", 100*math.Abs(pred-s.PowerW)/s.PowerW, s.Features)
		}
	}
	if m.Depth() == 0 || m.Leaves() < 4 {
		t.Errorf("degenerate tree: depth=%d leaves=%d", m.Depth(), m.Leaves())
	}
}

func TestBDTPredictionWithinRange(t *testing.T) {
	data := samples(t, "Emmy")
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range data {
		lo = math.Min(lo, s.PowerW)
		hi = math.Max(hi, s.PowerW)
	}
	for _, s := range data[:200] {
		p := m.Predict(s.Features)
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("prediction %v outside training range [%v, %v]", p, lo, hi)
		}
	}
	// Unseen user: still returns something sane.
	p := m.Predict(Features{User: "nobody", Nodes: 4, WallHours: 6})
	if p < lo || p > hi {
		t.Errorf("unseen-user prediction %v out of range", p)
	}
}

func TestKNNExactRecall(t *testing.T) {
	// With k=1 and an exact repeated configuration, KNN must return it.
	data := []Sample{}
	for i := 0; i < 10; i++ {
		data = append(data, Sample{Features: Features{User: "a", Nodes: 4, WallHours: 8}, PowerW: 140})
		data = append(data, Sample{Features: Features{User: "a", Nodes: 16, WallHours: 2}, PowerW: 180})
	}
	m := NewKNN(KNNParams{K: 1, UserMismatchPenalty: 4})
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(Features{User: "a", Nodes: 4, WallHours: 8}); got != 140 {
		t.Errorf("KNN exact = %v", got)
	}
	if got := m.Predict(Features{User: "a", Nodes: 16, WallHours: 2}); got != 180 {
		t.Errorf("KNN exact = %v", got)
	}
}

func TestKNNUnseenUserFallsBack(t *testing.T) {
	data := synthetic(300, 0.02, 5)
	m := NewKNN(DefaultKNNParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	p := m.Predict(Features{User: "stranger", Nodes: 4, WallHours: 6})
	if p <= 0 || math.IsNaN(p) {
		t.Errorf("unseen-user prediction = %v", p)
	}
}

func TestFLDAFitPredict(t *testing.T) {
	data := synthetic(600, 0.02, 6)
	m := NewFLDA(DefaultFLDAParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, s := range data[:100] {
		p := m.Predict(s.Features)
		if p <= 0 {
			t.Fatalf("prediction %v", p)
		}
		e := math.Abs(p-s.PowerW) / s.PowerW
		if e > worst {
			worst = e
		}
	}
	// Class-mean prediction: errors bounded by class width, far from exact
	// but must be broadly right on easy data.
	if worst > 0.5 {
		t.Errorf("FLDA worst training error = %.0f%%", 100*worst)
	}
}

func TestFitErrors(t *testing.T) {
	if err := NewBDT(DefaultTreeParams()).Fit(nil); err == nil {
		t.Error("BDT empty fit accepted")
	}
	if err := NewKNN(DefaultKNNParams()).Fit(nil); err == nil {
		t.Error("KNN empty fit accepted")
	}
	if err := NewFLDA(DefaultFLDAParams()).Fit(synthetic(5, 0, 7)); err == nil {
		t.Error("FLDA tiny fit accepted")
	}
}

func TestInvert3(t *testing.T) {
	m := [3][3]float64{{2, 0, 0}, {0, 4, 0}, {0, 0, 8}}
	inv, ok := invert3(m)
	if !ok {
		t.Fatal("diagonal matrix reported singular")
	}
	want := [3]float64{0.5, 0.25, 0.125}
	for i := 0; i < 3; i++ {
		if math.Abs(inv[i][i]-want[i]) > 1e-12 {
			t.Errorf("inv[%d][%d] = %v", i, i, inv[i][i])
		}
	}
	// Singular matrix.
	if _, ok := invert3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}); ok {
		t.Error("singular matrix inverted")
	}
	// Random matrix round-trip: M × M⁻¹ ≈ I.
	src := rng.New(8)
	r := [3][3]float64{}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			r[a][b] = src.Norm()
		}
		r[a][a] += 3
	}
	ri, ok := invert3(r)
	if !ok {
		t.Fatal("well-conditioned matrix singular")
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			var v float64
			for k := 0; k < 3; k++ {
				v += r[a][k] * ri[k][b]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(v-want) > 1e-9 {
				t.Errorf("round-trip [%d][%d] = %v", a, b, v)
			}
		}
	}
}

func TestEvaluateOnSynthetic(t *testing.T) {
	data := synthetic(1000, 0.01, 9)
	res, err := Evaluate(data, func() Model { return NewBDT(DefaultTreeParams()) }, DefaultEvalConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "BDT" || res.Reps != 10 {
		t.Errorf("meta = %+v", res)
	}
	if res.FracBelow10 < 95 {
		t.Errorf("BDT on easy data: %.1f%% below 10%% error", res.FracBelow10)
	}
	if res.N < 1000 {
		t.Errorf("pooled predictions = %d", res.N)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, func() Model { return NewBDT(DefaultTreeParams()) }, DefaultEvalConfig(1)); err == nil {
		t.Error("empty sample set accepted")
	}
}

// TestFig14Ordering is the core Fig. 14 reproduction: BDT best, ~90% of
// predictions below 10% error; FLDA the weakest on Emmy.
func TestFig14Ordering(t *testing.T) {
	results, err := EvaluateAll(samples(t, "Emmy"), DefaultEvalConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EvalResult{}
	for _, r := range results {
		byName[r.Model] = r
		t.Logf("%s: mean=%.1f%% median=%.1f%% <5%%=%.0f%% <10%%=%.0f%%",
			r.Model, r.MeanErrPct, r.MedianErrPct, r.FracBelow5Pct, r.FracBelow10)
	}
	bdt, knn, flda := byName["BDT"], byName["KNN"], byName["FLDA"]
	if bdt.FracBelow10 < 80 {
		t.Errorf("BDT <10%% error fraction = %.1f%%, paper ~90%%", bdt.FracBelow10)
	}
	if bdt.FracBelow5Pct < 60 {
		t.Errorf("BDT <5%% error fraction = %.1f%%, paper ~75%%", bdt.FracBelow5Pct)
	}
	if !(bdt.FracBelow10 >= knn.FracBelow10) {
		t.Errorf("BDT (%v) should beat KNN (%v)", bdt.FracBelow10, knn.FracBelow10)
	}
	if !(knn.FracBelow10 >= flda.FracBelow10) {
		t.Errorf("KNN (%v) should beat FLDA (%v)", knn.FracBelow10, flda.FracBelow10)
	}
	if flda.FracBelow10 > bdt.FracBelow10-5 {
		t.Errorf("FLDA (%v) suspiciously close to BDT (%v) on Emmy", flda.FracBelow10, bdt.FracBelow10)
	}
}

// TestFig15PerUserQuality: with BDT, prediction quality holds across
// users, not only the heaviest. At this unit-test scale (~1/20 of the
// study) Zipf-tail users have only a handful of jobs, so their cells are
// under-covered and the <5% fraction sits well below the paper's ~90%;
// it climbs with scale (see EXPERIMENTS.md for the full-scale run).
func TestFig15PerUserQuality(t *testing.T) {
	bdt, err := Evaluate(samples(t, "Emmy"), func() Model { return NewBDT(DefaultTreeParams()) }, DefaultEvalConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if bdt.FracUsersBelow5 < 28 {
		t.Errorf("users with <5%% mean error = %.1f%%, want >= 28%% at test scale", bdt.FracUsersBelow5)
	}
	flda, err := Evaluate(samples(t, "Emmy"), func() Model { return NewFLDA(DefaultFLDAParams()) }, DefaultEvalConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !(bdt.FracUsersBelow5 > flda.FracUsersBelow5) {
		t.Errorf("BDT per-user quality (%.1f%%) should beat FLDA (%.1f%%)",
			bdt.FracUsersBelow5, flda.FracUsersBelow5)
	}
}

func TestFig14Meggie(t *testing.T) {
	results, err := EvaluateAll(samples(t, "Meggie"), DefaultEvalConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EvalResult{}
	for _, r := range results {
		byName[r.Model] = r
	}
	if byName["BDT"].FracBelow10 < 75 {
		t.Errorf("Meggie BDT <10%% = %.1f%%", byName["BDT"].FracBelow10)
	}
	if !(byName["BDT"].FracBelow10 >= byName["FLDA"].FracBelow10) {
		t.Errorf("BDT should beat FLDA on Meggie too")
	}
}

func TestPredictionAbsErrPct(t *testing.T) {
	p := Prediction{Actual: 100, Predicted: 90}
	if got := p.AbsErrPct(); got != 10 {
		t.Errorf("AbsErrPct = %v", got)
	}
	p = Prediction{Actual: 0, Predicted: 90}
	if !math.IsNaN(p.AbsErrPct()) {
		t.Error("zero actual should be NaN")
	}
}

func BenchmarkBDTFit(b *testing.B) {
	data := synthetic(5000, 0.02, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewBDT(DefaultTreeParams())
		if err := m.Fit(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBDTPredict(b *testing.B) {
	data := synthetic(5000, 0.02, 12)
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(data[i%len(data)].Features)
	}
}

func ExampleEvaluate() {
	data := synthetic(400, 0.01, 13)
	res, err := Evaluate(data, func() Model { return NewBDT(DefaultTreeParams()) }, EvalConfig{Reps: 3, ValidFrac: 0.2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Model, res.Reps)
	// Output: BDT 3
}
