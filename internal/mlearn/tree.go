package mlearn

import (
	"fmt"
	"math"
	"sort"
)

// TreeParams tunes the CART regression tree.
type TreeParams struct {
	MaxDepth int // maximum tree depth
	MinLeaf  int // minimum samples per leaf
}

// DefaultTreeParams returns the parameters used for Fig. 14.
func DefaultTreeParams() TreeParams { return TreeParams{MaxDepth: 22, MinLeaf: 1} }

// BDT is the paper's Binary Decision Tree: a CART regression tree over
// (user, nodes, walltime). The user feature is categorical and split by
// target-mean ordering (the optimal categorical split for squared error);
// nodes and walltime are numeric log-scaled features. In practice the
// tree splits on user first — the explicit hierarchy the paper describes —
// because user explains the most variance.
type BDT struct {
	params TreeParams
	root   *treeNode
	// fallback is the global training mean, used for unseen users when no
	// better route exists.
	fallback float64
}

// treeNode is one node of the fitted tree.
type treeNode struct {
	// leaf
	isLeaf bool
	value  float64
	std    float64 // std of training targets in the leaf
	n      int     // training samples in the leaf
	// split: exactly one of userSet (categorical) or numeric split is set.
	userSet   map[string]bool // non-nil: left if userSet[user]
	featIdx   int             // 0 = lnNodes, 1 = lnWall (when userSet == nil)
	threshold float64         // left if x <= threshold
	left      *treeNode
	right     *treeNode
}

// NewBDT returns an untrained tree.
func NewBDT(p TreeParams) *BDT {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 18
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 2
	}
	return &BDT{params: p}
}

// Name implements Model.
func (t *BDT) Name() string { return "BDT" }

// Fit implements Model.
func (t *BDT) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("mlearn: BDT fit on empty training set")
	}
	rows := make([]treeRow, len(samples))
	var sum float64
	for i, s := range samples {
		rows[i] = treeRow{
			user: s.User,
			x:    [2]float64{lnNodes(s.Features), lnWall(s.Features)},
			y:    s.PowerW,
		}
		sum += s.PowerW
	}
	t.fallback = sum / float64(len(samples))
	t.root = t.build(rows, 0)
	return nil
}

type treeRow struct {
	user string
	x    [2]float64
	y    float64
}

// build grows the tree recursively.
func (t *BDT) build(rows []treeRow, depth int) *treeNode {
	mean, sse := meanSSE(rows)
	leaf := func() *treeNode {
		return &treeNode{
			isLeaf: true, value: mean,
			std: math.Sqrt(sse / float64(len(rows))), n: len(rows),
		}
	}
	if depth >= t.params.MaxDepth || len(rows) < 2*t.params.MinLeaf || sse <= 1e-12 {
		return leaf()
	}
	best := t.bestSplit(rows, sse)
	if best == nil {
		return leaf()
	}
	var left, right []treeRow
	for _, r := range rows {
		if best.goesLeft(r) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < t.params.MinLeaf || len(right) < t.params.MinLeaf {
		return leaf()
	}
	node := &treeNode{
		userSet:   best.userSet,
		featIdx:   best.featIdx,
		threshold: best.threshold,
	}
	node.left = t.build(left, depth+1)
	node.right = t.build(right, depth+1)
	return node
}

type candidateSplit struct {
	userSet   map[string]bool
	featIdx   int
	threshold float64
	gain      float64
}

func (c *candidateSplit) goesLeft(r treeRow) bool {
	if c.userSet != nil {
		return c.userSet[r.user]
	}
	return r.x[c.featIdx] <= c.threshold
}

// bestSplit searches the categorical user split and both numeric splits,
// returning the one with the highest SSE reduction (nil if none helps).
func (t *BDT) bestSplit(rows []treeRow, parentSSE float64) *candidateSplit {
	var best *candidateSplit
	consider := func(c *candidateSplit) {
		if c != nil && (best == nil || c.gain > best.gain) {
			best = c
		}
	}
	consider(t.bestUserSplit(rows, parentSSE))
	consider(t.bestNumericSplit(rows, 0, parentSSE))
	consider(t.bestNumericSplit(rows, 1, parentSSE))
	if best != nil && best.gain <= 1e-12 {
		return nil
	}
	return best
}

// bestUserSplit orders users by mean target and scans prefix partitions —
// the optimal subset split for L2 loss (Fisher 1958 / CART).
func (t *BDT) bestUserSplit(rows []treeRow, parentSSE float64) *candidateSplit {
	type ustat struct {
		user string
		sum  float64
		n    int
	}
	agg := map[string]*ustat{}
	for _, r := range rows {
		u := agg[r.user]
		if u == nil {
			u = &ustat{user: r.user}
			agg[r.user] = u
		}
		u.sum += r.y
		u.n++
	}
	if len(agg) < 2 {
		return nil
	}
	users := make([]*ustat, 0, len(agg))
	for _, u := range agg {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool {
		ma := users[a].sum / float64(users[a].n)
		mb := users[b].sum / float64(users[b].n)
		if ma != mb {
			return ma < mb
		}
		return users[a].user < users[b].user
	})
	// Prefix scan over the ordered users.
	var totalSum float64
	totalN := 0
	for _, u := range users {
		totalSum += u.sum
		totalN += u.n
	}
	// SSE(left)+SSE(right) is minimized by maximizing
	// sumL^2/nL + sumR^2/nR (standard variance-reduction identity).
	var bestScore float64 = math.Inf(-1)
	bestK := -1
	var sumL float64
	nL := 0
	for k := 0; k < len(users)-1; k++ {
		sumL += users[k].sum
		nL += users[k].n
		nR := totalN - nL
		if nL < t.params.MinLeaf || nR < t.params.MinLeaf {
			continue
		}
		sumR := totalSum - sumL
		score := sumL*sumL/float64(nL) + sumR*sumR/float64(nR)
		if score > bestScore {
			bestScore = score
			bestK = k
		}
	}
	if bestK < 0 {
		return nil
	}
	set := make(map[string]bool, bestK+1)
	for k := 0; k <= bestK; k++ {
		set[users[k].user] = true
	}
	// gain = parentSSE − (SSE_L + SSE_R) = bestScore − totalSum²/totalN.
	gain := bestScore - totalSum*totalSum/float64(totalN)
	return &candidateSplit{userSet: set, gain: gain}
}

// bestNumericSplit scans thresholds between consecutive distinct values.
func (t *BDT) bestNumericSplit(rows []treeRow, feat int, parentSSE float64) *candidateSplit {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rows[idx[a]].x[feat] < rows[idx[b]].x[feat] })
	var totalSum float64
	for _, r := range rows {
		totalSum += r.y
	}
	totalN := len(rows)
	var bestScore float64 = math.Inf(-1)
	bestThreshold := 0.0
	var sumL float64
	for i := 0; i < totalN-1; i++ {
		r := rows[idx[i]]
		sumL += r.y
		next := rows[idx[i+1]]
		if r.x[feat] == next.x[feat] {
			continue // not a valid threshold between equal values
		}
		nL := i + 1
		nR := totalN - nL
		if nL < t.params.MinLeaf || nR < t.params.MinLeaf {
			continue
		}
		sumR := totalSum - sumL
		score := sumL*sumL/float64(nL) + sumR*sumR/float64(nR)
		if score > bestScore {
			bestScore = score
			bestThreshold = (r.x[feat] + next.x[feat]) / 2
		}
	}
	if math.IsInf(bestScore, -1) {
		return nil
	}
	gain := bestScore - totalSum*totalSum/float64(totalN)
	return &candidateSplit{featIdx: feat, threshold: bestThreshold, gain: gain}
}

func meanSSE(rows []treeRow) (mean, sse float64) {
	var sum float64
	for _, r := range rows {
		sum += r.y
	}
	mean = sum / float64(len(rows))
	for _, r := range rows {
		d := r.y - mean
		sse += d * d
	}
	return mean, sse
}

// Predict implements Model.
func (t *BDT) Predict(f Features) float64 {
	if t.root == nil {
		return t.fallback
	}
	row := treeRow{user: f.User, x: [2]float64{lnNodes(f), lnWall(f)}}
	node := t.root
	for !node.isLeaf {
		c := candidateSplit{userSet: node.userSet, featIdx: node.featIdx, threshold: node.threshold}
		if c.goesLeft(row) {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// PredictWithStd returns the prediction together with the std of the
// training targets in the matched leaf and the leaf's sample count — an
// uncertainty estimate operators can use to size per-job cap headroom
// (a cap at prediction + k·std bounds throttling risk).
func (t *BDT) PredictWithStd(f Features) (pred, std float64, n int) {
	if t.root == nil {
		return t.fallback, 0, 0
	}
	row := treeRow{user: f.User, x: [2]float64{lnNodes(f), lnWall(f)}}
	node := t.root
	for !node.isLeaf {
		c := candidateSplit{userSet: node.userSet, featIdx: node.featIdx, threshold: node.threshold}
		if c.goesLeft(row) {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value, node.std, node.n
}

// Depth returns the fitted tree's depth (diagnostics, ablations).
func (t *BDT) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.isLeaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves (diagnostics, ablations).
func (t *BDT) Leaves() int { return leavesOf(t.root) }

func leavesOf(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}
