// Package mlearn implements the paper's pre-execution power prediction
// (§5, RQ9, Figs. 14-15) from scratch: three classic, light-weight models
// that predict a job's per-node power from the only three features
// available before execution — user id, node count, and requested
// walltime.
//
//   - BDT: a binary (CART) regression tree, the paper's best model
//     (90% of predictions under 10% absolute error);
//   - KNN: k-nearest-neighbour regression;
//   - FLDA: Fisher's linear discriminant analysis over power classes,
//     the weakest on diverse workloads (Emmy).
//
// The evaluation harness reproduces the paper's methodology: ten random
// 80/20 train/validation splits, constrained so every validation user is
// present in training, reporting pooled absolute-percentage-error CDFs
// (Fig. 14) and per-user mean error CDFs (Fig. 15).
package mlearn

import (
	"fmt"
	"math"

	"hpcpower/internal/rng"
	"hpcpower/internal/stats"
	"hpcpower/internal/trace"
)

// Features are the pre-execution job attributes the models may use.
type Features struct {
	User      string
	Nodes     int
	WallHours float64
}

// Sample couples features with the observed target.
type Sample struct {
	Features
	PowerW float64
}

// Model is a trainable per-node power predictor.
type Model interface {
	Name() string
	// Fit trains on the samples. Implementations must not retain the
	// slice header (they may copy).
	Fit(samples []Sample) error
	// Predict returns the predicted per-node power in watts.
	Predict(f Features) float64
}

// SamplesFromDataset extracts (features, power) pairs from a trace.
func SamplesFromDataset(ds *trace.Dataset) []Sample {
	out := make([]Sample, 0, len(ds.Jobs))
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		out = append(out, Sample{
			Features: Features{
				User:      j.User,
				Nodes:     j.Nodes,
				WallHours: j.ReqWall.Hours(),
			},
			PowerW: float64(j.AvgPowerPerNode),
		})
	}
	return out
}

// lnNodes and lnWall are the numeric encodings used by all models: node
// counts and walltimes are log-scaled (they span orders of magnitude).
func lnNodes(f Features) float64 { return math.Log(math.Max(float64(f.Nodes), 1)) }
func lnWall(f Features) float64  { return math.Log(math.Max(f.WallHours, 0.1)) }

// Split holds one train/validation partition.
type Split struct {
	Train, Valid []Sample
}

// StratifiedSplit draws a random 80/20 split with the paper's constraint:
// every user appearing in validation also appears in training. Users with
// a single job always land in training.
func StratifiedSplit(samples []Sample, validFrac float64, src *rng.Source) Split {
	if validFrac <= 0 || validFrac >= 1 {
		validFrac = 0.2
	}
	byUser := map[string][]int{}
	for i := range samples {
		byUser[samples[i].User] = append(byUser[samples[i].User], i)
	}
	var sp Split
	// Iterate deterministically: order indices, not map order.
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	src.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })

	// First pass: pick one anchor (training) job per user — the first of
	// the user's jobs in shuffled order.
	anchor := map[string]int{}
	for _, idx := range order {
		u := samples[idx].User
		if _, ok := anchor[u]; !ok {
			anchor[u] = idx
		}
	}
	for _, idx := range order {
		s := samples[idx]
		if anchor[s.User] == idx {
			sp.Train = append(sp.Train, s)
			continue
		}
		if src.Float64() < validFrac {
			sp.Valid = append(sp.Valid, s)
		} else {
			sp.Train = append(sp.Train, s)
		}
	}
	return sp
}

// Prediction is one validation outcome.
type Prediction struct {
	Features
	Actual, Predicted float64
}

// AbsErrPct returns |predicted − actual| / actual × 100, the paper's
// absolute prediction error.
func (p Prediction) AbsErrPct() float64 {
	if p.Actual == 0 {
		return math.NaN()
	}
	return 100 * math.Abs(p.Predicted-p.Actual) / p.Actual
}

// EvalResult aggregates a model's validation performance across splits.
type EvalResult struct {
	Model string
	Reps  int
	N     int // pooled validation predictions
	// Fig. 14: pooled absolute-error CDF and its headline points.
	ErrCDF        []stats.Point
	MeanErrPct    float64
	MedianErrPct  float64
	FracBelow5Pct float64 // % of predictions with <5% error
	FracBelow10   float64 // % of predictions with <10% error
	// Fig. 15: per-user mean absolute error CDF.
	PerUserCDF      []stats.Point
	FracUsersBelow5 float64 // % of users with mean error <5%
}

// EvalConfig parameterizes Evaluate.
type EvalConfig struct {
	Reps      int     // number of random splits (paper: 10)
	ValidFrac float64 // validation fraction (paper: 0.2)
	Seed      uint64
	CDFPoints int
}

// DefaultEvalConfig returns the paper's evaluation methodology.
func DefaultEvalConfig(seed uint64) EvalConfig {
	return EvalConfig{Reps: 10, ValidFrac: 0.2, Seed: seed, CDFPoints: 200}
}

// Evaluate trains and validates the model built by factory on cfg.Reps
// random stratified splits and pools the results.
func Evaluate(samples []Sample, factory func() Model, cfg EvalConfig) (EvalResult, error) {
	if len(samples) < 20 {
		return EvalResult{}, fmt.Errorf("mlearn: only %d samples", len(samples))
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 10
	}
	if cfg.CDFPoints <= 0 {
		cfg.CDFPoints = 200
	}
	root := rng.New(cfg.Seed)
	var name string
	var errs []float64
	perUserErrs := map[string][]float64{}
	for rep := 0; rep < cfg.Reps; rep++ {
		sp := StratifiedSplit(samples, cfg.ValidFrac, root.Split(uint64(rep)))
		m := factory()
		name = m.Name()
		if err := m.Fit(sp.Train); err != nil {
			return EvalResult{}, err
		}
		for _, v := range sp.Valid {
			p := Prediction{Features: v.Features, Actual: v.PowerW, Predicted: m.Predict(v.Features)}
			e := p.AbsErrPct()
			if math.IsNaN(e) {
				continue
			}
			errs = append(errs, e)
			perUserErrs[v.User] = append(perUserErrs[v.User], e)
		}
	}
	if len(errs) == 0 {
		return EvalResult{}, fmt.Errorf("mlearn: no valid predictions")
	}
	cdf := stats.NewECDF(errs)
	res := EvalResult{
		Model: name, Reps: cfg.Reps, N: len(errs),
		ErrCDF:        cdf.Points(cfg.CDFPoints),
		MeanErrPct:    cdf.Mean(),
		MedianErrPct:  cdf.Quantile(0.5),
		FracBelow5Pct: 100 * cdf.FractionBelow(5),
		FracBelow10:   100 * cdf.FractionBelow(10),
	}
	var userMeans []float64
	for _, es := range perUserErrs {
		userMeans = append(userMeans, stats.Mean(es))
	}
	uCDF := stats.NewECDF(userMeans)
	res.PerUserCDF = uCDF.Points(cfg.CDFPoints)
	res.FracUsersBelow5 = 100 * uCDF.FractionBelow(5)
	return res, nil
}

// EvaluateAll runs the paper's three models (Fig. 14) on one dataset.
func EvaluateAll(samples []Sample, cfg EvalConfig) ([]EvalResult, error) {
	factories := []func() Model{
		func() Model { return NewBDT(DefaultTreeParams()) },
		func() Model { return NewKNN(DefaultKNNParams()) },
		func() Model { return NewFLDA(DefaultFLDAParams()) },
	}
	var out []EvalResult
	for _, f := range factories {
		r, err := Evaluate(samples, f, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
