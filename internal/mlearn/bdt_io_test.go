package mlearn

import (
	"bytes"
	"strings"
	"testing"

	"hpcpower/internal/rng"
)

// ioSamples builds a deterministic training set with categorical
// structure (users with distinct power levels) and numeric structure.
func ioSamples(n int) []Sample {
	src := rng.New(99)
	users := []string{"u001", "u002", "u003", "u004", "u005", "u006"}
	base := []float64{95, 120, 140, 150, 175, 200}
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		u := int(src.Uint64() % uint64(len(users)))
		nodes := 1 + int(src.Uint64()%64)
		wall := 0.5 + 24*src.Float64()
		power := base[u] + 10*src.Float64() + 0.2*float64(nodes)
		out = append(out, Sample{
			Features: Features{User: users[u], Nodes: nodes, WallHours: wall},
			PowerW:   power,
		})
	}
	return out
}

func TestBDTSaveLoadRoundTrip(t *testing.T) {
	samples := ioSamples(400)
	train, held := samples[:320], samples[320:]
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBDT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Depth() != m.Depth() || loaded.Leaves() != m.Leaves() {
		t.Fatalf("shape changed: depth %d→%d leaves %d→%d",
			m.Depth(), loaded.Depth(), m.Leaves(), loaded.Leaves())
	}
	// Held-out plus unseen-user probes: predictions must be bit-identical.
	probes := make([]Features, 0, len(held)+2)
	for _, s := range held {
		probes = append(probes, s.Features)
	}
	probes = append(probes,
		Features{User: "unseen", Nodes: 8, WallHours: 12},
		Features{User: "u003", Nodes: 1024, WallHours: 0.01},
	)
	for _, f := range probes {
		if got, want := loaded.Predict(f), m.Predict(f); got != want {
			t.Fatalf("Predict(%+v) = %v after reload, want %v", f, got, want)
		}
		gp, gs, gn := loaded.PredictWithStd(f)
		wp, ws, wn := m.PredictWithStd(f)
		if gp != wp || gs != ws || gn != wn {
			t.Fatalf("PredictWithStd(%+v) = (%v,%v,%d), want (%v,%v,%d)", f, gp, gs, gn, wp, ws, wn)
		}
	}
}

func TestBDTSaveLoadUntrained(t *testing.T) {
	m := NewBDT(TreeParams{MaxDepth: 5, MinLeaf: 3})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBDT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.root != nil || loaded.params != m.params {
		t.Errorf("untrained round-trip: %+v", loaded)
	}
}

func TestLoadBDTRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"not json":      "xyzzy",
		"wrong format":  `{"format":"other","version":1}`,
		"wrong version": `{"format":"hpcpower-bdt","version":99}`,
		"child out of range": `{"format":"hpcpower-bdt","version":1,
			"nodes":[{"leaf":false,"feat":0,"l":5,"r":6}]}`,
		"cycle": `{"format":"hpcpower-bdt","version":1,
			"nodes":[{"leaf":false,"feat":0,"l":0,"r":0}]}`,
		"unreachable node": `{"format":"hpcpower-bdt","version":1,
			"nodes":[{"leaf":true,"value":1,"l":-1,"r":-1},{"leaf":true,"value":2,"l":-1,"r":-1}]}`,
		"bad feature": `{"format":"hpcpower-bdt","version":1,
			"nodes":[{"leaf":false,"feat":7,"l":1,"r":2},
			         {"leaf":true,"value":1,"l":-1,"r":-1},{"leaf":true,"value":2,"l":-1,"r":-1}]}`,
		"negative leaf n": `{"format":"hpcpower-bdt","version":1,
			"nodes":[{"leaf":true,"value":1,"n":-4,"l":-1,"r":-1}]}`,
	}
	for name, body := range cases {
		if _, err := LoadBDT(strings.NewReader(body)); err == nil {
			t.Errorf("%s: LoadBDT accepted malformed input", name)
		}
	}
}

// FuzzLoadBDT: model files come from operators' disks; loading must never
// panic, and any model that loads must predict without panicking.
func FuzzLoadBDT(f *testing.F) {
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(ioSamples(100)); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"format":"hpcpower-bdt","version":1,"nodes":[]}`)
	f.Add(`{"format":"hpcpower-bdt","version":1,"nodes":[{"leaf":false,"l":0,"r":0}]}`)
	f.Add(`{"format":"hpcpower-bdt","version":1,"fallback":1e308,"nodes":null}`)
	f.Add("{")
	f.Fuzz(func(t *testing.T, input string) {
		loaded, err := LoadBDT(strings.NewReader(input))
		if err != nil {
			return
		}
		// A file that loads must be a usable model.
		_ = loaded.Predict(Features{User: "u001", Nodes: 4, WallHours: 2})
		_ = loaded.Depth()
		_ = loaded.Leaves()
	})
}
