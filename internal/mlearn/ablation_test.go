package mlearn

import (
	"strings"
	"testing"
)

func TestBaseline(t *testing.T) {
	data := []Sample{
		{Features: Features{User: "a", Nodes: 1, WallHours: 1}, PowerW: 100},
		{Features: Features{User: "a", Nodes: 2, WallHours: 2}, PowerW: 120},
		{Features: Features{User: "b", Nodes: 1, WallHours: 1}, PowerW: 200},
	}
	m := NewBaseline()
	if m.Name() != "UserMean" {
		t.Errorf("name = %s", m.Name())
	}
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(Features{User: "a"}); got != 110 {
		t.Errorf("user a = %v", got)
	}
	if got := m.Predict(Features{User: "b"}); got != 200 {
		t.Errorf("user b = %v", got)
	}
	// Unseen user: global mean (100+120+200)/3 = 140.
	if got := m.Predict(Features{User: "z"}); got != 140 {
		t.Errorf("unseen = %v", got)
	}
	if err := NewBaseline().Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestFeatureSetString(t *testing.T) {
	cases := []struct {
		fs   FeatureSet
		want string
	}{
		{FeatureSet{}, "none"},
		{FeatureSet{User: true}, "user"},
		{FeatureSet{User: true, Wall: true}, "user+wall"},
		{FeatureSet{User: true, Nodes: true, Wall: true}, "user+nodes+wall"},
	}
	for _, c := range cases {
		if got := c.fs.String(); got != c.want {
			t.Errorf("%+v -> %q, want %q", c.fs, got, c.want)
		}
	}
}

func TestMaskedModelHidesFeatures(t *testing.T) {
	// A model trained with the user masked must give the same prediction
	// for every user.
	data := samples(t, "Emmy")
	factory := Masked(func() Model { return NewBDT(DefaultTreeParams()) }, FeatureSet{Nodes: true, Wall: true})
	m := factory()
	if !strings.Contains(m.Name(), "nodes+wall") {
		t.Errorf("name = %s", m.Name())
	}
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	p1 := m.Predict(Features{User: "u001", Nodes: 8, WallHours: 12})
	p2 := m.Predict(Features{User: "u999", Nodes: 8, WallHours: 12})
	if p1 != p2 {
		t.Errorf("masked user still matters: %v vs %v", p1, p2)
	}
}

func TestAblationOrdering(t *testing.T) {
	data := samples(t, "Emmy")
	cfg := EvalConfig{Reps: 3, ValidFrac: 0.2, Seed: 5}
	results, err := EvaluateAblation(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AblationSets) {
		t.Fatalf("results = %d", len(results))
	}
	get := func(name string) EvalResult {
		for _, r := range results {
			if r.Features.String() == name {
				return r.Result
			}
		}
		t.Fatalf("missing ablation %q", name)
		return EvalResult{}
	}
	userOnly := get("user")
	full := get("user+nodes+wall")
	noUser := get("nodes+wall")
	// Adding features to the user must not hurt (within noise).
	if full.MeanErrPct > userOnly.MeanErrPct+1 {
		t.Errorf("full features (%v%%) worse than user-only (%v%%)", full.MeanErrPct, userOnly.MeanErrPct)
	}
	// The user feature carries most of the signal: dropping it hurts a lot.
	if noUser.MeanErrPct < full.MeanErrPct+2 {
		t.Errorf("dropping the user barely hurts: %v%% vs %v%%", noUser.MeanErrPct, full.MeanErrPct)
	}
}

func TestBaselineWorseThanBDT(t *testing.T) {
	data := samples(t, "Emmy")
	cfg := EvalConfig{Reps: 3, ValidFrac: 0.2, Seed: 6}
	base, err := Evaluate(data, func() Model { return NewBaseline() }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bdt, err := Evaluate(data, func() Model { return NewBDT(DefaultTreeParams()) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(bdt.FracBelow10 > base.FracBelow10) {
		t.Errorf("BDT (%v%%) does not beat the user-mean baseline (%v%%)",
			bdt.FracBelow10, base.FracBelow10)
	}
}

func TestFeatureImportanceAndRootSplit(t *testing.T) {
	data := samples(t, "Emmy")
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	var total float64
	for _, v := range imp {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("importances sum to %v", total)
	}
	// The paper describes a user-first hierarchy; on synthetic data the
	// root may pick walltime instead (it proxies the application), but
	// the user must remain a heavyweight feature near the top.
	if root := m.RootSplitFeature(); root != "user" && root != "wall" {
		t.Errorf("root split = %q, want user or wall", root)
	}
	t.Logf("feature importance: %v", imp)
	if imp["user"] < 0.2 {
		t.Errorf("user importance = %v, want substantial", imp["user"])
	}
	// Untrained tree edge cases.
	empty := NewBDT(DefaultTreeParams())
	if empty.RootSplitFeature() != "" {
		t.Error("untrained tree has a root split")
	}
}

func TestPredictWithStd(t *testing.T) {
	data := samples(t, "Emmy")
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	for _, s := range data[:50] {
		pred, std, n := m.PredictWithStd(s.Features)
		if pred <= 0 {
			t.Fatalf("pred = %v", pred)
		}
		if std < 0 {
			t.Fatalf("std = %v", std)
		}
		if n < 1 {
			t.Fatalf("leaf samples = %d", n)
		}
		// PredictWithStd agrees with Predict.
		if p2 := m.Predict(s.Features); p2 != pred {
			t.Fatalf("Predict (%v) != PredictWithStd (%v)", p2, pred)
		}
	}
	// Untrained model: fallback with zero confidence.
	empty := NewBDT(DefaultTreeParams())
	if _, std, n := empty.PredictWithStd(Features{}); std != 0 || n != 0 {
		t.Errorf("untrained std/n = %v/%d", std, n)
	}
}

func TestPredictStdBoundsThrottleRisk(t *testing.T) {
	// Operators cap at prediction + k·std: with k=3, the observed power
	// of the SAME configuration should rarely exceed the cap.
	data := samples(t, "Emmy")
	m := NewBDT(DefaultTreeParams())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	exceed, total := 0, 0
	for _, s := range data {
		pred, std, n := m.PredictWithStd(s.Features)
		if n < 5 {
			continue // leaf too small for a meaningful bound
		}
		total++
		if s.PowerW > pred+3*std+1e-9 {
			exceed++
		}
	}
	if total == 0 {
		t.Fatal("no populated leaves")
	}
	if frac := float64(exceed) / float64(total); frac > 0.05 {
		t.Errorf("power exceeded pred+3·std for %.1f%% of jobs", 100*frac)
	}
}

func TestGridSearchBDT(t *testing.T) {
	data := samples(t, "Emmy")
	cfg := EvalConfig{Reps: 2, ValidFrac: 0.2, Seed: 8}
	grid, err := GridSearchBDT(data, []int{4, 12, 22}, []int{1, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 6 {
		t.Fatalf("grid points = %d", len(grid))
	}
	// Sorted best-first.
	for i := 1; i < len(grid); i++ {
		if grid[i].Result.FracBelow10 > grid[i-1].Result.FracBelow10 {
			t.Fatalf("grid not sorted at %d", i)
		}
	}
	// A severely depth-limited tree must underperform the default region:
	// robustness of the paper's conclusion to tuning, not knife-edge.
	byLabel := map[string]EvalResult{}
	for _, g := range grid {
		byLabel[g.Label] = g.Result
	}
	if byLabel["depth=4,minleaf=8"].FracBelow10 >= byLabel["depth=22,minleaf=1"].FracBelow10 {
		t.Errorf("shallow tree (%v) not worse than deep (%v)",
			byLabel["depth=4,minleaf=8"].FracBelow10, byLabel["depth=22,minleaf=1"].FracBelow10)
	}
	if _, err := GridSearchBDT(data, nil, []int{1}, cfg); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestGridSearchKNN(t *testing.T) {
	data := samples(t, "Emmy")
	cfg := EvalConfig{Reps: 2, ValidFrac: 0.2, Seed: 9}
	grid, err := GridSearchKNN(data, []int{1, 5, 25}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 {
		t.Fatalf("grid points = %d", len(grid))
	}
	// A huge k blurs distinct configurations together: worse than small k.
	byLabel := map[string]EvalResult{}
	for _, g := range grid {
		byLabel[g.Label] = g.Result
	}
	if byLabel["k=25"].FracBelow10 >= byLabel["k=1"].FracBelow10 {
		t.Errorf("k=25 (%v) not worse than k=1 (%v)",
			byLabel["k=25"].FracBelow10, byLabel["k=1"].FracBelow10)
	}
	if _, err := GridSearchKNN(data, nil, cfg); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestErrorByUserVolume(t *testing.T) {
	data := samples(t, "Emmy")
	cfg := EvalConfig{Reps: 3, ValidFrac: 0.2, Seed: 10}
	buckets, err := ErrorByUserVolume(data, func() Model { return NewBDT(DefaultTreeParams()) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	totalUsers := 0
	for i, b := range buckets {
		if b.Quartile != i+1 {
			t.Errorf("quartile order: %+v", b)
		}
		if b.Users <= 0 || b.MeanErrPct < 0 {
			t.Errorf("degenerate bucket: %+v", b)
		}
		totalUsers += b.Users
		// Buckets ordered by activity: max jobs non-decreasing.
		if i > 0 && b.MinJobs < buckets[i-1].MinJobs {
			t.Errorf("bucket %d overlaps previous: %+v", i, b)
		}
	}
	if totalUsers < 30 {
		t.Errorf("users covered = %d", totalUsers)
	}
	// The heavy quartile has the best coverage, hence the lowest error.
	if !(buckets[3].MedianErrPct <= buckets[0].MedianErrPct) {
		t.Errorf("heavy users (%.1f%%) should predict no worse than light (%.1f%%)",
			buckets[3].MedianErrPct, buckets[0].MedianErrPct)
	}
	if _, err := ErrorByUserVolume(nil, func() Model { return NewBDT(DefaultTreeParams()) }, cfg); err == nil {
		t.Error("empty samples accepted")
	}
}
