package mlearn

import (
	"fmt"
	"sort"
)

// KNNParams tunes the k-nearest-neighbour regressor.
type KNNParams struct {
	K int
	// UserMismatchPenalty is added to the distance when the query and the
	// candidate belong to different users. Same-user history dominates,
	// matching how the paper describes KNN clustering jobs with "small
	// distance" in (nodes, walltime) space.
	UserMismatchPenalty float64
}

// DefaultKNNParams returns the parameters used for Fig. 14.
func DefaultKNNParams() KNNParams {
	return KNNParams{K: 5, UserMismatchPenalty: 4.0}
}

// KNN predicts a job's power as the mean of its k nearest training jobs
// in (user, ln nodes, ln walltime) space. Its characteristic failure mode
// — blending configurations that are close in size/walltime but far in
// power — is exactly the weakness the paper reports.
type KNN struct {
	params KNNParams
	// samples grouped by user for fast same-user lookup.
	byUser map[string][]knnRow
	all    []knnRow
	global float64
}

type knnRow struct {
	x [2]float64
	y float64
}

// NewKNN returns an untrained model.
func NewKNN(p KNNParams) *KNN {
	if p.K <= 0 {
		p.K = 5
	}
	return &KNN{params: p}
}

// Name implements Model.
func (k *KNN) Name() string { return "KNN" }

// Fit implements Model.
func (k *KNN) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("mlearn: KNN fit on empty training set")
	}
	k.byUser = map[string][]knnRow{}
	k.all = make([]knnRow, 0, len(samples))
	var sum float64
	for _, s := range samples {
		row := knnRow{x: [2]float64{lnNodes(s.Features), lnWall(s.Features)}, y: s.PowerW}
		k.byUser[s.User] = append(k.byUser[s.User], row)
		k.all = append(k.all, row)
		sum += s.PowerW
	}
	k.global = sum / float64(len(samples))
	return nil
}

// Predict implements Model.
func (k *KNN) Predict(f Features) float64 {
	if len(k.all) == 0 {
		return k.global
	}
	q := [2]float64{lnNodes(f), lnWall(f)}
	type scored struct {
		d float64
		y float64
	}
	var cands []scored
	// Same-user candidates at zero penalty.
	for _, r := range k.byUser[f.User] {
		cands = append(cands, scored{d: dist2(q, r.x), y: r.y})
	}
	// If the user's history cannot fill k neighbours, widen to the whole
	// training set with the mismatch penalty.
	if len(cands) < k.params.K {
		for _, r := range k.all {
			cands = append(cands, scored{d: dist2(q, r.x) + k.params.UserMismatchPenalty, y: r.y})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	n := k.params.K
	if n > len(cands) {
		n = len(cands)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += cands[i].y
	}
	return sum / float64(n)
}

func dist2(a, b [2]float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	return d0*d0 + d1*d1
}
