package mlearn

import (
	"fmt"
	"math"
	"sort"
)

// FLDAParams tunes Fisher's linear discriminant analysis.
type FLDAParams struct {
	// Classes is the number of power classes (quantile bins of the
	// training target).
	Classes int
	// Ridge is added to the pooled covariance diagonal for stability.
	Ridge float64
}

// DefaultFLDAParams returns the parameters used for Fig. 14.
func DefaultFLDAParams() FLDAParams { return FLDAParams{Classes: 10, Ridge: 1e-4} }

// FLDA classifies jobs into power classes with linear discriminant
// functions over three numeric features — target-encoded user (the user's
// mean training power), ln nodes, ln walltime — assuming a shared
// covariance, and predicts the training-mean power of the chosen class.
//
// A linear decision boundary cannot carve up a workload as diverse as
// Emmy's, which is why the paper finds FLDA the weakest model there.
type FLDA struct {
	params FLDAParams
	// classMean[c] is the mean power of class c; discriminants hold the
	// per-class linear functions g_c(x) = w·x + b.
	classMean []float64
	weights   [][3]float64
	biases    []float64
	userMean  map[string]float64
	global    float64
	fitted    bool
}

// NewFLDA returns an untrained model.
func NewFLDA(p FLDAParams) *FLDA {
	if p.Classes < 2 {
		p.Classes = 10
	}
	if p.Ridge <= 0 {
		p.Ridge = 1e-4
	}
	return &FLDA{params: p}
}

// Name implements Model.
func (f *FLDA) Name() string { return "FLDA" }

// Fit implements Model.
func (f *FLDA) Fit(samples []Sample) error {
	if len(samples) < f.params.Classes {
		return fmt.Errorf("mlearn: FLDA needs at least %d samples, got %d", f.params.Classes, len(samples))
	}
	// Target-encode users.
	sums := map[string]float64{}
	counts := map[string]int{}
	var total float64
	for _, s := range samples {
		sums[s.User] += s.PowerW
		counts[s.User]++
		total += s.PowerW
	}
	f.global = total / float64(len(samples))
	f.userMean = make(map[string]float64, len(sums))
	for u, sum := range sums {
		f.userMean[u] = sum / float64(counts[u])
	}

	// Quantile class boundaries over the target.
	targets := make([]float64, len(samples))
	for i, s := range samples {
		targets[i] = s.PowerW
	}
	sort.Float64s(targets)
	nc := f.params.Classes
	bounds := make([]float64, nc-1)
	for c := 1; c < nc; c++ {
		bounds[c-1] = targets[c*len(targets)/nc]
	}
	classOf := func(y float64) int {
		c := sort.SearchFloat64s(bounds, y)
		return c
	}

	// Per-class means and pooled within-class covariance over features.
	xs := make([][3]float64, len(samples))
	cls := make([]int, len(samples))
	classN := make([]int, nc)
	classSum := make([][3]float64, nc)
	classPow := make([]float64, nc)
	for i, s := range samples {
		xs[i] = f.encode(s.Features)
		cls[i] = classOf(s.PowerW)
		classN[cls[i]]++
		for d := 0; d < 3; d++ {
			classSum[cls[i]][d] += xs[i][d]
		}
		classPow[cls[i]] += s.PowerW
	}
	classMeanX := make([][3]float64, nc)
	f.classMean = make([]float64, nc)
	for c := 0; c < nc; c++ {
		if classN[c] == 0 {
			f.classMean[c] = f.global
			continue
		}
		for d := 0; d < 3; d++ {
			classMeanX[c][d] = classSum[c][d] / float64(classN[c])
		}
		f.classMean[c] = classPow[c] / float64(classN[c])
	}
	var cov [3][3]float64
	for i := range xs {
		m := classMeanX[cls[i]]
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				cov[a][b] += (xs[i][a] - m[a]) * (xs[i][b] - m[b])
			}
		}
	}
	denom := float64(len(xs) - nc)
	if denom < 1 {
		denom = 1
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			cov[a][b] /= denom
		}
		cov[a][a] += f.params.Ridge
	}
	inv, ok := invert3(cov)
	if !ok {
		return fmt.Errorf("mlearn: singular pooled covariance")
	}

	// Linear discriminants: g_c(x) = μ_c^T Σ⁻¹ x − ½ μ_c^T Σ⁻¹ μ_c + ln π_c.
	f.weights = make([][3]float64, nc)
	f.biases = make([]float64, nc)
	for c := 0; c < nc; c++ {
		if classN[c] == 0 {
			f.biases[c] = math.Inf(-1)
			continue
		}
		w := mulVec3(inv, classMeanX[c])
		f.weights[c] = w
		f.biases[c] = -0.5*dot3(w, classMeanX[c]) + math.Log(float64(classN[c])/float64(len(xs)))
	}
	f.fitted = true
	return nil
}

// encode maps features to the numeric vector (user mean power scaled,
// ln nodes, ln wall). Unseen users fall back to the global mean.
func (f *FLDA) encode(feat Features) [3]float64 {
	um, ok := f.userMean[feat.User]
	if !ok {
		um = f.global
	}
	// Scale the power encoding into the same ballpark as the log features
	// so the shared covariance is well-conditioned.
	return [3]float64{um / 100.0, lnNodes(feat), lnWall(feat)}
}

// Predict implements Model.
func (f *FLDA) Predict(feat Features) float64 {
	if !f.fitted {
		return f.global
	}
	x := f.encode(feat)
	best := 0
	bestG := math.Inf(-1)
	for c := range f.weights {
		g := dot3(f.weights[c], x) + f.biases[c]
		if g > bestG {
			bestG = g
			best = c
		}
	}
	return f.classMean[best]
}

// invert3 inverts a 3×3 matrix; ok is false when it is singular.
func invert3(m [3][3]float64) ([3][3]float64, bool) {
	a, b, c := m[0][0], m[0][1], m[0][2]
	d, e, f := m[1][0], m[1][1], m[1][2]
	g, h, i := m[2][0], m[2][1], m[2][2]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if math.Abs(det) < 1e-18 {
		return [3][3]float64{}, false
	}
	inv := [3][3]float64{
		{(e*i - f*h) / det, (c*h - b*i) / det, (b*f - c*e) / det},
		{(f*g - d*i) / det, (a*i - c*g) / det, (c*d - a*f) / det},
		{(d*h - e*g) / det, (b*g - a*h) / det, (a*e - b*d) / det},
	}
	return inv, true
}

func mulVec3(m [3][3]float64, v [3]float64) [3]float64 {
	var out [3]float64
	for r := 0; r < 3; r++ {
		out[r] = m[r][0]*v[0] + m[r][1]*v[1] + m[r][2]*v[2]
	}
	return out
}

func dot3(a, b [3]float64) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }
