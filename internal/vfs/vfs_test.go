package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.dat")
	f, err := OS.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt = %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(OS, name)
	if err != nil || string(b) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Rename(name, name+".2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(name + ".2"); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTempUniqueAndCleanable(t *testing.T) {
	dir := t.TempDir()
	f1, err := CreateTemp(OS, dir, "snap-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CreateTemp(OS, dir, "snap-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if f1.Name() == f2.Name() {
		t.Fatalf("duplicate temp names: %s", f1.Name())
	}
	for _, f := range []File{f1, f2} {
		if !strings.HasPrefix(filepath.Base(f.Name()), "snap-") || !strings.HasSuffix(f.Name(), ".tmp") {
			t.Fatalf("temp name %q does not match pattern", f.Name())
		}
		f.Close()
		if err := OS.Remove(f.Name()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFaultFSZeroConfigPassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS, FaultConfig{})
	name := filepath.Join(dir, "p.dat")
	f, err := ffs.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "abc" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	f.Close()
	if s := ffs.Stats(); s != (FaultStats{}) {
		t.Fatalf("zero config injected faults: %+v", s)
	}
}

func TestFaultFSWriteEIODeterministic(t *testing.T) {
	run := func() (errs int) {
		dir := t.TempDir()
		ffs := NewFault(OS, FaultConfig{Seed: 42, WriteErrProb: 0.5})
		f, err := ffs.OpenFile(filepath.Join(dir, "w.dat"), os.O_RDWR|os.O_CREATE, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 64; i++ {
			if _, err := f.Write([]byte{byte(i)}); err != nil {
				if !errors.Is(err, syscall.EIO) {
					t.Fatalf("want EIO, got %v", err)
				}
				errs++
			}
		}
		return errs
	}
	a, b := run(), run()
	if a == 0 || a != b {
		t.Fatalf("want deterministic nonzero error count, got %d vs %d", a, b)
	}
}

func TestFaultFSENOSPCBudgetAndRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS, FaultConfig{WriteBudget: 8, ENOSPCFor: 50 * time.Millisecond})
	f, err := ffs.OpenFile(filepath.Join(dir, "b.dat"), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := f.Write([]byte{1}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := f.Write(make([]byte, 1024)); err != nil {
		t.Fatalf("after recovery window: %v", err)
	}
	if s := ffs.Stats(); s.ENOSPC == 0 {
		t.Fatalf("ENOSPC not counted: %+v", s)
	}
}

func TestFaultFSTornWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS, FaultConfig{Seed: 1, WriteErrProb: 1, TornWrites: true})
	name := filepath.Join(dir, "t.dat")
	f, err := ffs.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = 0xAB
	}
	n, werr := f.Write(payload)
	if werr == nil {
		t.Fatal("want injected write error")
	}
	f.Close()
	st, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != st.Size() || st.Size() >= int64(len(payload)) {
		t.Fatalf("torn write: reported n=%d, on disk %d, payload %d", n, st.Size(), len(payload))
	}
}

func TestFaultFSBitFlipDoesNotTouchDisk(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "r.dat")
	if err := os.WriteFile(name, make([]byte, 64), 0o600); err != nil {
		t.Fatal(err)
	}
	ffs := NewFault(OS, FaultConfig{Seed: 3, BitFlipProb: 1})
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	flipped := 0
	for _, b := range buf {
		if b != 0 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("want exactly one flipped byte in returned buffer, got %d", flipped)
	}
	onDisk, _ := os.ReadFile(name)
	for _, b := range onDisk {
		if b != 0 {
			t.Fatal("bit flip leaked to disk")
		}
	}
}

func TestFaultFSPathFilter(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(OS, FaultConfig{WriteErrProb: 1, PathSubstring: "wal-"})
	free, err := ffs.OpenFile(filepath.Join(dir, "other.dat"), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := free.Write([]byte("x")); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	free.Close()
	hit, err := ffs.OpenFile(filepath.Join(dir, "wal-0001.seg"), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hit.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching path not faulted: %v", err)
	}
	hit.Close()
}

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7,write-eio=0.25,sync-eio=0.5,read-eio=0.125,bitflip=1,torn=1,enospc-after=4096,enospc-for=5s,latency=1ms,path=wal-")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{
		Seed: 7, WriteErrProb: 0.25, SyncErrProb: 0.5, ReadErrProb: 0.125,
		BitFlipProb: 1, TornWrites: true, WriteBudget: 4096,
		ENOSPCFor: 5 * time.Second, Latency: time.Millisecond, PathSubstring: "wal-",
	}
	if cfg != want {
		t.Fatalf("ParseFaultSpec = %+v, want %+v", cfg, want)
	}
	if _, err := ParseFaultSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if _, err := ParseFaultSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseFaultSpec("seed"); err == nil {
		t.Fatal("missing '=' accepted")
	}
}
