// Package vfs is the filesystem seam under every durable byte powserved
// writes: a minimal FS/File interface with a passthrough OS
// implementation and a deterministic fault injector (FaultFS), so the
// WAL, snapshot, and block-store code paths can be driven through EIO,
// ENOSPC, torn writes, and bit rot in tests and smoke drills without
// touching a real failing disk.
//
// The interface is deliberately small — exactly the operations the
// durability layer performs (open/create, write, positional read, sync,
// rename, remove, truncate, directory listing and sync) — and carries no
// dependencies, so threading it through a package costs one Options
// field defaulting to OS.
package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// File is one open file. The durability layer only ever needs
// sequential writes, positional reads, fsync, and truncation.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size without moving the offset.
	Truncate(size int64) error
}

// Fder is optionally implemented by files backed by a real descriptor;
// callers that need one (flock) type-assert and degrade gracefully
// when the FS cannot provide it.
type Fder interface {
	Fd() uintptr
}

// FS is a filesystem. All paths are interpreted as by package os.
type FS interface {
	// OpenFile is the generalized open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and creates in it
	// durable.
	SyncDir(dir string) error
}

// OS is the passthrough filesystem every production path uses.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error)             { return os.Open(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads the whole named file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// tempSeq makes CreateTemp names unique within a process.
var tempSeq atomic.Uint64

// CreateTemp creates a new file in dir with a name built from pattern
// (the first "*" is replaced; no "*" appends the suffix), mirroring
// os.CreateTemp but routed through fsys. Names are unique per process
// (pid + counter), which is all the durability layer needs — stray
// temp files from a dead process are swept or ignored by recovery.
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	prefix, suffix := pattern, ""
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '*' {
			prefix, suffix = pattern[:i], pattern[i+1:]
			break
		}
	}
	for attempt := 0; attempt < 1000; attempt++ {
		name := fmt.Sprintf("%s%s%d-%d%s", dir+string(os.PathSeparator), prefix,
			os.Getpid(), tempSeq.Add(1), suffix)
		f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if os.IsExist(err) {
			continue
		}
		return f, err
	}
	return nil, fmt.Errorf("vfs: could not create temp file in %s", dir)
}
