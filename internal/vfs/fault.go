package vfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// FaultConfig describes the faults a FaultFS injects. The zero value
// injects nothing — a FaultFS with a zero config is a passthrough.
type FaultConfig struct {
	// Seed makes the injected fault sequence reproducible for a given
	// operation order.
	Seed int64
	// ReadErrProb / WriteErrProb / SyncErrProb are per-operation EIO
	// probabilities in [0,1].
	ReadErrProb  float64
	WriteErrProb float64
	SyncErrProb  float64
	// BitFlipProb is the per-read probability that one bit of the
	// returned data is flipped (the file on disk is untouched).
	BitFlipProb float64
	// TornWrites makes injected write errors land a partial prefix of
	// the buffer first, modeling a write torn by power loss.
	TornWrites bool
	// WriteBudget, when > 0, is the number of bytes that may be written
	// before writes start failing with ENOSPC.
	WriteBudget int64
	// ENOSPCFor, when > 0 together with WriteBudget, bounds the outage:
	// after the budget is exhausted writes fail with ENOSPC for this
	// duration, then space "frees" and the budget becomes unlimited.
	ENOSPCFor time.Duration
	// Latency is added to every faultable operation.
	Latency time.Duration
	// PathSubstring, when non-empty, restricts fault injection to files
	// whose path contains it. Non-matching files pass through.
	PathSubstring string
}

// FaultStats counts injected faults.
type FaultStats struct {
	ReadErrors  int64
	WriteErrors int64
	SyncErrors  int64
	BitFlips    int64
	ENOSPC      int64
	TornWrites  int64
}

// FaultFS wraps an FS and injects deterministic, seedable disk faults.
// It is safe for concurrent use; determinism holds for a fixed
// operation order.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	cfg       FaultConfig
	rng       *rand.Rand
	written   int64
	exhausted time.Time // when the write budget ran out; zero = not yet
	stats     FaultStats
}

// NewFault wraps inner with fault injection per cfg.
func NewFault(inner FS, cfg FaultConfig) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Configure atomically adjusts the fault configuration at runtime.
func (f *FaultFS) Configure(fn func(*FaultConfig)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(&f.cfg)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// faulted reports whether the path is subject to injection.
func (f *FaultFS) faulted(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.PathSubstring == "" || strings.Contains(name, f.cfg.PathSubstring)
}

func (f *FaultFS) lag() {
	f.mu.Lock()
	d := f.cfg.Latency
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// roll draws against prob under the lock.
func (f *FaultFS) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	return f.rng.Float64() < prob
}

// admitWrite charges n bytes against the budget. It returns the number
// of bytes allowed (possibly torn short) and whether an error should be
// injected, already counted in stats.
func (f *FaultFS) admitWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.WriteBudget > 0 {
		if f.written >= f.cfg.WriteBudget {
			if f.exhausted.IsZero() {
				f.exhausted = time.Now()
			}
			if f.cfg.ENOSPCFor > 0 && time.Since(f.exhausted) >= f.cfg.ENOSPCFor {
				// Space freed: lift the budget for the rest of the run.
				f.cfg.WriteBudget = 0
				f.written = 0
			} else {
				f.stats.ENOSPC++
				return 0, syscall.ENOSPC
			}
		}
	}
	if f.roll(f.cfg.WriteErrProb) {
		f.stats.WriteErrors++
		torn := 0
		if f.cfg.TornWrites && n > 1 {
			torn = f.rng.Intn(n)
			f.stats.TornWrites++
		}
		f.written += int64(torn)
		return torn, syscall.EIO
	}
	f.written += int64(n)
	return n, nil
}

// admitRead decides read faults: an injected EIO, or the index of a bit
// to flip in an n-byte read (-1 = none).
func (f *FaultFS) admitRead(n int) (flipBit int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.roll(f.cfg.ReadErrProb) {
		f.stats.ReadErrors++
		return -1, syscall.EIO
	}
	if n > 0 && f.roll(f.cfg.BitFlipProb) {
		f.stats.BitFlips++
		return f.rng.Int63n(int64(n) * 8), nil
	}
	return -1, nil
}

func (f *FaultFS) admitSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.roll(f.cfg.SyncErrProb) {
		f.stats.SyncErrors++
		return syscall.EIO
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if !f.faulted(name) {
		return inner, nil
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	if !f.faulted(name) {
		return inner, nil
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error)      { return f.inner.Stat(name) }
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) Rename(oldpath, newpath string) error       { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error                   { return f.inner.Remove(name) }
func (f *FaultFS) Truncate(name string, size int64) error     { return f.inner.Truncate(name, size) }

func (f *FaultFS) SyncDir(dir string) error {
	if f.faulted(dir) {
		f.lag()
		if err := f.admitSync(); err != nil {
			return &fs.PathError{Op: "syncdir", Path: dir, Err: err}
		}
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies the parent FaultFS policy to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Name() string { return ff.inner.Name() }
func (ff *faultFile) Close() error { return ff.inner.Close() }

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.inner.Seek(offset, whence)
}

func (ff *faultFile) Truncate(size int64) error { return ff.inner.Truncate(size) }

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.lag()
	allow, ferr := ff.fs.admitWrite(len(p))
	if ferr != nil {
		n := 0
		if allow > 0 {
			// Torn write: a prefix lands before the failure.
			n, _ = ff.inner.Write(p[:allow])
		}
		return n, &fs.PathError{Op: "write", Path: ff.inner.Name(), Err: ferr}
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.lag()
	allow, ferr := ff.fs.admitWrite(len(p))
	if ferr != nil {
		n := 0
		if allow > 0 {
			n, _ = ff.inner.WriteAt(p[:allow], off)
		}
		return n, &fs.PathError{Op: "write", Path: ff.inner.Name(), Err: ferr}
	}
	return ff.inner.WriteAt(p, off)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.fs.lag()
	bit, ferr := ff.fs.admitRead(len(p))
	if ferr != nil {
		return 0, &fs.PathError{Op: "read", Path: ff.inner.Name(), Err: ferr}
	}
	n, err := ff.inner.Read(p)
	flipBit(p, n, bit)
	return n, err
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.fs.lag()
	bit, ferr := ff.fs.admitRead(len(p))
	if ferr != nil {
		return 0, &fs.PathError{Op: "read", Path: ff.inner.Name(), Err: ferr}
	}
	n, err := ff.inner.ReadAt(p, off)
	flipBit(p, n, bit)
	return n, err
}

func (ff *faultFile) Sync() error {
	ff.fs.lag()
	if err := ff.fs.admitSync(); err != nil {
		return &fs.PathError{Op: "sync", Path: ff.inner.Name(), Err: err}
	}
	return ff.inner.Sync()
}

// Fd forwards the descriptor when the inner file has one (flock).
func (ff *faultFile) Fd() uintptr {
	if fd, ok := ff.inner.(Fder); ok {
		return fd.Fd()
	}
	return ^uintptr(0)
}

// flipBit flips the given bit (drawn over the request size) if it falls
// inside the n bytes actually read.
func flipBit(p []byte, n int, bit int64) {
	if bit < 0 || int(bit/8) >= n {
		return
	}
	p[bit/8] ^= 1 << uint(bit%8)
}

// ParseFaultSpec parses a comma-separated key=value fault spec into a
// FaultConfig, e.g.
//
//	seed=7,write-eio=0.001,sync-eio=0,bitflip=1e-6,torn=1,enospc-after=4194304,enospc-for=5s,latency=1ms,path=wal-
//
// Unknown keys are an error so typos in smoke scripts fail loudly.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("vfs: fault spec %q: missing '='", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "read-eio":
			cfg.ReadErrProb, err = strconv.ParseFloat(v, 64)
		case "write-eio":
			cfg.WriteErrProb, err = strconv.ParseFloat(v, 64)
		case "sync-eio":
			cfg.SyncErrProb, err = strconv.ParseFloat(v, 64)
		case "bitflip":
			cfg.BitFlipProb, err = strconv.ParseFloat(v, 64)
		case "torn":
			cfg.TornWrites = v == "1" || v == "true"
		case "enospc-after":
			cfg.WriteBudget, err = strconv.ParseInt(v, 10, 64)
		case "enospc-for":
			cfg.ENOSPCFor, err = time.ParseDuration(v)
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "path":
			cfg.PathSubstring = v
		default:
			return cfg, fmt.Errorf("vfs: fault spec: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("vfs: fault spec %q: %v", kv, err)
		}
	}
	return cfg, nil
}
