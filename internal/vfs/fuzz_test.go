package vfs

import (
	"testing"
)

// FuzzParseFaultSpec checks the spec parser never panics and that every
// accepted spec re-parses to the same config (the parser is the
// operator-facing surface of -fault-disk, so garbage must fail loudly
// and valid specs must be stable).
func FuzzParseFaultSpec(f *testing.F) {
	f.Add("seed=7,write-eio=0.001")
	f.Add("enospc-after=4194304,enospc-for=5s,torn=1")
	f.Add("path=wal-,latency=250us,bitflip=1e-6")
	f.Add(",,,=,==")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseFaultSpec(spec)
		if err != nil {
			return
		}
		if cfg.ReadErrProb < 0 || cfg.WriteErrProb < 0 || cfg.SyncErrProb < 0 {
			// Negative probabilities are inert (roll() treats them as
			// never), so accepting them is fine; just ensure the
			// injector construction never panics.
		}
		ffs := NewFault(OS, cfg)
		_ = ffs.Stats()
	})
}
