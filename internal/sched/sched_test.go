package sched

import (
	"testing"
	"testing/quick"
	"time"

	"hpcpower/internal/rng"
	"hpcpower/internal/units"
)

var t0 = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)

func req(id uint64, nodes int, wall, run time.Duration, submit time.Time) Request {
	return Request{
		ID: id, User: "u", App: "A", Nodes: nodes,
		ReqWall: wall, Runtime: run, Submit: submit,
	}
}

func TestEmptyMachineStartsImmediately(t *testing.T) {
	ps, err := Simulate(4, []Request{req(1, 2, time.Hour, 30*time.Minute, t0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("placements = %d", len(ps))
	}
	p := ps[0]
	if !p.Start.Equal(t0) {
		t.Errorf("start = %v", p.Start)
	}
	if !p.End.Equal(t0.Add(30 * time.Minute)) {
		t.Errorf("end = %v", p.End)
	}
	if len(p.NodeIDs) != 2 || p.NodeIDs[0] != 0 || p.NodeIDs[1] != 1 {
		t.Errorf("nodes = %v", p.NodeIDs)
	}
}

func TestFCFSQueuesWhenFull(t *testing.T) {
	// Job 1 fills the machine for 1h; job 2 must wait for it.
	reqs := []Request{
		req(1, 4, time.Hour, time.Hour, t0),
		req(2, 3, time.Hour, 30*time.Minute, t0.Add(time.Minute)),
	}
	ps, err := Simulate(4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !ps[1].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("job 2 start = %v, want %v", ps[1].Start, t0.Add(time.Hour))
	}
}

func TestRuntimeCappedAtWalltime(t *testing.T) {
	ps, err := Simulate(2, []Request{req(1, 1, time.Hour, 3*time.Hour, t0)})
	if err != nil {
		t.Fatal(err)
	}
	if got := ps[0].End.Sub(ps[0].Start); got != time.Hour {
		t.Errorf("runtime = %v, want capped at 1h", got)
	}
}

func TestEASYBackfillSmallJobJumps(t *testing.T) {
	// Machine: 4 nodes. J1 takes all 4 for 2h. J2 (head of queue) wants 4
	// nodes. J3 wants 1 node for 1h: it can backfill into the idle nodes
	// without delaying J2's reservation (shadow = J1 end).
	reqs := []Request{
		req(1, 4, 2*time.Hour, 2*time.Hour, t0),
		req(2, 4, time.Hour, time.Hour, t0.Add(time.Minute)),
		req(3, 1, time.Hour, time.Hour, t0.Add(2*time.Minute)),
	}
	ps, err := Simulate(4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	// J3 cannot backfill: zero nodes free while J1 runs. Make a variant
	// where J1 leaves one node idle.
	if !byID[2].Start.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("head start = %v", byID[2].Start)
	}

	reqs = []Request{
		req(1, 3, 2*time.Hour, 2*time.Hour, t0),
		req(2, 4, time.Hour, time.Hour, t0.Add(time.Minute)),
		req(3, 1, time.Hour, time.Hour, t0.Add(2*time.Minute)),
	}
	ps, err = Simulate(4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	byID = map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	// J3 fits in the idle node and finishes before the shadow time (J1's
	// estimated end at t0+2h): it backfills at its submit time.
	if !byID[3].Start.Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("backfill start = %v, want %v", byID[3].Start, t0.Add(2*time.Minute))
	}
	// The head must still start exactly at the shadow time.
	if !byID[2].Start.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("head delayed to %v by backfill", byID[2].Start)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// J3's walltime would run past the shadow time and it needs the nodes
	// the head reserved -> it must NOT backfill.
	reqs := []Request{
		req(1, 3, time.Hour, time.Hour, t0),
		req(2, 4, time.Hour, time.Hour, t0.Add(time.Minute)),
		req(3, 1, 3*time.Hour, 3*time.Hour, t0.Add(2*time.Minute)),
	}
	ps, err := Simulate(4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	if !byID[2].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("head start = %v, want %v", byID[2].Start, t0.Add(time.Hour))
	}
	if byID[3].Start.Before(byID[2].Start) {
		t.Errorf("J3 backfilled at %v and delayed the head", byID[3].Start)
	}
}

func TestBackfillIntoSpareNodes(t *testing.T) {
	// Head needs 3 of 4 nodes at shadow time; one node is spare, so a
	// long 1-node job may backfill even though it outlives the shadow.
	reqs := []Request{
		req(1, 4, time.Hour, time.Hour, t0),
		req(2, 3, time.Hour, time.Hour, t0.Add(time.Minute)),
		req(3, 1, 10*time.Hour, 10*time.Hour, t0.Add(2*time.Minute)),
	}
	ps, err := Simulate(4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	// At t0+1h J1 ends; head J2 takes 3 nodes, J3 should run on the spare
	// node no later than that (it cannot start earlier: machine full).
	if byID[3].Start.After(t0.Add(time.Hour)) {
		t.Errorf("spare-node backfill start = %v", byID[3].Start)
	}
	if !byID[2].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("head start = %v", byID[2].Start)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(0, nil); err == nil {
		t.Error("zero-node machine accepted")
	}
	bad := []Request{req(1, 5, time.Hour, time.Hour, t0)}
	if _, err := Simulate(4, bad); err == nil {
		t.Error("oversized job accepted")
	}
	for _, r := range []Request{
		req(1, 0, time.Hour, time.Hour, t0),
		req(1, 1, 0, time.Hour, t0),
		req(1, 1, time.Hour, 0, t0),
	} {
		if _, err := Simulate(4, []Request{r}); err == nil {
			t.Errorf("invalid request accepted: %+v", r)
		}
	}
}

func TestDeterminism(t *testing.T) {
	reqs := randomRequests(rng.New(3), 200, 16)
	a, err := Simulate(16, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(16, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Start.Equal(b[i].Start) {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func randomRequests(src *rng.Source, n, machineNodes int) []Request {
	reqs := make([]Request, n)
	cur := t0
	for i := range reqs {
		cur = cur.Add(time.Duration(src.Exp(10)) * time.Minute)
		wall := time.Duration(1+src.Intn(8)) * time.Hour
		run := time.Duration(float64(wall) * (0.2 + 0.8*src.Float64()))
		if run < time.Minute {
			run = time.Minute
		}
		reqs[i] = req(uint64(i+1), 1+src.Intn(machineNodes), wall, run, cur)
	}
	return reqs
}

// TestNoDoubleBooking is the core safety property: at no instant may two
// jobs share a node, and every job gets exactly the nodes it asked for.
func TestNoDoubleBooking(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		machine := 4 + src.Intn(60)
		reqs := randomRequests(src, 150, machine)
		ps, err := Simulate(machine, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != len(reqs) {
			t.Fatalf("trial %d: %d placements of %d requests", trial, len(ps), len(reqs))
		}
		checkPlacements(t, ps, machine)
	}
}

func checkPlacements(t *testing.T, ps []Placement, machine int) {
	t.Helper()
	for i := range ps {
		p := &ps[i]
		if len(p.NodeIDs) != p.Nodes {
			t.Fatalf("job %d: %d ids for %d nodes", p.ID, len(p.NodeIDs), p.Nodes)
		}
		seen := map[int]bool{}
		for _, id := range p.NodeIDs {
			if id < 0 || id >= machine || seen[id] {
				t.Fatalf("job %d: bad node id %d", p.ID, id)
			}
			seen[id] = true
		}
		if p.Start.Before(p.Submit) {
			t.Fatalf("job %d starts before submission", p.ID)
		}
		if p.End.Sub(p.Start) != p.Runtime {
			t.Fatalf("job %d: end-start != runtime", p.ID)
		}
		for j := i + 1; j < len(ps); j++ {
			q := &ps[j]
			if p.End.After(q.Start) && q.End.After(p.Start) {
				for _, a := range p.NodeIDs {
					for _, b := range q.NodeIDs {
						if a == b {
							t.Fatalf("jobs %d and %d share node %d while overlapping", p.ID, q.ID, a)
						}
					}
				}
			}
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	src := rng.New(23)
	machine := 32
	reqs := randomRequests(src, 300, machine)
	ps, err := Simulate(machine, reqs)
	if err != nil {
		t.Fatal(err)
	}
	grid := units.GridOver(t0, t0.Add(400*time.Hour))
	for i, a := range ActiveNodes(ps, grid) {
		if a > machine {
			t.Fatalf("minute %d: %d active of %d", i, a, machine)
		}
		if a < 0 {
			t.Fatalf("minute %d: negative active", i)
		}
	}
}

func TestActiveNodesExact(t *testing.T) {
	ps := []Placement{
		{
			Request: req(1, 3, time.Hour, time.Hour, t0),
			Start:   t0, End: t0.Add(2 * time.Minute), NodeIDs: []int{0, 1, 2},
		},
		{
			Request: req(2, 2, time.Hour, time.Hour, t0),
			Start:   t0.Add(time.Minute), End: t0.Add(3 * time.Minute), NodeIDs: []int{3, 4},
		},
	}
	grid := units.NewTimeGrid(t0, 4)
	got := ActiveNodes(ps, grid)
	want := []int{3, 5, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("minute %d: active = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

func TestActiveNodesPartialMinute(t *testing.T) {
	// A job ending mid-minute still occupies that minute's sample.
	ps := []Placement{{
		Request: req(1, 2, time.Hour, time.Hour, t0),
		Start:   t0, End: t0.Add(90 * time.Second), NodeIDs: []int{0, 1},
	}}
	grid := units.NewTimeGrid(t0, 3)
	got := ActiveNodes(ps, grid)
	if got[0] != 2 || got[1] != 2 || got[2] != 0 {
		t.Errorf("active = %v", got)
	}
}

func TestActiveNodesOutsideGrid(t *testing.T) {
	ps := []Placement{{
		Request: req(1, 2, time.Hour, time.Hour, t0),
		Start:   t0.Add(-2 * time.Hour), End: t0.Add(-time.Hour), NodeIDs: []int{0, 1},
	}}
	grid := units.NewTimeGrid(t0, 5)
	for _, a := range ActiveNodes(ps, grid) {
		if a != 0 {
			t.Fatalf("job outside grid counted: %v", a)
		}
	}
}

func TestMeanUtilization(t *testing.T) {
	ps := []Placement{{
		Request: req(1, 2, time.Hour, time.Hour, t0),
		Start:   t0, End: t0.Add(2 * time.Minute), NodeIDs: []int{0, 1},
	}}
	grid := units.NewTimeGrid(t0, 4)
	got := MeanUtilization(ps, grid, 4)
	if got != 0.25 { // 2 nodes busy for 2 of 4 minutes on a 4-node machine
		t.Errorf("MeanUtilization = %v", got)
	}
}

func TestHighLoadReachesHighUtilization(t *testing.T) {
	// Offered load beyond capacity must keep the machine nearly full —
	// the regime both production systems run in (Fig. 1).
	src := rng.New(31)
	machine := 64
	var reqs []Request
	cur := t0
	for i := 0; i < 2000; i++ {
		cur = cur.Add(time.Duration(src.Exp(2)) * time.Minute)
		wall := time.Duration(2+src.Intn(6)) * time.Hour
		reqs = append(reqs, req(uint64(i+1), 1+src.Intn(16), wall, wall*3/4, cur))
	}
	ps, err := Simulate(machine, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Measure over the steady middle of the horizon.
	var last time.Time
	for _, p := range ps {
		if p.End.After(last) {
			last = p.End
		}
	}
	span := last.Sub(t0)
	grid := units.GridOver(t0.Add(span/10), last.Add(-span/10))
	util := MeanUtilization(ps, grid, machine)
	if util < 0.85 {
		t.Errorf("saturated utilization = %v, want >= 0.85", util)
	}
}

func TestQuickPlacementInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		machine := 2 + src.Intn(20)
		reqs := randomRequests(src, 60, machine)
		ps, err := Simulate(machine, reqs)
		if err != nil {
			return false
		}
		grid := units.GridOver(t0, t0.Add(200*time.Hour))
		for _, a := range ActiveNodes(ps, grid) {
			if a > machine || a < 0 {
				return false
			}
		}
		return len(ps) == len(reqs)
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
