package sched

import (
	"fmt"
	"sort"
	"time"
)

// Power-aware scheduling: §6 of the paper proposes running more nodes
// than the power budget could support at TDP, using per-job power
// prediction to keep the aggregate under a system cap. This file extends
// the simulator with power as a second scheduled resource.
//
// The cap is enforced against each job's ESTIMATED total power (predicted
// per-node power × nodes, plus headroom), the information available
// pre-execution. Backfill remains node-reservation based; the power
// constraint is enforced on every start decision, which keeps the head's
// node reservation intact and is the conservative choice a production
// implementation would make.

// Options tunes Simulate beyond the defaults.
type Options struct {
	// DisableBackfill turns off EASY backfill (pure FCFS) — the ablation
	// baseline for the scheduler design choice.
	DisableBackfill bool
	// PowerCapW, when positive, is a whole-system power cap enforced at
	// job start using EstPowerW estimates.
	PowerCapW float64
	// EstPowerW estimates a request's total power draw (watts across all
	// its nodes). Required when PowerCapW > 0.
	EstPowerW func(*Request) float64
	// IdlePowerW is the per-node idle draw counted against the cap for
	// unoccupied nodes (0 to ignore).
	IdlePowerW float64
}

// SimulateOpts schedules reqs like Simulate, honouring opts.
func SimulateOpts(nodes int, reqs []Request, opts Options) ([]Placement, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("sched: machine with %d nodes", nodes)
	}
	if opts.PowerCapW > 0 {
		if opts.EstPowerW == nil {
			return nil, fmt.Errorf("sched: power cap without an estimator")
		}
		idle := opts.IdlePowerW * float64(nodes)
		if idle >= opts.PowerCapW {
			return nil, fmt.Errorf("sched: idle draw %.0f W alone exceeds the %.0f W cap", idle, opts.PowerCapW)
		}
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return nil, err
		}
		if reqs[i].Nodes > nodes {
			return nil, fmt.Errorf("sched: request %d needs %d of %d nodes", reqs[i].ID, reqs[i].Nodes, nodes)
		}
		if opts.PowerCapW > 0 {
			est := opts.EstPowerW(&reqs[i])
			if est <= 0 {
				return nil, fmt.Errorf("sched: request %d has power estimate %v", reqs[i].ID, est)
			}
			idleRest := opts.IdlePowerW * float64(nodes-reqs[i].Nodes)
			if est+idleRest > opts.PowerCapW {
				return nil, fmt.Errorf("sched: request %d alone exceeds the power cap", reqs[i].ID)
			}
		}
	}
	s := newSim(nodes)
	s.opts = opts
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sortRequests(reqs, order)
	for _, idx := range order {
		r := reqs[idx]
		s.advanceTo(r.Submit)
		s.queue = append(s.queue, r)
		s.schedule(r.Submit)
	}
	for len(s.queue) > 0 || s.running.Len() > 0 {
		if s.running.Len() == 0 {
			return nil, fmt.Errorf("sched: deadlock with %d queued jobs", len(s.queue))
		}
		next := (*s.running)[0].end
		s.advanceTo(next)
		s.schedule(next)
	}
	sortPlacements(s.placed)
	return s.placed, nil
}

func sortRequests(reqs []Request, order []int) {
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		if !ra.Submit.Equal(rb.Submit) {
			return ra.Submit.Before(rb.Submit)
		}
		return ra.ID < rb.ID
	})
}

func sortPlacements(ps []Placement) {
	sort.Slice(ps, func(a, b int) bool {
		if !ps[a].Start.Equal(ps[b].Start) {
			return ps[a].Start.Before(ps[b].Start)
		}
		return ps[a].ID < ps[b].ID
	})
}

// powerFits reports whether starting r now keeps the estimated aggregate
// draw (running estimates + idle baseline) under the cap.
func (s *sim) powerFits(r *Request) bool {
	if s.opts.PowerCapW <= 0 {
		return true
	}
	est := s.opts.EstPowerW(r)
	idleNodes := len(s.free) - r.Nodes
	idle := s.opts.IdlePowerW * float64(idleNodes)
	return s.runningPowerW+est+idle <= s.opts.PowerCapW
}

// WaitStats summarizes queue waiting times of a schedule.
type WaitStats struct {
	Jobs        int
	MeanWaitMin float64
	P95WaitMin  float64
	MaxWaitMin  float64
}

// Waits computes waiting-time statistics over placements.
func Waits(ps []Placement) WaitStats {
	if len(ps) == 0 {
		return WaitStats{}
	}
	waits := make([]time.Duration, len(ps))
	var sum time.Duration
	var max time.Duration
	for i := range ps {
		w := ps[i].Start.Sub(ps[i].Submit)
		waits[i] = w
		sum += w
		if w > max {
			max = w
		}
	}
	sort.Slice(waits, func(a, b int) bool { return waits[a] < waits[b] })
	p95 := waits[(len(waits)-1)*95/100]
	return WaitStats{
		Jobs:        len(ps),
		MeanWaitMin: sum.Minutes() / float64(len(ps)),
		P95WaitMin:  p95.Minutes(),
		MaxWaitMin:  max.Minutes(),
	}
}
