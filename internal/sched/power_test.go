package sched

import (
	"testing"
	"time"

	"hpcpower/internal/rng"
	"hpcpower/internal/units"
)

// estPerNode returns an estimator charging w watts per node.
func estPerNode(w float64) func(*Request) float64 {
	return func(r *Request) float64 { return w * float64(r.Nodes) }
}

func TestSimulateOptsMatchesSimulateWithoutOptions(t *testing.T) {
	reqs := randomRequests(rng.New(3), 150, 16)
	a, err := Simulate(16, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateOpts(16, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Start.Equal(b[i].Start) {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestDisableBackfillPureFCFS(t *testing.T) {
	// The EASY scenario from sched_test: with backfill disabled, J3 must
	// NOT jump ahead even though it fits the idle node.
	reqs := []Request{
		req(1, 3, 2*time.Hour, 2*time.Hour, t0),
		req(2, 4, time.Hour, time.Hour, t0.Add(time.Minute)),
		req(3, 1, time.Hour, time.Hour, t0.Add(2*time.Minute)),
	}
	ps, err := SimulateOpts(4, reqs, Options{DisableBackfill: true})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	if byID[3].Start.Before(byID[2].Start) {
		t.Errorf("J3 started at %v before the head despite FCFS", byID[3].Start)
	}
}

func TestBackfillImprovesUtilization(t *testing.T) {
	// Ablation: EASY must beat pure FCFS on utilization for a mixed load.
	src := rng.New(41)
	reqs := randomRequests(src, 400, 32)
	easy, err := SimulateOpts(32, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := SimulateOpts(32, reqs, Options{DisableBackfill: true})
	if err != nil {
		t.Fatal(err)
	}
	grid := units.GridOver(t0, t0.Add(300*time.Hour))
	ue := MeanUtilization(easy, grid, 32)
	uf := MeanUtilization(fcfs, grid, 32)
	if !(ue > uf) {
		t.Errorf("EASY utilization %v <= FCFS %v", ue, uf)
	}
	// And mean waits must not degrade under EASY.
	if Waits(easy).MeanWaitMin > Waits(fcfs).MeanWaitMin {
		t.Errorf("EASY mean wait %v > FCFS %v", Waits(easy).MeanWaitMin, Waits(fcfs).MeanWaitMin)
	}
}

func TestPowerCapLimitsConcurrency(t *testing.T) {
	// Machine: 4 nodes, 100 W per node estimated, cap 250 W: at most two
	// 1-node jobs (plus no idle charge) run concurrently... with 4 nodes
	// at 100 W each, cap 250 allows 2 running jobs.
	reqs := []Request{
		req(1, 1, time.Hour, time.Hour, t0),
		req(2, 1, time.Hour, time.Hour, t0),
		req(3, 1, time.Hour, time.Hour, t0),
	}
	ps, err := SimulateOpts(4, reqs, Options{PowerCapW: 250, EstPowerW: estPerNode(100)})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	if !byID[1].Start.Equal(t0) || !byID[2].Start.Equal(t0) {
		t.Errorf("first two jobs delayed: %v %v", byID[1].Start, byID[2].Start)
	}
	// Third job must wait for a completion even though nodes are free.
	if !byID[3].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("third job start = %v, want %v", byID[3].Start, t0.Add(time.Hour))
	}
}

func TestPowerCapNeverExceededByEstimates(t *testing.T) {
	src := rng.New(43)
	// Jobs of at most 6 nodes so no single job exceeds the cap alone.
	reqs := randomRequests(src, 200, 6)
	const cap = 16 * 150 * 0.6 // 60% of the 150 W/node worst case
	ps, err := SimulateOpts(16, reqs, Options{PowerCapW: cap, EstPowerW: estPerNode(150)})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the schedule and verify the estimated aggregate never
	// exceeds the cap at any start instant.
	type ev struct {
		at    time.Time
		delta float64
	}
	var evs []ev
	for _, p := range ps {
		evs = append(evs, ev{p.Start, 150 * float64(p.Nodes)})
		evs = append(evs, ev{p.End, -150 * float64(p.Nodes)})
	}
	// Sort by time, completions before starts at the same instant.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := evs[j-1], evs[j]
			if a.at.After(b.at) || (a.at.Equal(b.at) && a.delta > 0 && b.delta < 0) {
				evs[j-1], evs[j] = evs[j], evs[j-1]
			} else {
				break
			}
		}
	}
	var cur float64
	for _, e := range evs {
		cur += e.delta
		if cur > cap+1e-6 {
			t.Fatalf("estimated power %v exceeds cap %v", cur, cap)
		}
	}
}

func TestPowerCapWithIdleDraw(t *testing.T) {
	// Idle nodes draw 50 W against the cap: 4 nodes idle = 200 W. With a
	// 450 W cap and 200 W jobs, only one job fits (200 + 3×50 = 350;
	// a second would need 400 + 2×50 = 500 > 450).
	reqs := []Request{
		req(1, 1, time.Hour, time.Hour, t0),
		req(2, 1, time.Hour, time.Hour, t0),
	}
	ps, err := SimulateOpts(4, reqs, Options{
		PowerCapW: 450, EstPowerW: estPerNode(200), IdlePowerW: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range ps {
		byID[p.ID] = p
	}
	if !byID[2].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("second job start = %v", byID[2].Start)
	}
}

func TestSimulateOptsValidation(t *testing.T) {
	reqs := []Request{req(1, 1, time.Hour, time.Hour, t0)}
	if _, err := SimulateOpts(4, reqs, Options{PowerCapW: 100}); err == nil {
		t.Error("cap without estimator accepted")
	}
	if _, err := SimulateOpts(4, reqs, Options{PowerCapW: 100, EstPowerW: estPerNode(200)}); err == nil {
		t.Error("job exceeding cap alone accepted")
	}
	if _, err := SimulateOpts(4, reqs, Options{PowerCapW: 100, EstPowerW: estPerNode(10), IdlePowerW: 30}); err == nil {
		t.Error("idle draw exceeding cap accepted")
	}
	bad := func(*Request) float64 { return 0 }
	if _, err := SimulateOpts(4, reqs, Options{PowerCapW: 100, EstPowerW: bad}); err == nil {
		t.Error("zero estimate accepted")
	}
}

func TestWaits(t *testing.T) {
	ps := []Placement{
		{Request: req(1, 1, time.Hour, time.Hour, t0), Start: t0},
		{Request: req(2, 1, time.Hour, time.Hour, t0), Start: t0.Add(30 * time.Minute)},
		{Request: req(3, 1, time.Hour, time.Hour, t0), Start: t0.Add(time.Hour)},
	}
	w := Waits(ps)
	if w.Jobs != 3 {
		t.Errorf("jobs = %d", w.Jobs)
	}
	if w.MeanWaitMin != 30 {
		t.Errorf("mean wait = %v", w.MeanWaitMin)
	}
	if w.MaxWaitMin != 60 {
		t.Errorf("max wait = %v", w.MaxWaitMin)
	}
	if Waits(nil).Jobs != 0 {
		t.Error("empty waits nonzero")
	}
}
