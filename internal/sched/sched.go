// Package sched simulates the batch systems of the two clusters (Torque on
// Emmy, Slurm on Meggie) at the level the study consumes them: exclusive
// whole-node allocation with FCFS + EASY backfill, producing the
// accounting records (submit/start/end, node list) that the analyses join
// with telemetry.
//
// Both production schedulers keep their machines >80% utilized with long
// wait queues; the simulator reproduces that regime when driven with an
// offered load at or above capacity.
package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"hpcpower/internal/units"
)

// Request is one job submission.
type Request struct {
	ID      uint64
	User    string
	App     string
	Nodes   int
	ReqWall time.Duration // requested walltime (kill limit)
	Runtime time.Duration // actual runtime; capped at ReqWall by the simulator
	Submit  time.Time
}

// Validate reports the first structural problem with the request.
func (r *Request) Validate() error {
	switch {
	case r.Nodes <= 0:
		return fmt.Errorf("sched: request %d with %d nodes", r.ID, r.Nodes)
	case r.ReqWall <= 0:
		return fmt.Errorf("sched: request %d with walltime %v", r.ID, r.ReqWall)
	case r.Runtime <= 0:
		return fmt.Errorf("sched: request %d with runtime %v", r.ID, r.Runtime)
	}
	return nil
}

// Placement is a scheduled job: the accounting record the batch system
// writes when the job completes.
type Placement struct {
	Request
	Start   time.Time
	End     time.Time
	NodeIDs []int
}

// Simulate schedules reqs on a machine with the given node count using
// FCFS with EASY backfill and returns the placements, ordered by start
// time. Requests need not be sorted. Jobs larger than the machine are
// rejected with an error.
func Simulate(nodes int, reqs []Request) ([]Placement, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("sched: machine with %d nodes", nodes)
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return nil, err
		}
		if reqs[i].Nodes > nodes {
			return nil, fmt.Errorf("sched: request %d needs %d of %d nodes", reqs[i].ID, reqs[i].Nodes, nodes)
		}
	}
	s := newSim(nodes)
	// Arrival order: submit time, then ID for determinism.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		if !ra.Submit.Equal(rb.Submit) {
			return ra.Submit.Before(rb.Submit)
		}
		return ra.ID < rb.ID
	})

	for _, idx := range order {
		r := reqs[idx]
		// Drain completions that happen before this arrival.
		s.advanceTo(r.Submit)
		s.queue = append(s.queue, r)
		s.schedule(r.Submit)
	}
	// Drain the queue to completion.
	for len(s.queue) > 0 || s.running.Len() > 0 {
		if s.running.Len() == 0 {
			// Queue non-empty but nothing running cannot happen: the head
			// always fits an empty machine (size checked above).
			return nil, fmt.Errorf("sched: deadlock with %d queued jobs", len(s.queue))
		}
		next := (*s.running)[0].end
		s.advanceTo(next)
		s.schedule(next)
	}
	sort.Slice(s.placed, func(a, b int) bool {
		if !s.placed[a].Start.Equal(s.placed[b].Start) {
			return s.placed[a].Start.Before(s.placed[b].Start)
		}
		return s.placed[a].ID < s.placed[b].ID
	})
	return s.placed, nil
}

// runningJob tracks an executing job inside the simulator.
type runningJob struct {
	end      time.Time // actual completion
	estEnd   time.Time // start + ReqWall: what the scheduler may assume
	nodeIDs  []int
	estPower float64 // power estimate charged against the cap
	idx      int     // heap index
}

// completionHeap orders running jobs by actual completion time.
type completionHeap []*runningJob

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(a, b int) bool { return h[a].end.Before(h[b].end) }
func (h completionHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a]; h[a].idx, h[b].idx = a, b }
func (h *completionHeap) Push(x interface{}) {
	j := x.(*runningJob)
	j.idx = len(*h)
	*h = append(*h, j)
}
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

type sim struct {
	free    []int // free node ids, used as a stack (lowest ids preferred)
	queue   []Request
	running *completionHeap
	placed  []Placement
	opts    Options
	// runningPowerW sums the power estimates of running jobs when a
	// power cap is active.
	runningPowerW float64
}

func newSim(nodes int) *sim {
	s := &sim{running: &completionHeap{}}
	// Push high ids first so the lowest ids are allocated first.
	for i := nodes - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	heap.Init(s.running)
	return s
}

// advanceTo completes every running job that ends at or before t,
// rescheduling the queue after each completion batch.
func (s *sim) advanceTo(t time.Time) {
	for s.running.Len() > 0 && !(*s.running)[0].end.After(t) {
		now := (*s.running)[0].end
		// Complete everything ending at the same instant before scheduling.
		for s.running.Len() > 0 && (*s.running)[0].end.Equal(now) {
			j := heap.Pop(s.running).(*runningJob)
			s.free = append(s.free, j.nodeIDs...)
			s.runningPowerW -= j.estPower
		}
		s.schedule(now)
	}
}

// schedule runs FCFS + EASY backfill at instant now.
func (s *sim) schedule(now time.Time) {
	// FCFS phase: start queue heads while node AND power constraints fit.
	for len(s.queue) > 0 && s.queue[0].Nodes <= len(s.free) && s.powerFits(&s.queue[0]) {
		s.start(s.queue[0], now)
		s.queue = s.queue[1:]
	}
	if len(s.queue) == 0 || s.opts.DisableBackfill {
		return
	}
	// EASY backfill phase. The head does not fit; compute its reservation
	// using the conservative (requested-walltime) completion estimates.
	head := s.queue[0]
	shadow, spare := s.reservation(head.Nodes, now)
	for i := 1; i < len(s.queue); {
		j := s.queue[i]
		if j.Nodes <= len(s.free) && s.powerFits(&s.queue[i]) && s.canBackfill(j, now, shadow, spare) {
			s.start(j, now)
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			// Starting a backfill job consumes free nodes; the shadow time
			// itself is unchanged (reservation estimates only count running
			// jobs' requested walltimes, and the new job must respect it),
			// but the spare-node budget shrinks if it runs past the shadow.
			if now.Add(j.ReqWall).After(shadow) {
				spare -= j.Nodes
			}
			continue
		}
		i++
	}
}

// reservation computes the EASY reservation for the queue head needing n
// nodes: the shadow time at which enough nodes are (conservatively)
// guaranteed free, and the number of spare nodes at that time beyond the
// head's need.
func (s *sim) reservation(n int, now time.Time) (shadow time.Time, spare int) {
	avail := len(s.free)
	if avail >= n {
		return now, avail - n
	}
	// Sort running jobs by their conservative end estimates.
	est := make([]*runningJob, s.running.Len())
	copy(est, *s.running)
	sort.Slice(est, func(a, b int) bool { return est[a].estEnd.Before(est[b].estEnd) })
	for _, j := range est {
		avail += len(j.nodeIDs)
		if avail >= n {
			return j.estEnd, avail - n
		}
	}
	// Unreachable when job sizes are validated against the machine size.
	return now.Add(1000 * time.Hour), 0
}

// canBackfill reports whether job j may start now without delaying the
// head's reservation: either it finishes (by its requested walltime)
// before the shadow time, or it fits within the spare nodes.
func (s *sim) canBackfill(j Request, now, shadow time.Time, spare int) bool {
	if !now.Add(j.ReqWall).After(shadow) {
		return true
	}
	return j.Nodes <= spare
}

// start allocates nodes and begins executing job r at time now.
func (s *sim) start(r Request, now time.Time) {
	run := r.Runtime
	if run > r.ReqWall {
		run = r.ReqWall // the batch system kills jobs at their walltime
	}
	ids := make([]int, r.Nodes)
	copy(ids, s.free[len(s.free)-r.Nodes:])
	s.free = s.free[:len(s.free)-r.Nodes]
	sort.Ints(ids)
	j := &runningJob{
		end:     now.Add(run),
		estEnd:  now.Add(r.ReqWall),
		nodeIDs: ids,
	}
	if s.opts.PowerCapW > 0 {
		j.estPower = s.opts.EstPowerW(&r)
		s.runningPowerW += j.estPower
	}
	heap.Push(s.running, j)
	req := r
	req.Runtime = run
	s.placed = append(s.placed, Placement{
		Request: req,
		Start:   now,
		End:     now.Add(run),
		NodeIDs: ids,
	})
}

// ActiveNodes returns the number of busy nodes at each sample instant of
// the grid, computed from placements with a difference array. Sampling is
// instantaneous, like the production monitoring: a job occupies sample i
// iff Start <= At(i) < End. This series is the numerator of the paper's
// system utilization (Fig. 1) and can never exceed the machine size.
func ActiveNodes(placements []Placement, grid units.TimeGrid) []int {
	diff := make([]int, grid.N+1)
	for i := range placements {
		p := &placements[i]
		if !p.End.After(grid.Start) || !p.Start.Before(grid.End()) {
			continue
		}
		// First sample instant at or after Start.
		lo := int((p.Start.Sub(grid.Start) + units.SampleInterval - 1) / units.SampleInterval)
		if lo < 0 {
			lo = 0
		}
		// First sample instant at or after End (exclusive bound).
		hi := int((p.End.Sub(grid.Start) + units.SampleInterval - 1) / units.SampleInterval)
		hi = minInt(hi, grid.N)
		if lo >= hi {
			continue
		}
		diff[lo] += p.Nodes
		diff[hi] -= p.Nodes
	}
	active := make([]int, grid.N)
	cur := 0
	for i := 0; i < grid.N; i++ {
		cur += diff[i]
		active[i] = cur
	}
	return active
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MeanUtilization returns mean(active/total) over the grid.
func MeanUtilization(placements []Placement, grid units.TimeGrid, totalNodes int) float64 {
	active := ActiveNodes(placements, grid)
	var sum float64
	for _, a := range active {
		sum += float64(a) / float64(totalNodes)
	}
	if grid.N == 0 {
		return 0
	}
	return sum / float64(grid.N)
}
