// Package apps models the application mix of the two systems and the
// power-consumption profile of each application.
//
// Section 2.1 of the paper reports the workload composition by compute
// cycles: ~30% molecular-dynamics codes (Gromacs, the in-house MD-0), ~30%
// chemistry and materials-science codes, ~25% memory-bandwidth-intensive
// CFD codes (FASTEST, STAR-CCM+), and ~15% others (e.g. WRF). Section 4
// (Fig. 4) shows that per-node power is application- and architecture-
// dependent, and that the power ranking of applications is NOT portable
// across systems (MD-0 vs FASTEST flip between Emmy and Meggie).
//
// Each profile therefore carries a per-architecture mean power fraction —
// the substitution for the real codes we cannot run — plus the temporal
// and spatial shape parameters the telemetry synthesizer consumes.
package apps

import (
	"fmt"
	"sort"

	"hpcpower/internal/cluster"
)

// Class is a coarse application domain.
type Class string

// Application domains of the workload mix in §2.1.
const (
	MolecularDynamics Class = "MD"
	Chemistry         Class = "Chemistry"
	CFD               Class = "CFD"
	Other             Class = "Other"
)

// Profile describes the power behaviour of one application.
type Profile struct {
	Name  string
	Class Class

	// PowerFrac is the mean per-node power of this application on each
	// architecture, as a fraction of node TDP. These constants encode the
	// paper's observation that power characteristics do not port across
	// systems: the values are deliberately NOT order-preserving between
	// architectures (MD-0 and FASTEST flip).
	PowerFrac map[cluster.Arch]float64

	// PowerSpread is the relative standard deviation of job mean power
	// around the application mean, driven by input decks and solver
	// settings differing between runs.
	PowerSpread float64

	// FlatProb is the probability that a run exhibits an essentially flat
	// power profile. The paper finds temporal variance is low: ~70% of
	// jobs spend ≈0% of their runtime more than 10% above their mean.
	FlatProb float64

	// PhaseAmpFrac is the relative amplitude of the phase modulation for
	// non-flat runs (compute/communication/IO phase alternation).
	PhaseAmpFrac float64

	// ImbalanceFrac is the relative standard deviation of the per-node
	// static workload imbalance within one job. Together with the fleet's
	// manufacturing variability it produces the paper's spatial spread.
	ImbalanceFrac float64

	// DRAMFrac is the share of node power drawn by the DRAM RAPL domain:
	// higher for memory-bandwidth-bound codes (§2.1 calls the CFD codes
	// memory-bandwidth-intensive), lower for compute-bound MD.
	DRAMFrac float64

	// ShareNodeHours is the application's share of delivered node-hours.
	ShareNodeHours float64

	// TypicalNodes and TypicalWallHours parameterize the job-size and
	// requested-walltime distributions of the application (log-normal
	// around these medians).
	TypicalNodes     int
	TypicalWallHours float64
}

// KeyApps are the five applications common to both systems that Fig. 4
// compares.
var KeyApps = []string{"GROMACS", "MD-0", "FASTEST", "STARCCM", "WRF"}

// catalog is the application population. Power fractions are calibrated so
// the job-level per-node power distribution matches Fig. 3 (Emmy: mean
// ≈71% of TDP, CV ≈26%; Meggie: mean ≈59% of TDP, CV ≈18%).
var catalog = []Profile{
	{
		Name: "GROMACS", Class: MolecularDynamics,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.79, cluster.Broadwell: 0.64},
		PowerSpread: 0.10, FlatProb: 0.85, PhaseAmpFrac: 0.20, ImbalanceFrac: 0.025,
		DRAMFrac:       0.10,
		ShareNodeHours: 0.15, TypicalNodes: 8, TypicalWallHours: 16,
	},
	{
		Name: "MD-0", Class: MolecularDynamics,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.77, cluster.Broadwell: 0.57},
		PowerSpread: 0.08, FlatProb: 0.88, PhaseAmpFrac: 0.16, ImbalanceFrac: 0.021,
		DRAMFrac:       0.11,
		ShareNodeHours: 0.10, TypicalNodes: 6, TypicalWallHours: 12,
	},
	{
		Name: "LAMMPS", Class: MolecularDynamics,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.73, cluster.Broadwell: 0.60},
		PowerSpread: 0.10, FlatProb: 0.82, PhaseAmpFrac: 0.20, ImbalanceFrac: 0.028,
		DRAMFrac:       0.12,
		ShareNodeHours: 0.05, TypicalNodes: 4, TypicalWallHours: 10,
	},
	{
		Name: "CP2K", Class: Chemistry,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.66, cluster.Broadwell: 0.61},
		PowerSpread: 0.12, FlatProb: 0.60, PhaseAmpFrac: 0.28, ImbalanceFrac: 0.035,
		DRAMFrac:       0.17,
		ShareNodeHours: 0.12, TypicalNodes: 6, TypicalWallHours: 8,
	},
	{
		Name: "VASP", Class: Chemistry,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.71, cluster.Broadwell: 0.65},
		PowerSpread: 0.11, FlatProb: 0.65, PhaseAmpFrac: 0.24, ImbalanceFrac: 0.032,
		DRAMFrac:       0.16,
		ShareNodeHours: 0.12, TypicalNodes: 8, TypicalWallHours: 10,
	},
	{
		Name: "QESPRESSO", Class: Chemistry,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.56, cluster.Broadwell: 0.56},
		PowerSpread: 0.12, FlatProb: 0.62, PhaseAmpFrac: 0.26, ImbalanceFrac: 0.035,
		DRAMFrac:       0.18,
		ShareNodeHours: 0.06, TypicalNodes: 3, TypicalWallHours: 6,
	},
	{
		Name: "FASTEST", Class: CFD,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.68, cluster.Broadwell: 0.61},
		PowerSpread: 0.09, FlatProb: 0.70, PhaseAmpFrac: 0.24, ImbalanceFrac: 0.042,
		DRAMFrac:       0.26,
		ShareNodeHours: 0.12, TypicalNodes: 8, TypicalWallHours: 8,
	},
	{
		Name: "STARCCM", Class: CFD,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.70, cluster.Broadwell: 0.58},
		PowerSpread: 0.10, FlatProb: 0.68, PhaseAmpFrac: 0.24, ImbalanceFrac: 0.045,
		DRAMFrac:       0.24,
		ShareNodeHours: 0.09, TypicalNodes: 6, TypicalWallHours: 6,
	},
	{
		Name: "OPENFOAM", Class: CFD,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.64, cluster.Broadwell: 0.54},
		PowerSpread: 0.11, FlatProb: 0.65, PhaseAmpFrac: 0.28, ImbalanceFrac: 0.042,
		DRAMFrac:       0.25,
		ShareNodeHours: 0.04, TypicalNodes: 3, TypicalWallHours: 4,
	},
	{
		Name: "WRF", Class: Other,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.60, cluster.Broadwell: 0.50},
		PowerSpread: 0.12, FlatProb: 0.50, PhaseAmpFrac: 0.32, ImbalanceFrac: 0.038,
		DRAMFrac:       0.20,
		ShareNodeHours: 0.07, TypicalNodes: 2, TypicalWallHours: 2,
	},
	{
		Name: "MISC", Class: Other,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.49, cluster.Broadwell: 0.44},
		PowerSpread: 0.18, FlatProb: 0.55, PhaseAmpFrac: 0.30, ImbalanceFrac: 0.035,
		DRAMFrac:       0.15,
		ShareNodeHours: 0.05, TypicalNodes: 2, TypicalWallHours: 1,
	},
	{
		// Serial users are asked to bundle several single-core runs into one
		// node-exclusive job (§2.1); such bundles under-utilize the socket.
		Name: "SERIAL-MIX", Class: Other,
		PowerFrac:   map[cluster.Arch]float64{cluster.IvyBridge: 0.42, cluster.Broadwell: 0.38},
		PowerSpread: 0.20, FlatProb: 0.60, PhaseAmpFrac: 0.24, ImbalanceFrac: 0.032,
		DRAMFrac:       0.12,
		ShareNodeHours: 0.03, TypicalNodes: 1, TypicalWallHours: 4,
	},
}

// Catalog returns the full application catalog (a copy; callers may not
// mutate the shared profiles).
func Catalog() []Profile {
	out := make([]Profile, len(catalog))
	copy(out, catalog)
	return out
}

// ByName returns the profile of the named application.
func ByName(name string) (Profile, error) {
	for _, p := range catalog {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns all application names, sorted.
func Names() []string {
	names := make([]string, len(catalog))
	for i, p := range catalog {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// ClassShare sums ShareNodeHours per class.
func ClassShare() map[Class]float64 {
	m := map[Class]float64{}
	for _, p := range catalog {
		m[p.Class] += p.ShareNodeHours
	}
	return m
}

// MeanPower returns the application's mean per-node power in watts on the
// given system.
func (p Profile) MeanPower(spec cluster.Spec) float64 {
	return p.PowerFrac[spec.Arch] * float64(spec.NodeTDP)
}

// Validate reports the first problem with the profile, if any.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("apps: profile with empty name")
	case len(p.PowerFrac) == 0:
		return fmt.Errorf("apps: %s has no power fractions", p.Name)
	case p.ShareNodeHours < 0 || p.ShareNodeHours > 1:
		return fmt.Errorf("apps: %s share %v out of range", p.Name, p.ShareNodeHours)
	case p.TypicalNodes <= 0:
		return fmt.Errorf("apps: %s typical nodes %d", p.Name, p.TypicalNodes)
	case p.TypicalWallHours <= 0:
		return fmt.Errorf("apps: %s typical walltime %v", p.Name, p.TypicalWallHours)
	}
	for arch, f := range p.PowerFrac {
		if f <= 0 || f > 1 {
			return fmt.Errorf("apps: %s power fraction %v on %s out of (0,1]", p.Name, f, arch)
		}
	}
	switch {
	case p.PowerSpread < 0 || p.PowerSpread > 0.5:
		return fmt.Errorf("apps: %s power spread %v out of range", p.Name, p.PowerSpread)
	case p.FlatProb < 0 || p.FlatProb > 1:
		return fmt.Errorf("apps: %s flat probability %v out of range", p.Name, p.FlatProb)
	case p.PhaseAmpFrac < 0 || p.PhaseAmpFrac > 1:
		return fmt.Errorf("apps: %s phase amplitude %v out of range", p.Name, p.PhaseAmpFrac)
	case p.ImbalanceFrac < 0 || p.ImbalanceFrac > 0.5:
		return fmt.Errorf("apps: %s imbalance %v out of range", p.Name, p.ImbalanceFrac)
	case p.DRAMFrac <= 0 || p.DRAMFrac > 0.5:
		return fmt.Errorf("apps: %s DRAM fraction %v out of (0,0.5]", p.Name, p.DRAMFrac)
	}
	return nil
}
