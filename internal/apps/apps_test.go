package apps

import (
	"math"
	"testing"

	"hpcpower/internal/cluster"
)

func TestCatalogValid(t *testing.T) {
	for _, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		// Every app must be defined on both architectures of the study.
		for _, arch := range []cluster.Arch{cluster.IvyBridge, cluster.Broadwell} {
			if _, ok := p.PowerFrac[arch]; !ok {
				t.Errorf("%s missing power fraction for %s", p.Name, arch)
			}
		}
	}
}

func TestKeyAppsPresent(t *testing.T) {
	for _, name := range KeyApps {
		if _, err := ByName(name); err != nil {
			t.Errorf("key app %s missing: %v", name, err)
		}
	}
	if len(KeyApps) != 5 {
		t.Errorf("Fig. 4 compares 5 key apps, have %d", len(KeyApps))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("HPL"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestClassShareSumsToOne(t *testing.T) {
	shares := ClassShare()
	var total float64
	for _, s := range shares {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("class shares sum to %v", total)
	}
	// §2.1 mix: 30% MD, 30% chemistry, 25% CFD, 15% other.
	want := map[Class]float64{
		MolecularDynamics: 0.30, Chemistry: 0.30, CFD: 0.25, Other: 0.15,
	}
	for c, w := range want {
		if math.Abs(shares[c]-w) > 1e-9 {
			t.Errorf("%s share = %v, want %v", c, shares[c], w)
		}
	}
}

func TestPowerRankingFlips(t *testing.T) {
	// The paper's headline Fig. 4 observation: MD-0 out-draws FASTEST on
	// Emmy but the ranking flips on Meggie.
	md0, _ := ByName("MD-0")
	fast, _ := ByName("FASTEST")
	if !(md0.PowerFrac[cluster.IvyBridge] > fast.PowerFrac[cluster.IvyBridge]) {
		t.Error("on Emmy, MD-0 should out-draw FASTEST")
	}
	if !(md0.PowerFrac[cluster.Broadwell] < fast.PowerFrac[cluster.Broadwell]) {
		t.Error("on Meggie, FASTEST should out-draw MD-0")
	}
}

func TestAllAppsDrawLessOnMeggie(t *testing.T) {
	// Fig. 4: every key application consumes more absolute per-node power
	// on Emmy than on Meggie (22 nm vs 14 nm process, Broadwell power
	// optimizations).
	emmy, meggie := cluster.Emmy(), cluster.Meggie()
	for _, p := range Catalog() {
		if !(p.MeanPower(emmy) > p.MeanPower(meggie)) {
			t.Errorf("%s: Emmy %v W <= Meggie %v W", p.Name, p.MeanPower(emmy), p.MeanPower(meggie))
		}
	}
}

func TestCrossSystemDeltaBounded(t *testing.T) {
	// Same app differs by up to ~25-30% across systems, not wildly more.
	emmy, meggie := cluster.Emmy(), cluster.Meggie()
	for _, name := range KeyApps {
		p, _ := ByName(name)
		drop := 1 - p.MeanPower(meggie)/p.MeanPower(emmy)
		if drop < 0.05 || drop > 0.40 {
			t.Errorf("%s cross-system drop = %.0f%%, want 5-40%%", name, 100*drop)
		}
	}
}

func TestMeanPower(t *testing.T) {
	g, _ := ByName("GROMACS")
	want := 0.79 * 210
	if got := g.MeanPower(cluster.Emmy()); math.Abs(got-want) > 1e-9 {
		t.Errorf("GROMACS MeanPower(Emmy) = %v, want %v", got, want)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != len(Catalog()) {
		t.Fatalf("Names() length %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %v", i, names)
		}
	}
}

func TestCatalogIsACopy(t *testing.T) {
	c := Catalog()
	orig := c[0].Name
	c[0].Name = "MUTATED"
	if Catalog()[0].Name != orig {
		t.Error("Catalog exposes internal state")
	}
}

func TestValidateRejects(t *testing.T) {
	good, _ := ByName("WRF")
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"no fracs", func(p *Profile) { p.PowerFrac = nil }},
		{"frac > 1", func(p *Profile) { p.PowerFrac = map[cluster.Arch]float64{cluster.IvyBridge: 1.5} }},
		{"neg share", func(p *Profile) { p.ShareNodeHours = -0.1 }},
		{"zero nodes", func(p *Profile) { p.TypicalNodes = 0 }},
		{"zero wall", func(p *Profile) { p.TypicalWallHours = 0 }},
		{"flat prob", func(p *Profile) { p.FlatProb = 1.5 }},
		{"imbalance", func(p *Profile) { p.ImbalanceFrac = 0.9 }},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
