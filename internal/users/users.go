// Package users models the user population of an HPC system.
//
// The study's user-level findings (§5) hinge on the structure of real user
// behaviour:
//
//   - user activity is heavy-tailed: ~20% of users consume ~85% of
//     node-hours and energy (Fig. 11);
//   - a user's jobs span a WIDE range of power behaviour overall (Fig. 12),
//     because users run several distinct job configurations; but
//   - HPC jobs are repetitive: multiple instances of the same configuration
//     (same application, node count, and requested walltime) have very
//     similar power (Fig. 13), which is what makes pre-execution power
//     prediction from (user, nodes, walltime) work (Figs. 14-15).
//
// A User therefore owns a repertoire of Configs — repeated job templates —
// with a Zipf-weighted choice among them, plus a small exploration
// probability for one-off runs.
package users

import (
	"fmt"
	"math"
	"time"

	"hpcpower/internal/apps"
	"hpcpower/internal/cluster"
	"hpcpower/internal/rng"
)

// nodeLadder holds the node counts users actually request (powers of two
// and common in-between sizes).
var nodeLadder = []int{1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 48, 64, 96, 128}

// wallLadder holds the requested walltimes users pick, in hours. Batch
// systems see a handful of round numbers, not a continuum.
var wallLadder = []float64{1, 2, 4, 6, 8, 12, 16, 24, 48, 72}

// Config is a repeated job template: what a user resubmits over and over
// with different inputs.
type Config struct {
	App     string
	Nodes   int
	ReqWall time.Duration
	// PowerTilt is a persistent multiplicative offset on the application's
	// mean power for this configuration (same input deck, same solver
	// settings → same deviation from the app average, run after run).
	PowerTilt float64
	// WallUseMean is the mean fraction of the requested walltime the jobs
	// of this config actually use.
	WallUseMean float64
	// Weight is the relative submission frequency of this config within
	// the user's repertoire.
	Weight float64
}

// User is one account on the system.
type User struct {
	ID string
	// Activity is the user's relative job-submission rate.
	Activity float64
	// Explore is the probability that a submission is a one-off
	// configuration instead of one from the repertoire.
	Explore float64
	Configs []Config
}

// Population is the user population of one system.
type Population struct {
	System  cluster.Spec
	Users   []User
	weights []float64 // cached activity weights for sampling
}

// Params tunes population synthesis per system.
type Params struct {
	NumUsers int
	// ZipfExponent shapes the activity distribution; ~1.1-1.5 reproduces
	// the "20% of users take 85% of node-hours" concentration.
	ZipfExponent float64
	// ConfigsMin/Max bound repertoire sizes.
	ConfigsMin, ConfigsMax int
	// Diversity in [0,1] widens each user's app/size/walltime range. The
	// paper finds Meggie's users far more varied (per-user power std
	// ~100% vs ~50% on Emmy), so Meggie gets the higher diversity.
	Diversity float64
	// Explore is the one-off submission probability.
	Explore float64
}

// DefaultParams returns the population parameters used for each system in
// the study's reproduction.
func DefaultParams(spec cluster.Spec) Params {
	switch spec.Name {
	case "Meggie":
		return Params{
			NumUsers: 110, ZipfExponent: 1.25,
			ConfigsMin: 2, ConfigsMax: 10,
			Diversity: 1.0, Explore: 0.02,
		}
	default: // Emmy and any Emmy-like general-purpose system
		return Params{
			NumUsers: 190, ZipfExponent: 1.30,
			ConfigsMin: 2, ConfigsMax: 9,
			Diversity: 0.5, Explore: 0.02,
		}
	}
}

// NewPopulation synthesizes a user population for spec from src.
func NewPopulation(spec cluster.Spec, p Params, src *rng.Source) (*Population, error) {
	if p.NumUsers <= 0 {
		return nil, fmt.Errorf("users: population of %d users", p.NumUsers)
	}
	if p.ConfigsMin <= 0 || p.ConfigsMax < p.ConfigsMin {
		return nil, fmt.Errorf("users: bad repertoire bounds [%d,%d]", p.ConfigsMin, p.ConfigsMax)
	}
	pop := &Population{System: spec}
	catalog := apps.Catalog()
	for i := 0; i < p.NumUsers; i++ {
		us := src.Split(0x05e5, uint64(i))
		u := User{
			ID: fmt.Sprintf("u%03d", i+1),
			// Zipf-like activity by rank with a small random wobble so the
			// ordering is not perfectly deterministic.
			Activity: math.Pow(float64(i+1), -p.ZipfExponent) * us.LogNormal(0, 0.25),
		}
		// Repertoire size scales with activity: heavy users run many
		// distinct job types; casual users run one or two workflows. This
		// matches production accounting logs and is what keeps prediction
		// quality high "across users and not just for a few users which
		// submit the most jobs" (paper §5, Fig. 15).
		rankFrac := 1.0
		if p.NumUsers > 1 {
			rankFrac = math.Pow(1-float64(i)/float64(p.NumUsers-1), 2)
		}
		nCfg := p.ConfigsMin + int(float64(p.ConfigsMax-p.ConfigsMin)*rankFrac+us.Float64())
		if nCfg > p.ConfigsMax {
			nCfg = p.ConfigsMax
		}
		// Casual users stick to their workflow; heavy users try one-offs.
		u.Explore = p.Explore * (0.25 + 0.75*rankFrac)
		prefs := classPreference(us, p.Diversity)
		// Users tell their job types apart by size and walltime: each
		// repertoire config occupies a distinct (nodes, walltime) cell.
		// Without this, colliding cells with different applications make
		// the user's power inherently unpredictable from pre-execution
		// features — far beyond what the paper observes (Figs. 13-15).
		taken := map[[2]int64]bool{}
		for c := 0; c < nCfg; c++ {
			cfg := drawConfig(us, catalog, prefs, p.Diversity)
			for attempt := 0; attempt < 20; attempt++ {
				cell := [2]int64{int64(cfg.Nodes), int64(cfg.ReqWall)}
				if !taken[cell] {
					taken[cell] = true
					break
				}
				cfg = drawConfig(us, catalog, prefs, p.Diversity)
			}
			// Zipf-weighted repertoire: the favourite config dominates.
			cfg.Weight = math.Pow(float64(c+1), -0.8)
			u.Configs = append(u.Configs, cfg)
		}
		pop.Users = append(pop.Users, u)
	}
	pop.weights = make([]float64, len(pop.Users))
	for i := range pop.Users {
		pop.weights[i] = pop.Users[i].Activity
	}
	return pop, nil
}

// classPreference draws a user's per-class affinity. Low diversity gives a
// user one dominant domain; high diversity spreads submissions over many.
func classPreference(src *rng.Source, diversity float64) map[apps.Class]float64 {
	classes := []apps.Class{apps.MolecularDynamics, apps.Chemistry, apps.CFD, apps.Other}
	prefs := make(map[apps.Class]float64, len(classes))
	// Class shares of the overall workload steer which domain a user lands in.
	share := apps.ClassShare()
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = share[c]
	}
	main := classes[src.Choice(weights)]
	for _, c := range classes {
		if c == main {
			prefs[c] = 1
		} else {
			prefs[c] = 0.03 + 1.1*diversity*diversity*src.Float64()
		}
	}
	return prefs
}

// drawConfig synthesizes one job template for a user.
func drawConfig(src *rng.Source, catalog []apps.Profile, prefs map[apps.Class]float64, diversity float64) Config {
	// Choose the application: catalog share × user's class preference.
	weights := make([]float64, len(catalog))
	for i, a := range catalog {
		weights[i] = a.ShareNodeHours * prefs[a.Class]
	}
	app := catalog[src.Choice(weights)]

	// Node count: log-normal around the app's typical size, wider with
	// higher diversity, snapped to the request ladder.
	sigma := 0.40 + 0.45*diversity
	nodes := snapInt(nodeLadder, float64(app.TypicalNodes)*src.LogNormal(0, sigma))

	// Requested walltime: log-normal around the app's typical request.
	wallH := snapFloat(wallLadder, app.TypicalWallHours*src.LogNormal(0, 0.4+0.5*diversity))

	return Config{
		App:       app.Name,
		Nodes:     nodes,
		ReqWall:   time.Duration(wallH * float64(time.Hour)),
		PowerTilt: src.TruncNormal(1, app.PowerSpread, 0.6, 1.4),
		// Users ask for head-room: jobs typically use 30-95% of the request.
		WallUseMean: src.TruncNormal(0.62, 0.18, 0.15, 0.98),
		Weight:      1,
	}
}

// snapInt returns the ladder value closest to v in log space.
func snapInt(ladder []int, v float64) int {
	best, bestD := ladder[0], math.Inf(1)
	for _, l := range ladder {
		d := math.Abs(math.Log(float64(l)) - math.Log(math.Max(v, 0.5)))
		if d < bestD {
			best, bestD = l, d
		}
	}
	return best
}

// snapFloat returns the ladder value closest to v in log space.
func snapFloat(ladder []float64, v float64) float64 {
	best, bestD := ladder[0], math.Inf(1)
	for _, l := range ladder {
		d := math.Abs(math.Log(l) - math.Log(math.Max(v, 0.1)))
		if d < bestD {
			best, bestD = l, d
		}
	}
	return best
}

// SampleUser draws a user index proportional to activity.
func (p *Population) SampleUser(src *rng.Source) *User {
	return &p.Users[src.Choice(p.weights)]
}

// SampleConfig draws a submission from the user: usually a repertoire
// config, occasionally (Explore) a fresh one-off template.
func (u *User) SampleConfig(src *rng.Source, diversity float64) Config {
	if src.Bool(u.Explore) {
		prefs := classPreference(src, diversity)
		return drawConfig(src, apps.Catalog(), prefs, diversity)
	}
	weights := make([]float64, len(u.Configs))
	for i := range u.Configs {
		weights[i] = u.Configs[i].Weight
	}
	return u.Configs[src.Choice(weights)]
}

// NodeLadder exposes the request ladder (for tests and doc tooling).
func NodeLadder() []int { return append([]int(nil), nodeLadder...) }

// WallLadder exposes the walltime ladder in hours.
func WallLadder() []float64 { return append([]float64(nil), wallLadder...) }
