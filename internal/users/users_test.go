package users

import (
	"math"
	"sort"
	"testing"
	"time"

	"hpcpower/internal/cluster"
	"hpcpower/internal/rng"
	"hpcpower/internal/stats"
)

func emmyPop(t *testing.T, seed uint64) *Population {
	t.Helper()
	spec := cluster.Emmy()
	pop, err := NewPopulation(spec, DefaultParams(spec), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestPopulationShape(t *testing.T) {
	pop := emmyPop(t, 1)
	if len(pop.Users) != 190 {
		t.Fatalf("users = %d", len(pop.Users))
	}
	ids := map[string]bool{}
	for _, u := range pop.Users {
		if ids[u.ID] {
			t.Errorf("duplicate user id %s", u.ID)
		}
		ids[u.ID] = true
		if len(u.Configs) < 2 || len(u.Configs) > 9 {
			t.Errorf("%s has %d configs", u.ID, len(u.Configs))
		}
		if u.Activity <= 0 {
			t.Errorf("%s activity %v", u.ID, u.Activity)
		}
		for _, c := range u.Configs {
			if c.Nodes <= 0 || c.ReqWall <= 0 || c.PowerTilt <= 0 {
				t.Errorf("%s bad config %+v", u.ID, c)
			}
			if c.WallUseMean < 0.15 || c.WallUseMean > 0.98 {
				t.Errorf("%s wall use %v", u.ID, c.WallUseMean)
			}
			inLadder := false
			for _, n := range NodeLadder() {
				if c.Nodes == n {
					inLadder = true
				}
			}
			if !inLadder {
				t.Errorf("config nodes %d not on the request ladder", c.Nodes)
			}
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, b := emmyPop(t, 5), emmyPop(t, 5)
	for i := range a.Users {
		if a.Users[i].Activity != b.Users[i].Activity {
			t.Fatalf("user %d activity differs", i)
		}
		for c := range a.Users[i].Configs {
			if a.Users[i].Configs[c] != b.Users[i].Configs[c] {
				t.Fatalf("user %d config %d differs", i, c)
			}
		}
	}
}

func TestActivityConcentration(t *testing.T) {
	// The activity distribution must be heavy-tailed enough that the top
	// 20% of users hold the lion's share — the precondition for Fig. 11.
	pop := emmyPop(t, 2)
	acts := make([]float64, len(pop.Users))
	for i, u := range pop.Users {
		acts[i] = u.Activity
	}
	share := stats.NewConcentration(acts).TopShare(0.2)
	if share < 0.6 {
		t.Errorf("top-20%% activity share = %v, want >= 0.6", share)
	}
}

func TestSampleUserFollowsActivity(t *testing.T) {
	pop := emmyPop(t, 3)
	src := rng.New(99)
	counts := map[string]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[pop.SampleUser(src).ID]++
	}
	// The most active user must be sampled far more often than the median.
	type uc struct {
		act float64
		cnt int
	}
	var all []uc
	for i, u := range pop.Users {
		_ = i
		all = append(all, uc{u.Activity, counts[u.ID]})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].act > all[b].act })
	if all[0].cnt < 10*all[len(all)/2].cnt {
		t.Errorf("sampling does not track activity: top=%d median=%d", all[0].cnt, all[len(all)/2].cnt)
	}
}

func TestSampleConfigMostlyRepertoire(t *testing.T) {
	pop := emmyPop(t, 4)
	u := &pop.Users[0]
	src := rng.New(7)
	inRep := 0
	const n = 5000
	for i := 0; i < n; i++ {
		cfg := u.SampleConfig(src, 0.5)
		for _, c := range u.Configs {
			if cfg == c {
				inRep++
				break
			}
		}
	}
	frac := float64(inRep) / n
	if frac < 0.85 {
		t.Errorf("repertoire fraction = %v, want >= 0.85 (explore=%v)", frac, u.Explore)
	}
	if frac == 1 {
		t.Error("exploration never happened")
	}
}

func TestRepertoireZipfWeights(t *testing.T) {
	pop := emmyPop(t, 6)
	for _, u := range pop.Users {
		for i := 1; i < len(u.Configs); i++ {
			if u.Configs[i].Weight > u.Configs[i-1].Weight {
				t.Fatalf("%s config weights not decreasing", u.ID)
			}
		}
	}
}

func TestMeggieMoreDiverse(t *testing.T) {
	// Meggie's parameters must produce wider within-user spreads of node
	// counts than Emmy's (the paper: node-count variability 55% vs 40%).
	emmy, meggie := cluster.Emmy(), cluster.Meggie()
	pe, err := NewPopulation(emmy, DefaultParams(emmy), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewPopulation(meggie, DefaultParams(meggie), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	spread := func(p *Population) float64 {
		var cvs []float64
		for _, u := range p.Users {
			var nodes []float64
			for _, c := range u.Configs {
				nodes = append(nodes, float64(c.Nodes))
			}
			if cv := stats.CV(nodes); !math.IsNaN(cv) {
				cvs = append(cvs, cv)
			}
		}
		return stats.Mean(cvs)
	}
	se, sm := spread(pe), spread(pm)
	if !(sm > se) {
		t.Errorf("Meggie config diversity %v <= Emmy %v", sm, se)
	}
}

func TestDefaultParams(t *testing.T) {
	pe := DefaultParams(cluster.Emmy())
	pm := DefaultParams(cluster.Meggie())
	if pe.NumUsers <= pm.NumUsers {
		t.Error("Emmy (general purpose) should have more users than Meggie")
	}
	if pm.Diversity <= pe.Diversity {
		t.Error("Meggie should have higher diversity")
	}
}

func TestNewPopulationRejects(t *testing.T) {
	spec := cluster.Emmy()
	if _, err := NewPopulation(spec, Params{NumUsers: 0, ConfigsMin: 1, ConfigsMax: 2}, rng.New(1)); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := NewPopulation(spec, Params{NumUsers: 5, ConfigsMin: 3, ConfigsMax: 2}, rng.New(1)); err == nil {
		t.Error("inverted config bounds accepted")
	}
}

func TestSnapHelpers(t *testing.T) {
	if got := snapInt([]int{1, 2, 4, 8}, 3.1); got != 4 && got != 2 {
		t.Errorf("snapInt(3.1) = %d", got)
	}
	if got := snapInt([]int{1, 2, 4, 8}, 100); got != 8 {
		t.Errorf("snapInt(100) = %d", got)
	}
	if got := snapInt([]int{1, 2, 4, 8}, 0); got != 1 {
		t.Errorf("snapInt(0) = %d", got)
	}
	if got := snapFloat([]float64{1, 24, 72}, 30); got != 24 {
		t.Errorf("snapFloat(30) = %v", got)
	}
}

func TestWallLadderValues(t *testing.T) {
	wl := WallLadder()
	if wl[0] != 1 || wl[len(wl)-1] != 72 {
		t.Errorf("wall ladder = %v", wl)
	}
	for _, u := range emmyPop(t, 8).Users {
		for _, c := range u.Configs {
			h := c.ReqWall.Hours()
			found := false
			for _, w := range wl {
				if math.Abs(h-w) < 1e-9 {
					found = true
				}
			}
			if !found {
				t.Fatalf("walltime %v h not on ladder", h)
			}
		}
	}
}

func TestConfigReqWallDuration(t *testing.T) {
	pop := emmyPop(t, 9)
	for _, u := range pop.Users {
		for _, c := range u.Configs {
			if c.ReqWall < time.Hour || c.ReqWall > 72*time.Hour {
				t.Fatalf("req wall out of range: %v", c.ReqWall)
			}
		}
	}
}

func TestClassPreferenceStructure(t *testing.T) {
	src := rng.New(33)
	// Low diversity: the main class dominates heavily.
	prefs := classPreference(src, 0.1)
	if len(prefs) != 4 {
		t.Fatalf("prefs = %v", prefs)
	}
	var mainCount int
	for _, v := range prefs {
		if v == 1 {
			mainCount++
		}
		if v <= 0 {
			t.Fatalf("non-positive preference: %v", prefs)
		}
	}
	if mainCount != 1 {
		t.Errorf("expected exactly one main class, got %d", mainCount)
	}
	// High diversity widens the off-class weights on average.
	sumOff := func(d float64) float64 {
		var s float64
		for i := 0; i < 500; i++ {
			p := classPreference(src, d)
			for _, v := range p {
				if v != 1 {
					s += v
				}
			}
		}
		return s
	}
	if !(sumOff(1.0) > sumOff(0.1)) {
		t.Error("diversity does not widen class mixing")
	}
}

func TestRepertoireSizeScalesWithActivity(t *testing.T) {
	pop := emmyPop(t, 21)
	// Top-decile users should carry more configs than bottom-decile ones.
	n := len(pop.Users)
	var top, bottom float64
	for i := 0; i < n/10; i++ {
		top += float64(len(pop.Users[i].Configs))
		bottom += float64(len(pop.Users[n-1-i].Configs))
	}
	if !(top > bottom) {
		t.Errorf("top-decile configs %v <= bottom-decile %v", top, bottom)
	}
}

func TestExploreScalesWithActivity(t *testing.T) {
	pop := emmyPop(t, 22)
	first := pop.Users[0].Explore
	last := pop.Users[len(pop.Users)-1].Explore
	if !(first > last) {
		t.Errorf("heavy user explore %v <= casual %v", first, last)
	}
	if last <= 0 {
		t.Errorf("casual explore = %v, want positive", last)
	}
}

func TestDistinctRepertoireCells(t *testing.T) {
	pop := emmyPop(t, 23)
	for _, u := range pop.Users {
		cells := map[[2]int64]int{}
		for _, c := range u.Configs {
			cells[[2]int64{int64(c.Nodes), int64(c.ReqWall)}]++
		}
		dup := 0
		for _, n := range cells {
			if n > 1 {
				dup += n - 1
			}
		}
		// The anti-collision retry is best-effort (20 attempts): allow the
		// occasional duplicate but not systematic collisions.
		if dup > len(u.Configs)/2 {
			t.Errorf("%s has %d duplicate cells of %d configs", u.ID, dup, len(u.Configs))
		}
	}
}
