package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/vfs"
)

// waitDegraded polls /readyz until storage_degraded matches want.
func waitDegraded(t *testing.T, url string, want bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, url+"/readyz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz: %d %s", resp.StatusCode, body)
		}
		var rb map[string]any
		if err := json.Unmarshal(body, &rb); err != nil {
			t.Fatalf("unmarshal /readyz %s: %v", body, err)
		}
		if got, _ := rb["storage_degraded"].(bool); got == want {
			return rb
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("/readyz never reported storage_degraded=%v", want)
	return nil
}

// TestStorageDegradedRejectsIngestAndRecovers drives the ENOSPC
// degraded-mode loop end to end: the disk monitor's write probe starts
// failing (injected, scoped to the probe file so the WAL stays
// healthy), ingest flips to 503 storage_degraded while reads keep
// serving, and everything recovers on its own once the "disk" heals.
func TestStorageDegradedRejectsIngestAndRecovers(t *testing.T) {
	ffs := vfs.NewFault(vfs.OS, vfs.FaultConfig{})
	s, ts := newDurableServer(t, t.TempDir(), DurabilityConfig{
		FS:                ffs,
		DiskCheckInterval: 10 * time.Millisecond,
	})
	defer s.Close()
	defer ts.Close()

	batches := stampedBatches(7, 4)
	resp, body := postJSON(t, ts.URL+"/v1/samples", batches[0])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest: %d %s", resp.StatusCode, body)
	}

	// Fill the "disk": every write to the probe file now fails ENOSPC.
	ffs.Configure(func(c *vfs.FaultConfig) {
		c.WriteBudget = 1
		c.PathSubstring = ".disk-probe"
	})
	rb := waitDegraded(t, ts.URL, true)
	if reason, _ := rb["storage_reason"].(string); reason == "" {
		t.Fatal("/readyz degraded without a storage_reason")
	}

	resp, body = postJSON(t, ts.URL+"/v1/samples", batches[1])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest = %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	if resp.Header.Get(HeaderStorageDegraded) != "1" {
		t.Fatalf("degraded 503 missing %s header", HeaderStorageDegraded)
	}
	var errBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Code != CodeStorageDegraded {
		t.Fatalf("degraded 503 body = %s, want code %q", body, CodeStorageDegraded)
	}

	// Reads must keep serving from what's already durable.
	resp, body = get(t, ts.URL+"/v1/summary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded: %d %s", resp.StatusCode, body)
	}

	// Space frees; the monitor must clear degraded mode on its own and
	// ingest must work again without a restart.
	ffs.Configure(func(c *vfs.FaultConfig) { c.WriteBudget = 0 })
	waitDegraded(t, ts.URL, false)
	resp, body = postJSON(t, ts.URL+"/v1/samples", batches[1])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after recovery: %d %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, "powserved_disk_degraded 0") {
		t.Errorf("metrics: powserved_disk_degraded should be 0 after recovery")
	}
	if !strings.Contains(text, "powserved_disk_transitions_total") ||
		strings.Contains(text, "powserved_disk_transitions_total 0") {
		t.Errorf("metrics: expected non-zero powserved_disk_transitions_total")
	}
}

// TestWALFsyncFailureMapsToStorageDegraded: when the WAL's group-commit
// fsync fails, the ingest ack path must answer 503 storage_degraded
// (backpressure — shippers wait and re-send), and because a failed
// fsync permanently poisons the log, ingest must stay down even after
// the disk "recovers"; /readyz names the restart-required condition.
func TestWALFsyncFailureMapsToStorageDegraded(t *testing.T) {
	ffs := vfs.NewFault(vfs.OS, vfs.FaultConfig{})
	s, ts := newDurableServer(t, t.TempDir(), DurabilityConfig{
		FS:                ffs,
		DiskCheckInterval: 10 * time.Millisecond,
	})
	defer s.Close()
	defer ts.Close()

	batches := stampedBatches(11, 3)
	resp, body := postJSON(t, ts.URL+"/v1/samples", batches[0])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest: %d %s", resp.StatusCode, body)
	}

	ffs.Configure(func(c *vfs.FaultConfig) {
		c.SyncErrProb = 1
		c.PathSubstring = "wal-"
	})
	resp, body = postJSON(t, ts.URL+"/v1/samples", batches[1])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest with failing fsync = %d %s, want 503", resp.StatusCode, body)
	}
	var errBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Code != CodeStorageDegraded {
		t.Fatalf("fsync-failure 503 body = %s, want code %q", body, CodeStorageDegraded)
	}

	// The disk heals — but the unacked batch may be gone from the page
	// cache, so the poisoned log must keep refusing appends and the
	// monitor must hold degraded mode with a restart-required reason.
	ffs.Configure(func(c *vfs.FaultConfig) { c.SyncErrProb = 0 })
	rb := waitDegraded(t, ts.URL, true)
	reason, _ := rb["storage_reason"].(string)
	if !strings.Contains(reason, "restart required") {
		t.Fatalf("storage_reason = %q, want a restart-required WAL-poison reason", reason)
	}
	resp, body = postJSON(t, ts.URL+"/v1/samples", batches[2])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on poisoned WAL = %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get(HeaderStorageDegraded) != "1" {
		t.Fatalf("poisoned-WAL 503 missing %s header", HeaderStorageDegraded)
	}
}
