package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Storage-degraded mode: a disk-health monitor owned by the durability
// layer flips ingest to 503 when the data directory stops accepting
// durable writes — free space under the watermark, a failed write
// probe, or a poisoned WAL (fsync failure). Reads keep serving the
// whole time, /readyz stays 200 with the reason attached, and the mode
// clears itself when the next check succeeds (except a poisoned WAL,
// which requires a restart — crash recovery is the only safe way to
// re-establish what is durable after a failed fsync).

// CodeStorageDegraded is the machine-readable error code on a 503 from
// the ingest path while the node cannot make writes durable. Shippers
// treat it as backpressure: honor Retry-After, keep spilling, do not
// rotate targets — every other node shares the same fate only if the
// outage is systemic, but rotating on a single node's full disk would
// thrash.
const CodeStorageDegraded = "storage_degraded"

// HeaderStorageDegraded is set to "1" on storage-degraded 503s so
// clients can distinguish them from queue-full backpressure without
// parsing the body.
const HeaderStorageDegraded = "X-Storage-Degraded"

// diskState is the monitor's shared state, read by the ingest gate and
// the metrics collector.
type diskState struct {
	degraded    atomic.Bool
	reason      atomic.Value // string; set before degraded flips true
	transitions atomic.Int64 // degraded-state flips (either direction)
	probeErrors atomic.Int64
	freeBytes   atomic.Int64
	totalBytes  atomic.Int64
}

// storageDegraded reports whether ingest should refuse with 503
// storage_degraded.
func (d *durability) storageDegraded() bool { return d.disk.degraded.Load() }

// degradeReason returns the human-readable cause of the current
// degraded state ("" when healthy).
func (d *durability) degradeReason() string {
	if !d.disk.degraded.Load() {
		return ""
	}
	if r, ok := d.disk.reason.Load().(string); ok {
		return r
	}
	return "storage degraded"
}

func (d *durability) setDegraded(v bool, reason string) {
	if v {
		d.disk.reason.Store(reason)
	}
	if d.disk.degraded.Swap(v) != v {
		d.disk.transitions.Add(1)
	}
}

// diskLoop re-checks storage health on a fixed cadence. It starts after
// recovery so the first check never races replay.
func (d *durability) diskLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.DiskCheckInterval)
	defer t.Stop()
	d.checkDisk()
	for {
		select {
		case <-d.stopc:
			return
		case <-t.C:
			d.checkDisk()
		}
	}
}

// checkDisk runs one health pass: WAL poison first (terminal), then the
// free-space watermark, then an end-to-end write+fsync probe through
// the same vfs the WAL writes through. Recovery is hysteretic: once
// degraded on space, free bytes must climb past the resume watermark
// (default 2× the low watermark) before ingest reopens, so a disk
// hovering at the threshold does not flap.
func (d *durability) checkDisk() {
	if d.log != nil {
		if err := d.log.Err(); err != nil {
			d.setDegraded(true, fmt.Sprintf("wal poisoned (restart required): %v", err))
			return
		}
	}
	free, total, ok := diskUsage(d.cfg.Dir)
	if ok {
		d.disk.freeBytes.Store(int64(free))
		d.disk.totalBytes.Store(int64(total))
	}
	if ok && d.cfg.DiskLowBytes > 0 {
		low := uint64(d.cfg.DiskLowBytes)
		resume := uint64(d.cfg.DiskResumeBytes)
		if resume <= low {
			resume = 2 * low
		}
		if free < low {
			d.setDegraded(true, fmt.Sprintf("disk free %d bytes below watermark %d", free, low))
			return
		}
		if d.disk.degraded.Load() && free < resume {
			return // hold degraded until clearly out of the woods
		}
	}
	if err := d.probeWrite(); err != nil {
		d.disk.probeErrors.Add(1)
		d.setDegraded(true, fmt.Sprintf("disk probe failed: %v", err))
		return
	}
	d.setDegraded(false, "")
}

// probeWrite proves the data directory still takes durable writes:
// create, write, fsync, close, remove — through the injected vfs, so
// fault drills degrade the probe exactly like the WAL.
func (d *durability) probeWrite() error {
	path := filepath.Join(d.cfg.Dir, ".disk-probe")
	f, err := d.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("powserved disk probe\n"))
	serr := f.Sync()
	cerr := f.Close()
	_ = d.fsys.Remove(path)
	switch {
	case werr != nil:
		return werr
	case serr != nil:
		return serr
	default:
		return cerr
	}
}
