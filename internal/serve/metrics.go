package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// endpointStats is the per-endpoint request accounting: counts, errors,
// and latency sum/max — all atomics, so the hot path never takes a lock.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status ≥ 400
	nanosSum atomic.Int64
	nanosMax atomic.Int64
}

func (e *endpointStats) observe(d time.Duration, status int) {
	e.requests.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	n := d.Nanoseconds()
	e.nanosSum.Add(n)
	for {
		cur := e.nanosMax.Load()
		if n <= cur || e.nanosMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

// metrics aggregates server-wide counters for GET /metrics.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats

	samplesIngested atomic.Int64
	batchesAccepted atomic.Int64
	batchesRejected atomic.Int64 // backpressure: queue full
	batchesInvalid  atomic.Int64 // malformed body or samples
	queueDepth      func() int
}

func newMetrics(queueDepth func() int) *metrics {
	return &metrics{endpoints: map[string]*endpointStats{}, queueDepth: queueDepth}
}

func (m *metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[name]
	if e == nil {
		e = &endpointStats{}
		m.endpoints[name] = e
	}
	return e
}

// instrument wraps a handler with latency/throughput accounting under the
// given endpoint label.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	e := m.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		e.observe(time.Since(start), sw.status)
	}
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// write renders the counters in the Prometheus text exposition format
// (hand-rolled: the repo is stdlib-only by design).
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# TYPE powserved_samples_ingested_total counter\n")
	fmt.Fprintf(w, "powserved_samples_ingested_total %d\n", m.samplesIngested.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_accepted_total counter\n")
	fmt.Fprintf(w, "powserved_batches_accepted_total %d\n", m.batchesAccepted.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_rejected_total counter\n")
	fmt.Fprintf(w, "powserved_batches_rejected_total %d\n", m.batchesRejected.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_invalid_total counter\n")
	fmt.Fprintf(w, "powserved_batches_invalid_total %d\n", m.batchesInvalid.Load())
	if m.queueDepth != nil {
		fmt.Fprintf(w, "# TYPE powserved_ingest_queue_depth gauge\n")
		fmt.Fprintf(w, "powserved_ingest_queue_depth %d\n", m.queueDepth())
	}

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	eps := make([]*endpointStats, len(names))
	for i, name := range names {
		eps[i] = m.endpoints[name]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE powserved_requests_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_requests_total{endpoint=%q} %d\n", name, eps[i].requests.Load())
	}
	fmt.Fprintf(w, "# TYPE powserved_request_errors_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_request_errors_total{endpoint=%q} %d\n", name, eps[i].errors.Load())
	}
	fmt.Fprintf(w, "# TYPE powserved_request_seconds_sum counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_request_seconds_sum{endpoint=%q} %g\n",
			name, float64(eps[i].nanosSum.Load())/1e9)
	}
	fmt.Fprintf(w, "# TYPE powserved_request_seconds_max gauge\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_request_seconds_max{endpoint=%q} %g\n",
			name, float64(eps[i].nanosMax.Load())/1e9)
	}
}
