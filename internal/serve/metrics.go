package serve

import (
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"hpcpower/internal/obs"
)

// metrics is the server's observability surface, built on obs.Registry:
// one WritePrometheus call renders everything (the ad-hoc emitters this
// replaces were two divergent hand-rolled paths). Legacy powserved_*
// series keep their exact names and shapes — they are emitted from the
// same underlying counters/histograms via collectors — while the new
// latency histograms add distribution data the old counters could not
// express.
type metrics struct {
	reg *obs.Registry

	samplesIngested  *obs.Counter // powserved_samples_ingested_total
	batchesAccepted  *obs.Counter
	batchesRejected  *obs.Counter // backpressure: queue full
	batchesInvalid   *obs.Counter // malformed body or samples
	batchesDuplicate *obs.Counter // (agent, seq) already counted — dedup hit
	batchesStale     *obs.Counter // duplicate because older than the dedup window
	redeliveries     *obs.Counter // batches flagged as re-sent by the agent

	// requestLatency is the per-endpoint request distribution; the
	// legacy powserved_requests_total / _request_seconds_sum /
	// _request_seconds_max series are derived from its children, so one
	// Observe on the hot path feeds both the histogram and the
	// backward-compatible counters.
	requestLatency *obs.HistogramVec // powserved_request_latency_seconds{endpoint}
	requestErrors  *obs.CounterVec   // powserved_request_errors_total{endpoint}

	blockFlush *obs.Histogram // powserved_block_flush_seconds per head→block flush pass

	// Admission-control surface: sheds by reason (limiter, queue, codel,
	// agent_rate, memory, query, admin) and the delivered entries'
	// queue-sojourn distribution — the signal CoDel acts on.
	admitShed    *obs.CounterVec // powserved_admit_shed_total{reason}
	admitSojourn *obs.Histogram  // powserved_admit_queue_sojourn_seconds

	ingestE2E   *obs.Histogram // powserved_ingest_e2e_seconds: accept → durable ack
	walAppend   *obs.Histogram // powserved_wal_append_seconds
	walFsync    *obs.Histogram // powserved_wal_fsync_seconds
	groupCommit *obs.Histogram // powserved_group_commit_records per fsync
	replApply   *obs.Histogram // powserved_repl_apply_seconds per streamed record
	replSend    *obs.Histogram // powserved_repl_send_records per catch-up burst

	// Slow-request accounting: requests at or over slowThreshold log a
	// Warn with the endpoint, duration, and trace ID.
	slowThreshold time.Duration
	logger        *slog.Logger
	traces        *obs.TraceRing

	agentMu sync.Mutex
	agents  map[string]*agentReport
}

// agentReport is the last delivery-health state an agent self-reported
// via ingest request headers — the server-side window into the shipper's
// breaker, retry, and spill-buffer counters.
type agentReport struct {
	breaker    string // "closed", "half-open", "open"
	retries    int64  // cumulative retry attempts
	spillDepth int64  // batches waiting in the agent's spill buffer
}

func newMetrics(queueDepth func() int) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:    reg,
		agents: map[string]*agentReport{},
		logger: obs.Component(nil, "serve"),
		traces: obs.NewTraceRing(0),

		samplesIngested:  reg.Counter("powserved_samples_ingested_total"),
		batchesAccepted:  reg.Counter("powserved_batches_accepted_total"),
		batchesRejected:  reg.Counter("powserved_batches_rejected_total"),
		batchesInvalid:   reg.Counter("powserved_batches_invalid_total"),
		batchesDuplicate: reg.Counter("powserved_batches_duplicate_total"),
		batchesStale:     reg.Counter("powserved_batches_stale_total"),
		redeliveries:     reg.Counter("powserved_redeliveries_total"),

		requestLatency: reg.HistogramVec("powserved_request_latency_seconds", "endpoint", obs.DefaultLatencyBuckets),
		requestErrors:  reg.CounterVec("powserved_request_errors_total", "endpoint"),
		blockFlush:     reg.Histogram("powserved_block_flush_seconds", obs.DefaultLatencyBuckets),
		admitShed:      reg.CounterVec("powserved_admit_shed_total", "reason"),
		admitSojourn:   reg.Histogram("powserved_admit_queue_sojourn_seconds", obs.DefaultLatencyBuckets),
		ingestE2E:      reg.Histogram("powserved_ingest_e2e_seconds", obs.DefaultLatencyBuckets),
		walAppend:      reg.Histogram("powserved_wal_append_seconds", obs.DefaultLatencyBuckets),
		walFsync:       reg.Histogram("powserved_wal_fsync_seconds", obs.DefaultLatencyBuckets),
		groupCommit:    reg.Histogram("powserved_group_commit_records", obs.SizeBuckets),
		replApply:      reg.Histogram("powserved_repl_apply_seconds", obs.DefaultLatencyBuckets),
		replSend:       reg.Histogram("powserved_repl_send_records", obs.SizeBuckets),
	}
	if queueDepth != nil {
		reg.GaugeFunc("powserved_ingest_queue_depth", func() float64 { return float64(queueDepth()) })
	}
	// Legacy per-endpoint and per-agent families, derived at scrape time.
	reg.AddCollector(m.collectLegacyRequests)
	reg.AddCollector(m.collectAgents)
	obs.RegisterRuntime(reg)
	return m
}

// Agent-report headers set by ship.Shipper on every delivery.
const (
	HeaderBreakerState = "X-Breaker-State"
	HeaderAgentRetries = "X-Agent-Retries"
	HeaderSpillDepth   = "X-Agent-Spill-Depth"
)

// agentReportCap bounds the per-agent gauge map; beyond it new agents
// are not tracked (the dedup index has its own, larger bound).
const agentReportCap = 1024

// observeAgent folds the agent-reported delivery-health headers into the
// per-agent gauges.
func (m *metrics) observeAgent(agent string, h http.Header) {
	m.agentMu.Lock()
	defer m.agentMu.Unlock()
	rep := m.agents[agent]
	if rep == nil {
		if len(m.agents) >= agentReportCap {
			return
		}
		rep = &agentReport{breaker: "closed"}
		m.agents[agent] = rep
	}
	if v := h.Get(HeaderBreakerState); v != "" {
		rep.breaker = v
	}
	if v := h.Get(HeaderAgentRetries); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			rep.retries = n
		}
	}
	if v := h.Get(HeaderSpillDepth); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			rep.spillDepth = n
		}
	}
}

// instrument wraps a handler with latency/throughput accounting under
// the given endpoint label. The child histogram is resolved at wrap
// time, so the request path is a lock-free Observe; slow requests
// (≥ slowThreshold) additionally log a Warn carrying the trace ID.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := m.requestLatency.With(name)
	errs := m.requestErrors.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		hist.ObserveDuration(d)
		if sw.status >= 400 {
			errs.Inc()
		}
		if m.slowThreshold > 0 && d >= m.slowThreshold {
			m.logger.Warn("slow request",
				slog.String("endpoint", name),
				slog.Int("status", sw.status),
				slog.Float64("dur_ms", float64(d)/float64(time.Millisecond)),
				slog.String("trace_id", r.Header.Get(obs.HeaderTraceID)))
		}
	}
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// collectLegacyRequests derives the pre-histogram per-endpoint series
// from the request-latency children: requests_total is the child count,
// request_seconds_sum its sum, request_seconds_max its max.
func (m *metrics) collectLegacyRequests(e *obs.Exposition) {
	names, hists := m.requestLatency.Children()
	byName := make(map[string]*obs.Histogram, len(names))
	for i, n := range names {
		byName[n] = hists[i]
	}
	sort.Strings(names)
	for _, n := range names {
		e.CounterL("powserved_requests_total", "endpoint", n, float64(byName[n].Count()))
	}
	for _, n := range names {
		e.CounterL("powserved_request_seconds_sum", "endpoint", n, byName[n].Sum())
	}
	for _, n := range names {
		e.GaugeL("powserved_request_seconds_max", "endpoint", n, byName[n].Max())
	}
}

// collectAgents emits the last self-reported delivery-health gauges.
func (m *metrics) collectAgents(e *obs.Exposition) {
	m.agentMu.Lock()
	names := make([]string, 0, len(m.agents))
	for name := range m.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	reps := make([]agentReport, len(names))
	for i, name := range names {
		reps[i] = *m.agents[name]
	}
	m.agentMu.Unlock()
	if len(names) == 0 {
		return
	}
	for i, name := range names {
		e.GaugeL("powserved_agent_breaker_state", "agent", name, float64(breakerStateValue(reps[i].breaker)))
	}
	for i, name := range names {
		e.GaugeL("powserved_agent_retries", "agent", name, float64(reps[i].retries))
	}
	for i, name := range names {
		e.GaugeL("powserved_agent_spill_depth", "agent", name, float64(reps[i].spillDepth))
	}
}

// breakerStateValue encodes the reported breaker state as a numeric
// gauge: 0 closed (healthy), 1 half-open (probing), 2 open (tripped).
func breakerStateValue(s string) int {
	switch s {
	case "half-open":
		return 1
	case "open":
		return 2
	default:
		return 0
	}
}
