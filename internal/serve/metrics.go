package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// endpointStats is the per-endpoint request accounting: counts, errors,
// and latency sum/max — all atomics, so the hot path never takes a lock.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status ≥ 400
	nanosSum atomic.Int64
	nanosMax atomic.Int64
}

func (e *endpointStats) observe(d time.Duration, status int) {
	e.requests.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	n := d.Nanoseconds()
	e.nanosSum.Add(n)
	for {
		cur := e.nanosMax.Load()
		if n <= cur || e.nanosMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

// metrics aggregates server-wide counters for GET /metrics.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats

	samplesIngested  atomic.Int64
	batchesAccepted  atomic.Int64
	batchesRejected  atomic.Int64 // backpressure: queue full
	batchesInvalid   atomic.Int64 // malformed body or samples
	batchesDuplicate atomic.Int64 // (agent, seq) already counted — dedup hit
	batchesStale     atomic.Int64 // duplicate because older than the dedup window
	redeliveries     atomic.Int64 // batches flagged as re-sent by the agent
	queueDepth       func() int

	agentMu sync.Mutex
	agents  map[string]*agentReport
}

// agentReport is the last delivery-health state an agent self-reported
// via ingest request headers — the server-side window into the shipper's
// breaker, retry, and spill-buffer counters.
type agentReport struct {
	breaker    string // "closed", "half-open", "open"
	retries    int64  // cumulative retry attempts
	spillDepth int64  // batches waiting in the agent's spill buffer
}

func newMetrics(queueDepth func() int) *metrics {
	return &metrics{
		endpoints:  map[string]*endpointStats{},
		queueDepth: queueDepth,
		agents:     map[string]*agentReport{},
	}
}

// Agent-report headers set by ship.Shipper on every delivery.
const (
	HeaderBreakerState = "X-Breaker-State"
	HeaderAgentRetries = "X-Agent-Retries"
	HeaderSpillDepth   = "X-Agent-Spill-Depth"
)

// agentReportCap bounds the per-agent gauge map; beyond it new agents
// are not tracked (the dedup index has its own, larger bound).
const agentReportCap = 1024

// observeAgent folds the agent-reported delivery-health headers into the
// per-agent gauges.
func (m *metrics) observeAgent(agent string, h http.Header) {
	m.agentMu.Lock()
	defer m.agentMu.Unlock()
	rep := m.agents[agent]
	if rep == nil {
		if len(m.agents) >= agentReportCap {
			return
		}
		rep = &agentReport{breaker: "closed"}
		m.agents[agent] = rep
	}
	if v := h.Get(HeaderBreakerState); v != "" {
		rep.breaker = v
	}
	if v := h.Get(HeaderAgentRetries); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			rep.retries = n
		}
	}
	if v := h.Get(HeaderSpillDepth); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			rep.spillDepth = n
		}
	}
}

func (m *metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[name]
	if e == nil {
		e = &endpointStats{}
		m.endpoints[name] = e
	}
	return e
}

// instrument wraps a handler with latency/throughput accounting under the
// given endpoint label.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	e := m.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		e.observe(time.Since(start), sw.status)
	}
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// write renders the counters in the Prometheus text exposition format
// (hand-rolled: the repo is stdlib-only by design).
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# TYPE powserved_samples_ingested_total counter\n")
	fmt.Fprintf(w, "powserved_samples_ingested_total %d\n", m.samplesIngested.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_accepted_total counter\n")
	fmt.Fprintf(w, "powserved_batches_accepted_total %d\n", m.batchesAccepted.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_rejected_total counter\n")
	fmt.Fprintf(w, "powserved_batches_rejected_total %d\n", m.batchesRejected.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_invalid_total counter\n")
	fmt.Fprintf(w, "powserved_batches_invalid_total %d\n", m.batchesInvalid.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_duplicate_total counter\n")
	fmt.Fprintf(w, "powserved_batches_duplicate_total %d\n", m.batchesDuplicate.Load())
	fmt.Fprintf(w, "# TYPE powserved_batches_stale_total counter\n")
	fmt.Fprintf(w, "powserved_batches_stale_total %d\n", m.batchesStale.Load())
	fmt.Fprintf(w, "# TYPE powserved_redeliveries_total counter\n")
	fmt.Fprintf(w, "powserved_redeliveries_total %d\n", m.redeliveries.Load())
	if m.queueDepth != nil {
		fmt.Fprintf(w, "# TYPE powserved_ingest_queue_depth gauge\n")
		fmt.Fprintf(w, "powserved_ingest_queue_depth %d\n", m.queueDepth())
	}

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	eps := make([]*endpointStats, len(names))
	for i, name := range names {
		eps[i] = m.endpoints[name]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE powserved_requests_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_requests_total{endpoint=%q} %d\n", name, eps[i].requests.Load())
	}
	fmt.Fprintf(w, "# TYPE powserved_request_errors_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_request_errors_total{endpoint=%q} %d\n", name, eps[i].errors.Load())
	}
	fmt.Fprintf(w, "# TYPE powserved_request_seconds_sum counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_request_seconds_sum{endpoint=%q} %g\n",
			name, float64(eps[i].nanosSum.Load())/1e9)
	}
	fmt.Fprintf(w, "# TYPE powserved_request_seconds_max gauge\n")
	for i, name := range names {
		fmt.Fprintf(w, "powserved_request_seconds_max{endpoint=%q} %g\n",
			name, float64(eps[i].nanosMax.Load())/1e9)
	}

	m.agentMu.Lock()
	agentNames := make([]string, 0, len(m.agents))
	for name := range m.agents {
		agentNames = append(agentNames, name)
	}
	sort.Strings(agentNames)
	reps := make([]agentReport, len(agentNames))
	for i, name := range agentNames {
		reps[i] = *m.agents[name]
	}
	m.agentMu.Unlock()
	if len(agentNames) > 0 {
		fmt.Fprintf(w, "# TYPE powserved_agent_breaker_state gauge\n")
		for i, name := range agentNames {
			fmt.Fprintf(w, "powserved_agent_breaker_state{agent=%q} %d\n",
				name, breakerStateValue(reps[i].breaker))
		}
		fmt.Fprintf(w, "# TYPE powserved_agent_retries gauge\n")
		for i, name := range agentNames {
			fmt.Fprintf(w, "powserved_agent_retries{agent=%q} %d\n", name, reps[i].retries)
		}
		fmt.Fprintf(w, "# TYPE powserved_agent_spill_depth gauge\n")
		for i, name := range agentNames {
			fmt.Fprintf(w, "powserved_agent_spill_depth{agent=%q} %d\n", name, reps[i].spillDepth)
		}
	}
}

// breakerStateValue encodes the reported breaker state as a numeric
// gauge: 0 closed (healthy), 1 half-open (probing), 2 open (tripped).
func breakerStateValue(s string) int {
	switch s {
	case "half-open":
		return 1
	case "open":
		return 2
	default:
		return 0
	}
}
