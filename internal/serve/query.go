package serve

import (
	"net/http"
	"strconv"
	"time"

	"hpcpower/internal/core"
	"hpcpower/internal/obs"
)

// Block-store query surface and flush plumbing.
//
//	GET  /v1/query/range?node=&from=&to=[&step=]  merged head+block range read
//	GET  /v1/query/nodes                          all known nodes + flush frontier
//	GET  /v1/query/distribution?from=&to=         sample-power distribution (ECDF reduction)
//	POST /v1/admin/flush                          seal complete windows + compact now
//
// The range read merges transparently: timestamps below the flush
// frontier come from compressed block files, at or above it from the hot
// rings — callers see one seamless series regardless of where the data
// lives.

// hasBlocks reports whether the store has a block store attached; the
// query endpoints degrade gracefully (head-only) without one, but
// /v1/admin/flush requires it.
func (s *Server) hasBlocks() bool { return s.store.Blocks() != nil }

func parseUnixParam(r *http.Request, name string) (int64, bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	return n, true, err
}

func (s *Server) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil || node < 0 {
		errJSON(w, http.StatusBadRequest, "bad node %q", r.URL.Query().Get("node"))
		return
	}
	from, _, err := parseUnixParam(r, "from")
	if err != nil {
		errJSON(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, _, err := parseUnixParam(r, "to")
	if err != nil {
		errJSON(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	step, hasStep, err := parseUnixParam(r, "step")
	if err != nil || (hasStep && step <= 0) {
		errJSON(w, http.StatusBadRequest, "bad step %q", r.URL.Query().Get("step"))
		return
	}
	frontier := s.store.BlockFrontier()
	if hasStep {
		aggs, degraded, err := s.store.QueryAgg(node, from, to, step)
		if err != nil {
			errJSON(w, http.StatusInternalServerError, "aggregate query: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"node": node, "step": step, "frontier": frontier, "points": aggs,
			"degraded": degraded,
		})
		return
	}
	points, degraded, err := s.store.QueryRange(node, from, to)
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "range query: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node": node, "frontier": frontier, "points": points,
		"degraded": degraded,
	})
}

func (s *Server) handleQueryNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":    s.store.NodeIDs(),
		"frontier": s.store.BlockFrontier(),
	})
}

func (s *Server) handleQueryDistribution(w http.ResponseWriter, r *http.Request) {
	from, _, err := parseUnixParam(r, "from")
	if err != nil {
		errJSON(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, _, err := parseUnixParam(r, "to")
	if err != nil {
		errJSON(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	var values []float64
	degraded, err := s.store.EachValueMerged(nil, from, to,
		func() { values = values[:0] },
		func(_ int, _ int64, v float64) { values = append(values, v) })
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "distribution scan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"distribution": core.DistFromValues(values),
		"frontier":     s.store.BlockFrontier(),
		"degraded":     degraded,
	})
}

// flushResponse is the body of POST /v1/admin/flush.
type flushResponse struct {
	Sealed    int   `json:"sealed"`
	Compacted int   `json:"compacted"`
	Frontier  int64 `json:"frontier"`
}

// handleAdminFlush seals every window that is complete as of now and
// compacts rollups synchronously — the manual counterpart of the
// background flush loop, used after historical replays (the smoke test)
// and in operational drills.
func (s *Server) handleAdminFlush(w http.ResponseWriter, r *http.Request) {
	bs := s.store.Blocks()
	if bs == nil {
		errJSON(w, http.StatusServiceUnavailable, "no block store attached")
		return
	}
	start := time.Now()
	sealed, err := s.store.FlushBlocks(time.Now().Unix())
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	s.metrics.blockFlush.ObserveDuration(time.Since(start))
	compacted, err := bs.CompactPending()
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, flushResponse{
		Sealed: sealed, Compacted: compacted, Frontier: s.store.BlockFrontier(),
	})
}

// scrubResponse is the body of POST /v1/admin/scrub.
type scrubResponse struct {
	Blocks *scrubBlocksReport `json:"blocks,omitempty"`
	WAL    *scrubWALReport    `json:"wal,omitempty"`
}

type scrubBlocksReport struct {
	Scanned     int     `json:"scanned"`
	Chunks      int     `json:"chunks"`
	Corrupt     int     `json:"corrupt"`
	Quarantined int     `json:"quarantined"`
	Seconds     float64 `json:"seconds"`
}

type scrubWALReport struct {
	SegmentsScanned int    `json:"segments_scanned"`
	Corrupt         int    `json:"corrupt"`
	Error           string `json:"error,omitempty"`
}

// handleAdminScrub runs one synchronous integrity pass: every cataloged
// block file is CRC re-verified (corrupt ones quarantined on the spot),
// and the WAL's cold segments are re-scanned (detection only — a WAL
// segment cannot be quarantined without breaking LSN contiguity, so
// damage there is reported for the operator and left for recovery's
// torn-tail handling). The background scrubber runs the same block pass
// on its own cadence; this endpoint exists for drills and post-incident
// checks.
func (s *Server) handleAdminScrub(w http.ResponseWriter, r *http.Request) {
	var resp scrubResponse
	if bs := s.store.Blocks(); bs != nil {
		rep := bs.Scrub()
		resp.Blocks = &scrubBlocksReport{
			Scanned:     rep.Blocks,
			Chunks:      rep.Chunks,
			Corrupt:     rep.Corrupt,
			Quarantined: rep.Quarantined,
			Seconds:     rep.Duration.Seconds(),
		}
	}
	if s.dur != nil && s.dur.log != nil {
		scanned, corrupt, err := s.dur.log.ScrubCold()
		wr := &scrubWALReport{SegmentsScanned: scanned, Corrupt: corrupt}
		if err != nil {
			wr.Error = err.Error()
		}
		resp.WAL = wr
	}
	if resp.Blocks == nil && resp.WAL == nil {
		errJSON(w, http.StatusServiceUnavailable, "nothing to scrub: no block store or WAL attached")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// startBlockLoop launches the background flush loop (and registers the
// block gauges) when a block store is attached. The loop seals windows a
// grace period behind wall clock, so stragglers within the grace window
// still land in their block.
func (s *Server) startBlockLoop() {
	if !s.hasBlocks() {
		return
	}
	s.metrics.reg.AddCollector(s.collectBlocks)
	if s.cfg.BlockFlushInterval <= 0 {
		return
	}
	grace := s.cfg.BlockFlushGrace
	if grace <= 0 {
		grace = 5 * time.Minute
	}
	s.flushWG.Add(1)
	go func() {
		defer s.flushWG.Done()
		t := time.NewTicker(s.cfg.BlockFlushInterval)
		defer t.Stop()
		for {
			select {
			case <-s.flushStop:
				return
			case <-t.C:
				if !s.ready.Load() || s.draining.Load() {
					continue
				}
				start := time.Now()
				if _, err := s.store.FlushBlocks(time.Now().Add(-grace).Unix()); err != nil {
					s.metrics.logger.Warn("block flush failed", "err", err)
					continue
				}
				s.metrics.blockFlush.ObserveDuration(time.Since(start))
			}
		}
	}()
}

// collectBlocks emits the block-store gauges on every scrape.
func (s *Server) collectBlocks(e *obs.Exposition) {
	bs := s.store.Blocks()
	if bs == nil {
		return
	}
	st := bs.Stats()
	emit := func(label string, blocks int, bytes, points, samples int64) {
		e.GaugeL("powserved_block_files", "tier", label, float64(blocks))
		e.GaugeL("powserved_block_bytes", "tier", label, float64(bytes))
		e.GaugeL("powserved_block_points", "tier", label, float64(points))
		e.GaugeL("powserved_block_samples", "tier", label, float64(samples))
	}
	emit("raw", st.Raw.Blocks, st.Raw.Bytes, st.Raw.Points, st.Raw.Samples)
	emit("5m", st.Rollup5m.Blocks, st.Rollup5m.Bytes, st.Rollup5m.Points, st.Rollup5m.Samples)
	emit("1h", st.Rollup1h.Blocks, st.Rollup1h.Bytes, st.Rollup1h.Points, st.Rollup1h.Samples)
	e.Gauge("powserved_block_bytes_per_sample", st.BytesPerSample)
	e.Gauge("powserved_block_frontier_unix", float64(s.store.BlockFrontier()))
	e.Counter("powserved_block_flushes_total", float64(st.Flushes))
	e.Counter("powserved_block_compactions_total", float64(st.Compactions))
	e.Counter("powserved_block_retention_unlinked_total", float64(st.RetentionUnlinked))
	e.Counter("powserved_scrub_runs_total", float64(st.ScrubRuns))
	e.Gauge("powserved_scrub_last_unix", float64(st.ScrubLastUnix))
	e.Counter("powserved_scrub_corrupt_total", float64(st.ScrubCorrupt))
	e.Counter("powserved_quarantine_renamed_total", float64(st.Quarantined))
	e.Gauge("powserved_quarantine_files", float64(st.QuarantineFiles))
}
