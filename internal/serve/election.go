package serve

// Election wiring: an optional elect.Elector rides on a durable,
// replication-capable server and closes the failover loop without an
// operator. The elector owns failure detection and witness-quorum
// voting (internal/elect); this file owns the consequences on the
// data plane:
//
//   - promotion: a won election calls PromoteTo(epoch), landing the
//     data epoch exactly on the election epoch so fencing and voting
//     share one number space;
//   - the lease gate: replGateIngest refuses acks while the lease is
//     lapsed (see replication.go), so a partitioned primary goes
//     silent instead of acking writes its successor will not have;
//   - automatic rejoin: when the elector reports a foreign leader, a
//     deposed primary negotiates the divergence point via
//     GET /v1/repl/frontier, truncates its WAL back to it, and
//     re-enters the group as a follower with a forced snapshot
//     bootstrap.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hpcpower/internal/elect"
	"hpcpower/internal/repl"
)

// StartElection attaches an elector to this server and runs it until
// ctx ends. The caller provides the group topology (ID, URL, Peers,
// Lead, cadence, State, Transport); the data-plane callbacks — Epoch,
// PromoteTo, LeaderChanged, Frontier — are wired here and must be left
// nil.
// Requires a durable server (NewDurable + Recover not yet necessary:
// the elector refuses promotion until recovery completes).
func (s *Server) StartElection(ctx context.Context, cfg elect.Config) (*elect.Elector, error) {
	d := s.dur
	if d == nil || d.repl == nil {
		return nil, fmt.Errorf("serve: election requires a durable, replication-capable server")
	}
	rs := d.repl
	cfg.Epoch = rs.epoch.Epoch
	cfg.PromoteTo = func(epoch uint64) error {
		_, err := s.PromoteTo(epoch)
		return err
	}
	cfg.LeaderChanged = s.maybeRejoin
	cfg.Frontier = func() (uint64, uint64) {
		return rs.epoch.Epoch(), d.commitFrontier()
	}
	if cfg.Logf == nil {
		cfg.Logf = rs.cfg.Logf
	}
	el, err := elect.New(cfg)
	if err != nil {
		return nil, err
	}
	s.elector.Store(el)
	s.mux.Handle("/v1/elect/", elect.Handler(el))
	go el.Run(ctx)
	return el, nil
}

// commitFrontier is the LSN line campaigns and heartbeats advertise so
// voters can refuse stale candidates. It must sit between two bounds:
// at or above every ingest ack released to clients (safety — anything
// below could be elected away and lost), and at or below what a valid
// successor is guaranteed to hold (liveness — or the standby could
// never take over from a dead primary). For a follower that line is the
// upstream LSN it durably applied. For a primary with registered
// followers it is their min acked LSN: semi-sync acks waited for all of
// them, so released ≤ minAcked ≤ each follower's applied. With no
// follower registered the local apply frontier stands — vacuous
// semi-sync acks live on this node alone, which is exactly the history
// the vote check exists to protect.
func (d *durability) commitFrontier() uint64 {
	if !d.recovered.Load() {
		return 0
	}
	rs := d.repl
	if rs == nil {
		return d.tracker.Load().frontierLSN()
	}
	if rs.isFollower.Load() {
		return rs.replApplied.Load()
	}
	local := d.tracker.Load().frontierLSN()
	if min, n := rs.source.MinAcked(); n > 0 && min < local {
		return min
	}
	return local
}

// handleReplFrontier serves this node's replication frontier — the
// negotiation endpoint a deposed primary hits to learn where shared
// history ends (see repl.Frontier).
func (s *Server) handleReplFrontier(w http.ResponseWriter, r *http.Request) {
	rs, ok := s.replReady(w, r)
	if !ok {
		return
	}
	d := s.dur
	var local uint64
	if d.recovered.Load() {
		local = d.tracker.Load().frontierLSN()
	}
	writeJSON(w, http.StatusOK, repl.Frontier{
		ID:          rs.cfg.FollowerID,
		Epoch:       rs.epoch.Epoch(),
		Role:        rs.role(),
		UpstreamLSN: rs.upstreamAtPromote.Load(),
		LocalLSN:    local,
	})
}

// maybeRejoin is the elector's LeaderChanged hook: some other node
// leads at epoch. It re-fires every election tick while that holds, so
// it must be cheap, idempotent, and must retry a failed rejoin — the
// CAS on rejoining gives all three.
func (s *Server) maybeRejoin(epoch uint64, leaderID, leaderURL string) {
	d := s.dur
	if d == nil || d.repl == nil || !s.ready.Load() {
		return
	}
	rs := d.repl
	rs.setPrimaryHint(leaderURL)
	if rs.isFollower.Load() && rs.currentUpstream() == leaderURL {
		return // already following the right node
	}
	if epoch < rs.epoch.Epoch() {
		return // stale notification from a slow tick
	}
	if !rs.rejoining.CompareAndSwap(false, true) {
		return // a rejoin is already in flight
	}
	go func() {
		defer rs.rejoining.Store(false)
		if err := s.rejoin(epoch, leaderID, leaderURL); err != nil {
			rs.cfg.Logf("repl: rejoin to %q (%s): %v", leaderID, leaderURL, err)
		}
	}()
}

// rejoin demotes this node under a foreign leader and re-enters the
// replication group as its follower:
//
//  1. stop acking (isFollower flips first) and stop any old pull loop;
//  2. fetch the leader's frontier — its UpstreamLSN is the last LSN of
//     ours it had applied when it was promoted, i.e. the end of shared
//     history in our own LSN space;
//  3. under the apply lock, truncate our WAL back to that point (the
//     suffix was never replicated — those are the diverged records the
//     powserved_elect_diverged_records counter reports), reset the
//     apply tracker, and adopt the leader's epoch;
//  4. restart the pull loop against the leader with a forced snapshot
//     bootstrap — applied-beyond-frontier state cannot be un-applied
//     record-by-record, only a snapshot install yields a store the
//     stream can extend.
//
// Over-truncation is safe (the bootstrap reinstalls everything), as is
// skipping: the tracker watermark and dedup absorb replays. A node that
// was already a follower (retargeting to a new leader) skips the
// truncation — its WAL is its own timeline and recovery gates replay on
// the snapshot frontier.
func (s *Server) rejoin(epoch uint64, leaderID, leaderURL string) error {
	d := s.dur
	rs := d.repl
	wasPrimary := !rs.isFollower.Swap(true)
	if s.anom != nil {
		// Back to silent tracking: the new leader owns alert delivery.
		s.anom.SetDeliver(false)
	}
	rs.stopFollower()
	if wasPrimary {
		rs.cfg.Logf("repl: deposed by %q (epoch %d) — negotiating rejoin", leaderID, epoch)
		// Best-effort queue drain: accepted-but-unapplied batches hold
		// WAL LSNs the truncation may remove; the gate above stops new
		// ones and this wait lets stragglers clear before the cut.
		for i := 0; i < 50 && s.ingestQ.Len() > 0; i++ {
			time.Sleep(10 * time.Millisecond)
		}
	}
	fr, err := fetchFrontier(leaderURL, rs.epoch.Epoch())
	if err != nil {
		return fmt.Errorf("fetching frontier: %w", err)
	}
	if fr.Role != RolePrimary {
		return fmt.Errorf("leader %q reports role %q — not rejoining", leaderID, fr.Role)
	}
	target := epoch
	if fr.Epoch > target {
		target = fr.Epoch
	}
	d.applyMu.Lock()
	if wasPrimary {
		dropped, err := d.log.TruncateTo(fr.UpstreamLSN)
		if err != nil {
			d.applyMu.Unlock()
			return fmt.Errorf("truncating diverged wal suffix at %d: %w", fr.UpstreamLSN, err)
		}
		if dropped > 0 {
			rs.divergedRecords.Add(int64(dropped))
			rs.cfg.Logf("repl: rolled back %d diverged record(s) past lsn %d", dropped, fr.UpstreamLSN)
		}
		d.tracker.Store(newApplyTracker(d.log.LastLSN()))
	}
	// The new leader's LSN space is not ours: restart the pull cursor
	// from zero and let the forced bootstrap set the real floor.
	rs.replApplied.Store(0)
	rs.setBootExtras(nil)
	if err := rs.epoch.Store(target); err != nil {
		d.applyMu.Unlock()
		return fmt.Errorf("adopting epoch %d: %w", target, err)
	}
	rs.fenced.Store(false)
	d.applyMu.Unlock()
	rs.rejoins.Add(1)
	rs.cfg.Logf("repl: rejoining as follower of %q at %s (epoch %d, shared history to lsn %d)",
		leaderID, leaderURL, target, fr.UpstreamLSN)
	return rs.startFollowerTo(s, leaderURL, true)
}

// frontierClient is the rejoin negotiation's HTTP client; the frontier
// endpoint is a point read, so a short timeout keeps a dead leader
// from pinning the rejoin loop.
var frontierClient = &http.Client{Timeout: 5 * time.Second}

// fetchFrontier GETs base's /v1/repl/frontier, carrying our epoch so
// fencing gossip keeps flowing even on the rejoin path.
func fetchFrontier(base string, epoch uint64) (repl.Frontier, error) {
	req, err := http.NewRequest(http.MethodGet, strings.TrimRight(base, "/")+"/v1/repl/frontier", nil)
	if err != nil {
		return repl.Frontier{}, err
	}
	req.Header.Set(HeaderReplEpoch, strconv.FormatUint(epoch, 10))
	resp, err := frontierClient.Do(req)
	if err != nil {
		return repl.Frontier{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8192))
	if err != nil {
		return repl.Frontier{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return repl.Frontier{}, fmt.Errorf("frontier: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return repl.DecodeFrontier(data)
}
