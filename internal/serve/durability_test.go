package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/rng"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
	"hpcpower/internal/wal"
)

// durableConfig pins the knobs that make recovery byte-identical: one
// ingest worker (apply order = LSN order) and a matching store shape
// across restarts.
func durableConfig() Config {
	cfg := DefaultConfig()
	cfg.IngestWorkers = 1
	return cfg
}

func durableStore() *tsdb.Store {
	return tsdb.New(tsdb.Config{Shards: 4, RingLen: 256})
}

// newDurableServer builds, recovers, and serves a durable server over
// dir. The caller owns shutdown.
func newDurableServer(t testing.TB, dir string, dcfg DurabilityConfig) (*Server, *httptest.Server) {
	t.Helper()
	dcfg.Dir = dir
	s, err := NewDurable(durableStore(), nil, durableConfig(), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// crash simulates a SIGKILL: no drain, no final snapshot — just drop
// the background machinery and abandon (not cleanly unlock) the dir
// lock, leaving disk exactly as a dead process would.
func crash(t testing.TB, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	d := s.dur
	if d.repl != nil {
		d.repl.stopStreams()
		d.repl.stopFollower()
	}
	d.stopOnce.Do(func() { close(d.stopc) })
	d.wg.Wait()
	if d.log != nil {
		d.log.Close()
	}
	d.lock.Abandon()
}

// analyticsDump serializes summary + every job body — the byte-identity
// oracle shared with scripts/crash_smoke.sh.
func analyticsDump(t testing.TB, url string) string {
	t.Helper()
	var b strings.Builder
	resp, body := get(t, url+"/v1/summary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %d %s", resp.StatusCode, body)
	}
	b.Write(body)
	resp, body = get(t, url+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs: %d %s", resp.StatusCode, body)
	}
	b.Write(body)
	var jobs struct {
		Jobs []uint64 `json:"jobs"`
	}
	if err := json.Unmarshal(body, &jobs); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	for _, id := range jobs.Jobs {
		resp, body = get(t, url+"/v1/jobs/"+strconv.FormatUint(id, 10)+"/power")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: %d %s", id, resp.StatusCode, body)
		}
		b.Write(body)
	}
	return b.String()
}

func stampedBatches(seed uint64, n int) []trace.SampleBatch {
	src := rng.New(seed)
	out := make([]trace.SampleBatch, n)
	for b := range out {
		k := int(src.Uint64()%5) + 1
		samples := make([]trace.PowerSample, k)
		for i := range samples {
			samples[i] = trace.PowerSample{
				Node:   int(src.Uint64() % 8),
				JobID:  1 + src.Uint64()%3,
				Unix:   1_700_000_000 + int64(src.Uint64()%1800),
				PowerW: 100 + 300*src.Float64(),
			}
		}
		out[b] = trace.SampleBatch{AgentID: "a1", Seq: uint64(b + 1), Samples: samples}
	}
	return out
}

func sendAll(t testing.TB, url string, batches []trace.SampleBatch) int64 {
	t.Helper()
	var samples int64
	for _, b := range batches {
		resp, body := postJSON(t, url+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seq %d: %d %s", b.Seq, resp.StatusCode, body)
		}
		samples += int64(len(b.Samples))
	}
	return samples
}

// TestDurableCrashRecoveryMatchesControl is the in-process version of
// scripts/crash_smoke.sh: a server that crashes mid-stream and recovers,
// with the shipper re-sending everything unacknowledged, must end up
// byte-identical to one that never crashed.
func TestDurableCrashRecoveryMatchesControl(t *testing.T) {
	batches := stampedBatches(3, 60)

	// Control: same durable pipeline, no crash.
	ctlServer, ctlTS := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { ctlTS.Close(); ctlServer.Close() }()
	total := sendAll(t, ctlTS.URL, batches)
	waitIngested(t, ctlServer, total)
	want := analyticsDump(t, ctlTS.URL)

	// Crash run: deliver the first 2/3, crash, recover, then redeliver a
	// generous overlapping suffix (at-least-once transport semantics).
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, DurabilityConfig{})
	k := 40
	var before int64
	for _, b := range batches[:k] {
		resp, _ := postJSON(t, ts1.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seq %d refused", b.Seq)
		}
		before += int64(len(b.Samples))
	}
	waitIngested(t, s1, before)
	crash(t, s1, ts1)

	s2, ts2 := newDurableServer(t, dir, DurabilityConfig{})
	defer func() { ts2.Close(); s2.Close() }()
	if got := s2.store.Ingested(); got != before {
		t.Fatalf("recovered %d samples, want %d", got, before)
	}
	for _, b := range batches[k-10:] { // overlap: last 10 redelivered
		b.Redelivery = b.Seq <= uint64(k)
		resp, _ := postJSON(t, ts2.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seq %d refused after recovery", b.Seq)
		}
	}
	waitIngested(t, s2, total)
	if got := analyticsDump(t, ts2.URL); got != want {
		t.Fatalf("recovered analytics differ from control\n got: %s\nwant: %s", got, want)
	}
}

// TestRecoverAcrossSnapshots: a graceful restart recovers from the final
// snapshot with nothing to replay; a crash after more traffic replays
// only the WAL tail past it.
func TestRecoverAcrossSnapshots(t *testing.T) {
	dir := t.TempDir()
	batches := stampedBatches(9, 30)

	s1, ts1 := newDurableServer(t, dir, DurabilityConfig{})
	var n1 int64
	for _, b := range batches[:20] {
		postJSON(t, ts1.URL+"/v1/samples", b)
		n1 += int64(len(b.Samples))
	}
	waitIngested(t, s1, n1)
	ts1.Close()
	s1.Close() // graceful: takes a final snapshot

	s2, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotFound {
		t.Fatal("graceful shutdown left no snapshot")
	}
	if rep.RecordsReplayed != 0 {
		t.Fatalf("replayed %d records after a clean shutdown snapshot", rep.RecordsReplayed)
	}
	if got := s2.store.Ingested(); got != n1 {
		t.Fatalf("snapshot restored %d samples, want %d", got, n1)
	}
	ts2 := httptest.NewServer(s2.Handler())
	var n2 int64
	for _, b := range batches[20:] {
		postJSON(t, ts2.URL+"/v1/samples", b)
		n2 += int64(len(b.Samples))
	}
	waitIngested(t, s2, n1+n2)
	crash(t, s2, ts2)

	s3, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rep.RecordsReplayed != int64(len(batches)-20) {
		t.Fatalf("replayed %d records, want %d", rep.RecordsReplayed, len(batches)-20)
	}
	if got := s3.store.Ingested(); got != n1+n2 {
		t.Fatalf("recovered %d samples, want %d", got, n1+n2)
	}
}

// TestRecoverTruncatesTornTail: garbage appended to the active segment
// (a torn final write) is truncated; every previously acked record
// survives.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	batches := stampedBatches(17, 12)
	s1, ts1 := newDurableServer(t, dir, DurabilityConfig{})
	total := sendAll(t, ts1.URL, batches)
	waitIngested(t, s1, total)
	crash(t, s1, ts1)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A partial frame: plausible length prefix, then EOF mid-body.
	f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 'x', 'y'})
	f.Close()

	s2, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep.TruncatedBytes == 0 {
		t.Fatal("torn tail not truncated")
	}
	if got := s2.store.Ingested(); got != total {
		t.Fatalf("recovered %d samples, want %d", got, total)
	}
}

// TestReadyzTransitions covers both 503 phases: before recovery
// completes, and during graceful drain.
func TestReadyzTransitions(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "recovering") {
		t.Fatalf("before recovery: %d %s", resp.StatusCode, body)
	}
	// Ingest must also refuse while not ready.
	resp, _ = postJSON(t, ts.URL+"/v1/samples", stampedBatches(1, 1)[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while recovering: %d", resp.StatusCode)
	}
	// Liveness stays 200 throughout.
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during recovery: %d", resp.StatusCode)
	}

	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("after recovery: %d %s", resp.StatusCode, body)
	}

	s.Close()
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("while draining: %d %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
}

// TestDurableBackpressureTombstones: a batch refused with 429 (queue
// full) is already in the WAL — the handler must tombstone it so replay
// never resurrects it, and the agent's re-send of the same sequence must
// be accepted. Uses a worker-less server so the full queue is
// deterministic, then recovers through the normal path.
func TestDurableBackpressureTombstones(t *testing.T) {
	dir := t.TempDir()
	dur, err := openDurability(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	dur.log = log
	cfg := durableConfig()
	cfg.QueueDepth = 1 // no workers drain it
	s := &Server{
		store: durableStore(),
		cfg:   cfg,
		dedup: tsdb.NewDeduper(tsdb.DedupConfig{}),
		dur:   dur,
	}
	s.metrics = newMetrics(func() int { return s.ingestQ.Len() })
	s.initAdmit()
	s.ready.Store(true)

	s.ingestQ.Push(queuedBatch{}) // occupy the only slot
	batch := trace.SampleBatch{
		AgentID: "a1", Seq: 1,
		Samples: []trace.PowerSample{{Node: 1, JobID: 7, Unix: 60, PowerW: 123}},
	}
	rec := httptest.NewRecorder()
	s.ingestDurable(rec, httptest.NewRequest(http.MethodPost, "/v1/samples", nil), batch)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: got %d, want 429", rec.Code)
	}
	if rec.Header().Get(HeaderOverCapacity) != "1" {
		t.Fatal("queue-full 429 must carry the over-capacity marker")
	}

	s.ingestQ.Pop() // free the slot; the agent retries the same sequence
	// Stand in for the missing workers on the retry only: ack the entry
	// so ingestDurable's applied-wait completes (without markDone, so
	// recovery still replays the record like a pre-apply crash).
	go func() {
		for {
			qb, ok := s.ingestQ.Pop()
			if !ok {
				return
			}
			if qb.resc != nil {
				qb.resc <- true
			}
		}
	}()
	rec = httptest.NewRecorder()
	s.ingestDurable(rec, httptest.NewRequest(http.MethodPost, "/v1/samples", nil), batch)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("retry after 429: got %d, want 202 (dedup mark not rolled back?)", rec.Code)
	}
	s.ingestQ.Close(true)

	// Crash before the (worker-less) apply: only the WAL has the data.
	log.Close()
	dur.lock.Abandon()

	s2, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep.Tombstoned != 1 {
		t.Fatalf("tombstoned %d records on replay, want 1", rep.Tombstoned)
	}
	if rep.RecordsReplayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the retry only)", rep.RecordsReplayed)
	}
	if got := s2.store.Ingested(); got != 1 {
		t.Fatalf("recovered %d samples, want exactly 1 — the 503'd copy must stay dead", got)
	}
	if js, ok := s2.store.JobPower(7); !ok || js.Samples != 1 {
		t.Fatalf("job 7 after recovery: %+v ok=%v", js, ok)
	}
}

// TestNewDurableFailFast: a missing, non-directory, or already-locked
// data dir is refused at construction with a descriptive error.
func TestNewDurableFailFast(t *testing.T) {
	if _, err := NewDurable(durableStore(), nil, durableConfig(),
		DurabilityConfig{Dir: filepath.Join(t.TempDir(), "nope")}); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("missing dir: %v", err)
	}

	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDurable(durableStore(), nil, durableConfig(),
		DurabilityConfig{Dir: file}); err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("non-dir: %v", err)
	}

	dir := t.TempDir()
	s1, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDurable(durableStore(), nil, durableConfig(),
		DurabilityConfig{Dir: dir}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("live lock: %v", err)
	}
	s1.dur.lock.Abandon() // die without cleanup: LOCK file stays behind

	// Stale lock (previous holder died): opens fine and reports it.
	s2, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rep.StaleLock {
		t.Fatal("stale lock not detected")
	}
}

// TestSnapshotSchedulerRuns: with an aggressive append trigger, ongoing
// ingest produces snapshots without any shutdown.
func TestSnapshotSchedulerRuns(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir, DurabilityConfig{
		SnapshotInterval: 50 * time.Millisecond,
		SnapshotEvery:    8,
	})
	defer func() { ts.Close(); s.Close() }()
	total := sendAll(t, ts.URL, stampedBatches(5, 40))
	waitIngested(t, s, total)
	deadline := time.Now().Add(5 * time.Second)
	for {
		snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
		if len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot written by the scheduler")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Metrics expose the wal_*/snapshot_* series.
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{"powserved_wal_appends_total", "powserved_snapshots_total", "powserved_recovery_records_replayed"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %s", want)
		}
	}
}

// Guard: the wal package's policy parser is what powserved's -fsync flag
// feeds; keep the three spellings working.
func TestSyncPolicySpellings(t *testing.T) {
	for _, s := range []string{"batch", "interval", "off"} {
		if _, err := wal.ParseSyncPolicy(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := wal.ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
