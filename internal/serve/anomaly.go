package serve

// Anomaly surface: GET /v1/anomalies serves the engine's event ring,
// active alerts, and per-job fingerprints; stream=1 upgrades to a
// long-lived NDJSON event feed (routed around the request timeout like
// the replication stream). The powserved_anomaly_* / powserved_alert_*
// families are emitted by the collectAnomaly collector, and /readyz
// carries a machine-readable detector block.

import (
	"encoding/json"
	"net/http"
	"strconv"

	"hpcpower/internal/anomaly"
	"hpcpower/internal/obs"
)

// anomalyEventLimit is the default (and maximum) event-list page; the
// ring holds more, selected with since_seq cursors.
const anomalyEventLimit = 256

// parseAnomalyFilter builds the ring filter from query parameters:
// job, node, rule, type, severity (minimum name), since (unix),
// since_seq, limit.
func parseAnomalyFilter(q map[string][]string) (anomaly.Filter, string) {
	get := func(k string) string {
		if v, ok := q[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	f := anomaly.Filter{Node: -1, Limit: anomalyEventLimit}
	if v := get("job"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil || id == 0 {
			return f, "bad job " + strconv.Quote(v)
		}
		f.Job = id
	}
	if v := get("node"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, "bad node " + strconv.Quote(v)
		}
		f.Node = n
	}
	f.Rule = get("rule")
	switch t := get("type"); t {
	case "", anomaly.EventFire, anomaly.EventResolve:
		f.Type = t
	default:
		return f, "bad type " + strconv.Quote(t) + " (want fire or resolve)"
	}
	if v := get("severity"); v != "" {
		lvl := anomaly.SeverityLevel(v)
		if lvl < 0 {
			return f, "bad severity " + strconv.Quote(v)
		}
		f.MinSeverity = lvl
	}
	if v := get("since"); v != "" {
		u, err := strconv.ParseInt(v, 10, 64)
		if err != nil || u < 0 {
			return f, "bad since " + strconv.Quote(v)
		}
		f.SinceUnix = u
	}
	if v := get("since_seq"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return f, "bad since_seq " + strconv.Quote(v)
		}
		f.SinceSeq = u
	}
	if v := get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > anomalyEventLimit {
			return f, "bad limit " + strconv.Quote(v) + " (1.." + strconv.Itoa(anomalyEventLimit) + ")"
		}
		f.Limit = n
	}
	return f, ""
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if s.anom == nil {
		errJSON(w, http.StatusNotImplemented, "anomaly detection is not enabled (-anomaly)")
		return
	}
	q := r.URL.Query()
	f, badParam := parseAnomalyFilter(q)
	if badParam != "" {
		errJSON(w, http.StatusBadRequest, "%s", badParam)
		return
	}
	switch {
	case q.Get("fingerprint") == "1":
		if f.Job == 0 {
			errJSON(w, http.StatusBadRequest, "fingerprint=1 needs job=<id>")
			return
		}
		fp, ok := s.anom.Fingerprint(f.Job)
		if !ok || fp.N == 0 {
			errJSON(w, http.StatusNotFound, "no fingerprint for job %d", f.Job)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"job": f.Job, "fingerprint": fp})
	case q.Get("active") == "1":
		alerts := s.anom.Active()
		if f.Job != 0 {
			kept := alerts[:0]
			for _, a := range alerts {
				if a.Job == f.Job {
					kept = append(kept, a)
				}
			}
			alerts = kept
		}
		if alerts == nil {
			alerts = []anomaly.Alert{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"active": alerts})
	case q.Get("stream") == "1":
		s.streamAnomalies(w, r, f)
	default:
		events := s.anom.Events(f)
		writeJSON(w, http.StatusOK, map[string]any{"events": events, "count": len(events)})
	}
}

// streamAnomalies serves the live NDJSON event feed: first the ring
// events the filter selects (oldest-first, so since_seq cursors resume
// without a gap), then every matching transition as it happens, until
// the client disconnects.
func (s *Server) streamAnomalies(w http.ResponseWriter, r *http.Request, f anomaly.Filter) {
	fl, ok := w.(http.Flusher)
	if !ok {
		errJSON(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	// Subscribe before the backlog read so no event falls between them;
	// duplicates across the seam are filtered by sequence number below.
	subID, ch := s.anom.Subscribe(0)
	defer s.anom.Unsubscribe(subID)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	backlog := s.anom.Events(f) // newest-first
	var lastSeq uint64
	for i := len(backlog) - 1; i >= 0; i-- {
		if err := enc.Encode(&backlog[i]); err != nil {
			return
		}
		lastSeq = backlog[i].Seq
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			if ev.Seq <= lastSeq || !f.Match(&ev) {
				continue
			}
			if err := enc.Encode(&ev); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// anomalyReadyz is the /readyz detector block.
func (s *Server) anomalyReadyz() map[string]any {
	st := s.anom.Snapshot()
	return map[string]any{
		"enabled":          true,
		"rules":            st.Rules,
		"jobs":             st.Jobs,
		"active_alerts":    st.Active,
		"fired":            st.Fired,
		"resolved":         st.Resolved,
		"delivering":       s.anom.Delivering(),
		"last_sample_unix": st.LastSampleUnix,
		"sinks":            s.anom.SinkHealths(),
	}
}

// collectAnomaly emits the powserved_anomaly_* (detector throughput)
// and powserved_alert_* (alert pipeline) families. Per-family loops
// keep same-name series contiguous, as the exposition format requires.
func (s *Server) collectAnomaly(e *obs.Exposition) {
	st := s.anom.Snapshot()
	e.Gauge("powserved_anomaly_enabled", 1)
	e.Gauge("powserved_anomaly_rules", float64(st.Rules))
	e.Gauge("powserved_anomaly_jobs", float64(st.Jobs))
	e.Counter("powserved_anomaly_samples_total", float64(st.Samples))
	e.Counter("powserved_anomaly_batches_total", float64(st.Batches))
	e.Counter("powserved_anomaly_evals_total", float64(st.Evals))
	e.Gauge("powserved_anomaly_last_sample_unix", float64(st.LastSampleUnix))

	rules := s.anom.Rules()
	for i := range rules {
		e.CounterL("powserved_alert_fired_total", "rule", rules[i].Name, float64(st.FiredByRule[i]))
	}
	for i := range rules {
		e.CounterL("powserved_alert_resolved_total", "rule", rules[i].Name, float64(st.ResolvedByRule[i]))
	}
	e.Gauge("powserved_alert_active", float64(st.Active))
	e.Counter("powserved_alert_suppressed_total", float64(st.Suppressed))
	e.Counter("powserved_alert_events_total", float64(st.Events))
	e.Counter("powserved_alert_events_evicted_total", float64(st.EventsEvicted))
	e.Gauge("powserved_alert_delivering", float64(b2i(s.anom.Delivering())))

	sinks := s.anom.SinkHealths()
	for i := range sinks {
		e.GaugeL("powserved_alert_sink_healthy", "sink", sinks[i].Name, float64(b2i(sinks[i].Healthy)))
	}
	for i := range sinks {
		e.CounterL("powserved_alert_sink_delivered_total", "sink", sinks[i].Name, float64(sinks[i].Delivered))
	}
	for i := range sinks {
		e.CounterL("powserved_alert_sink_errors_total", "sink", sinks[i].Name, float64(sinks[i].Errors))
	}
	for i := range sinks {
		e.CounterL("powserved_alert_sink_retries_total", "sink", sinks[i].Name, float64(sinks[i].Retries))
	}
	for i := range sinks {
		e.CounterL("powserved_alert_sink_dropped_total", "sink", sinks[i].Name, float64(sinks[i].Dropped))
	}
	for i := range sinks {
		e.GaugeL("powserved_alert_sink_queued", "sink", sinks[i].Name, float64(sinks[i].Queued))
	}
}
