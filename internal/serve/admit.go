package serve

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"hpcpower/internal/admit"
	"hpcpower/internal/obs"
)

// Overload-shed responses. 429 over_capacity is the "slow down, retry
// here" signal — distinct from 503 storage_degraded ("disk trouble") and
// 503 not_primary ("rotate to the primary"): the shipper stays put and
// retries after the hinted wait instead of spilling or rotating.
const (
	// CodeOverCapacity is the machine-readable error code of every
	// admission-control refusal.
	CodeOverCapacity = "over_capacity"
	// HeaderOverCapacity marks a 429 as an admission shed, so shippers
	// can tell it from an intermediary's 429.
	HeaderOverCapacity = "X-Over-Capacity"
	// HeaderRetryAfterMs carries the sub-second retry hint (integer
	// milliseconds) that the coarse Retry-After header cannot express.
	HeaderRetryAfterMs = "X-Retry-After-Ms"
)

// forcedFlushMinInterval spaces the memory-pressure block flushes so a
// node stuck above the watermark does not churn tiny blocks.
const forcedFlushMinInterval = 5 * time.Second

// admission bundles the server's admission-control state: the AIMD
// ingest limiter, the priority gate, the per-agent rate buckets, and
// the memory-watermark degraded flag.
type admission struct {
	cfg     admit.Config // defaults applied
	limiter *admit.Limiter
	gate    *admit.Gate
	buckets *admit.Buckets

	memDegraded    atomic.Bool
	memTransitions atomic.Uint64
	forcedFlushes  atomic.Uint64
	lastFlush      atomic.Int64 // unix nanos of the last forced flush
}

// initAdmit builds the admission layer and the CoDel ingest queue. Must
// run before workers start and before the first scrape.
func (s *Server) initAdmit() {
	acfg := s.cfg.Admit.WithDefaults()
	s.adm = &admission{
		cfg:     acfg,
		limiter: admit.NewLimiter(acfg, nil),
		buckets: admit.NewBuckets(acfg, nil),
	}
	s.adm.gate = admit.NewGate(acfg, s.pressure)
	s.ingestQ = admit.NewQueue(admit.QueueConfig[queuedBatch]{
		Target:   acfg.Target,
		Interval: acfg.Interval,
		Capacity: s.cfg.QueueDepth,
		OnShed:   s.onIngestShed,
		SizeOf:   batchFootprint,
		Observe:  func(d time.Duration) { s.metrics.admitSojourn.ObserveDuration(d) },
	})
	s.metrics.reg.AddCollector(s.collectAdmit)
}

// batchFootprint estimates a queued batch's heap bytes for the memory
// watermark: slice/struct headers plus per-sample storage.
func batchFootprint(qb queuedBatch) int {
	return 128 + 48*len(qb.samples) + len(qb.agent) + len(qb.trace)
}

// pressure computes the load level the priority gate sheds on:
// critical when the memory watermark is crossed, elevated when the
// ingest limiter has backed off or the queue is half full.
func (s *Server) pressure() int {
	if s.adm.memDegraded.Load() {
		return admit.PressureCritical
	}
	if s.adm.limiter.Saturated() || 2*s.ingestQ.Len() >= s.ingestQ.Cap() {
		return admit.PressureElevated
	}
	return admit.PressureNone
}

// memBytes is the accounted memory of everything admission can bound:
// head rings and job state, the ingest queue, and the dedup windows.
func (s *Server) memBytes() int64 {
	return s.store.MemoryBytes() + s.ingestQ.Bytes() + s.dedup.MemoryBytes()
}

// write429 answers an admission shed: 429 over_capacity with both
// retry hints. hint <= 0 derives one from queue occupancy, so an idle
// refusal asks the shipper back almost immediately while a backed-up
// one pushes the retry storm out.
func (s *Server) write429(w http.ResponseWriter, reason string, hint time.Duration) {
	if hint <= 0 {
		occ := float64(s.ingestQ.Len()) / float64(s.ingestQ.Cap())
		hint = 50*time.Millisecond + time.Duration(occ*float64(time.Second))
	}
	secs := int((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(HeaderRetryAfterMs, strconv.FormatInt(hint.Milliseconds(), 10))
	w.Header().Set(HeaderOverCapacity, "1")
	errJSONCode(w, http.StatusTooManyRequests, CodeOverCapacity, "over capacity: %s", reason)
}

// overCapacity counts and answers an admission shed.
func (s *Server) overCapacity(w http.ResponseWriter, reason string, hint time.Duration) {
	s.metrics.admitShed.With(reason).Inc()
	s.write429(w, reason, hint)
}

// gated wraps a handler in the priority gate: query class sheds at
// critical pressure (memory watermark), admin class already at elevated
// pressure, and both respect their concurrency quotas.
func (s *Server) gated(c admit.Class, reason string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.adm.gate.Acquire(c)
		if !ok {
			s.overCapacity(w, reason, 0)
			return
		}
		defer release()
		h(w, r)
	}
}

// onIngestShed is the CoDel queue's shed callback: the entry was WAL'd
// (durable path) but will never be applied, so cancel it exactly like
// the queue-full path — tombstone before markDone, then free the
// sequence number — and release the waiting handler with "not applied".
//
// Runs under the queue lock. It must not take applyMu: the handler that
// pushed this entry holds an applyMu read lock while calling Push, so
// waiting for applyMu here (with a snapshot writer pending) would
// deadlock the ingest path. Doing the bookkeeping outside applyMu is
// safe: a snapshot cut between the shed and the tombstone write can at
// worst make replay re-apply a never-acked record, which the dedup
// index then settles as a duplicate of the agent's retry.
func (s *Server) onIngestShed(qb queuedBatch) {
	s.metrics.batchesRejected.Add(1)
	s.metrics.admitShed.With("codel").Inc()
	if d := s.dur; d != nil && qb.lsn != 0 {
		d.markTombstoned(qb.lsn)
		tr := d.tracker.Load()
		if tlsn, terr := d.log.AppendTombstone(qb.lsn); terr == nil {
			tr.markDone(tlsn)
		}
		tr.markDone(qb.lsn)
	}
	if qb.agent != "" {
		s.dedup.Forget(qb.agent, qb.seq)
	}
	if qb.resc != nil {
		qb.resc <- false
	}
}

// startMemLoop launches the memory-watermark monitor when one is
// configured. It shares flushStop/flushWG with the block-flush loop.
func (s *Server) startMemLoop() {
	if s.adm.cfg.MemWatermark <= 0 {
		return
	}
	s.flushWG.Add(1)
	go func() {
		defer s.flushWG.Done()
		t := time.NewTicker(s.adm.cfg.Step)
		defer t.Stop()
		for {
			select {
			case <-s.flushStop:
				return
			case <-t.C:
				s.memEval(time.Now())
			}
		}
	}()
}

// memEval runs one watermark check with hysteresis: degrade at or
// above MemWatermark, clear only below MemResume. While degraded it
// forces an early head→block flush (rate-limited) so sealed windows
// move to disk instead of waiting out the flush grace period.
func (s *Server) memEval(now time.Time) {
	a := s.adm
	mem := s.memBytes()
	degraded := a.memDegraded.Load()
	switch {
	case !degraded && mem >= a.cfg.MemWatermark:
		a.memDegraded.Store(true)
		a.memTransitions.Add(1)
		s.metrics.logger.Warn("memory watermark crossed; shedding ingest",
			"mem_bytes", mem, "watermark", a.cfg.MemWatermark)
		degraded = true
	case degraded && mem < a.cfg.MemResume:
		a.memDegraded.Store(false)
		a.memTransitions.Add(1)
		s.metrics.logger.Info("memory pressure cleared",
			"mem_bytes", mem, "resume", a.cfg.MemResume)
		degraded = false
	}
	if degraded && s.hasBlocks() && s.ready.Load() && !s.draining.Load() {
		last := a.lastFlush.Load()
		if now.UnixNano()-last >= int64(forcedFlushMinInterval) &&
			a.lastFlush.CompareAndSwap(last, now.UnixNano()) {
			a.forcedFlushes.Add(1)
			start := time.Now()
			if _, err := s.store.FlushBlocks(now.Unix()); err != nil {
				s.metrics.logger.Warn("memory-pressure flush failed", "err", err)
			} else {
				s.metrics.blockFlush.ObserveDuration(time.Since(start))
			}
		}
	}
}

// collectAdmit emits the admission and memory gauges on every scrape.
func (s *Server) collectAdmit(e *obs.Exposition) {
	a := s.adm
	e.Gauge("powserved_admit_limit", float64(a.limiter.Limit()))
	e.Gauge("powserved_admit_inflight", float64(a.limiter.Inflight()))
	acquired, refused, shrinks, grows := a.limiter.Stats()
	e.Counter("powserved_admit_acquired_total", float64(acquired))
	e.Counter("powserved_admit_refused_total", float64(refused))
	e.Counter("powserved_admit_limit_shrinks_total", float64(shrinks))
	e.Counter("powserved_admit_limit_grows_total", float64(grows))
	shed, delivered := s.ingestQ.Stats()
	e.Counter("powserved_admit_queue_shed_total", float64(shed))
	e.Counter("powserved_admit_queue_delivered_total", float64(delivered))
	e.Gauge("powserved_admit_queue_bytes", float64(s.ingestQ.Bytes()))
	e.Gauge("powserved_admit_agents", float64(a.buckets.Agents()))
	e.Counter("powserved_admit_agent_refused_total", float64(a.buckets.Refused()))
	qShed, adShed := a.gate.ShedCounts()
	e.Counter("powserved_admit_gate_query_shed_total", float64(qShed))
	e.Counter("powserved_admit_gate_admin_shed_total", float64(adShed))
	e.Gauge("powserved_mem_bytes", float64(s.memBytes()))
	e.Gauge("powserved_mem_watermark_bytes", float64(a.cfg.MemWatermark))
	var deg float64
	if a.memDegraded.Load() {
		deg = 1
	}
	e.Gauge("powserved_mem_degraded", deg)
	e.Counter("powserved_mem_transitions_total", float64(a.memTransitions.Load()))
	e.Counter("powserved_mem_forced_flushes_total", float64(a.forcedFlushes.Load()))
}
