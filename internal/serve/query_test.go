package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/block"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
)

const qWindow = 7200

// newBlockServer builds a non-durable server with a block store attached
// (manual flush only — BlockFlushInterval stays 0 in tests).
func newBlockServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	store := tsdb.New(tsdb.Config{Shards: 4, RingLen: 1024})
	bs, err := block.Open(block.Config{Dir: t.TempDir(), WindowSeconds: qWindow})
	if err != nil {
		t.Fatal(err)
	}
	store.AttachBlocks(bs)
	s := New(store, nil, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// blockBatches spans two whole 2h windows of per-minute samples plus a
// short head-only tail in the third, for four nodes.
func blockBatches() []trace.SampleBatch {
	var samples []trace.PowerSample
	add := func(from, to int64) {
		for ts := from; ts < to; ts += 60 {
			for n := 0; n < 4; n++ {
				samples = append(samples, trace.PowerSample{
					Node: n, JobID: uint64(n + 1), Unix: ts,
					PowerW: 100 + 10*float64(n) + float64(ts%600)/100,
				})
			}
		}
	}
	add(qWindow, 3*qWindow)       // windows 1 and 2, sealed by any flush
	add(3*qWindow, 3*qWindow+600) // tail: 10 minutes into window 3
	var out []trace.SampleBatch
	for off := 0; off < len(samples); off += 120 {
		end := off + 120
		if end > len(samples) {
			end = len(samples)
		}
		out = append(out, trace.SampleBatch{
			AgentID: "blk", Seq: uint64(len(out) + 1), Samples: samples[off:end],
		})
	}
	return out
}

func TestQueryEndpoints(t *testing.T) {
	s, ts := newBlockServer(t, DefaultConfig())
	batches := blockBatches()
	total := sendAll(t, ts.URL, batches)
	waitIngested(t, s, total)

	// Seal windows 1 and 2 by hand (historical timestamps — the admin
	// flush with a wall-clock cut is exercised by the crash test below).
	sealed, err := s.store.FlushBlocks(3 * qWindow)
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 2 {
		t.Fatalf("sealed %d windows, want 2", sealed)
	}
	if _, err := s.store.Blocks().CompactPending(); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/v1/query/nodes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nodes: %d %s", resp.StatusCode, body)
	}
	var nodes struct {
		Nodes    []int `json:"nodes"`
		Frontier int64 `json:"frontier"`
	}
	if err := json.Unmarshal(body, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes.Nodes) != 4 || nodes.Frontier != 3*qWindow {
		t.Fatalf("nodes %v frontier %d, want 4 nodes frontier %d", nodes.Nodes, nodes.Frontier, 3*qWindow)
	}

	// Merged range read: both block windows plus the head tail.
	resp, body = get(t, ts.URL+"/v1/query/range?node=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range: %d %s", resp.StatusCode, body)
	}
	var rr struct {
		Node     int          `json:"node"`
		Frontier int64        `json:"frontier"`
		Points   []tsdb.Point `json:"points"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	wantPoints := 2*(qWindow/60) + 10
	if len(rr.Points) != wantPoints {
		t.Fatalf("range returned %d points, want %d", len(rr.Points), wantPoints)
	}
	for i := 1; i < len(rr.Points); i++ {
		if rr.Points[i].Unix <= rr.Points[i-1].Unix {
			t.Fatalf("range not time-ordered at %d", i)
		}
	}

	// Aggregate pull at the 5m tier.
	resp, body = get(t, ts.URL+"/v1/query/range?node=2&from="+strconv.Itoa(qWindow)+"&to="+strconv.Itoa(3*qWindow+599)+"&step=300")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("agg: %d %s", resp.StatusCode, body)
	}
	var ar struct {
		Step   int64            `json:"step"`
		Points []block.AggPoint `json:"points"`
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	wantBuckets := (2*qWindow + 600) / 300
	if len(ar.Points) != wantBuckets {
		t.Fatalf("agg returned %d buckets, want %d", len(ar.Points), wantBuckets)
	}
	for _, a := range ar.Points {
		if a.Count != 5 { // five per-minute samples per 5m bucket
			t.Fatalf("bucket %d count %d, want 5", a.T, a.Count)
		}
	}

	// Distribution covers every sample exactly once, blocks + head.
	resp, body = get(t, ts.URL+"/v1/query/distribution")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distribution: %d %s", resp.StatusCode, body)
	}
	var dr struct {
		Distribution struct {
			N int `json:"n"`
		} `json:"distribution"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if int64(dr.Distribution.N) != total {
		t.Fatalf("distribution n=%d, want %d", dr.Distribution.N, total)
	}

	// Parameter validation.
	for _, path := range []string{
		"/v1/query/range",                 // missing node
		"/v1/query/range?node=x",          // non-numeric
		"/v1/query/range?node=1&from=abc", // bad from
		"/v1/query/range?node=1&step=0",   // non-positive step
	} {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestAdminFlushWithoutBlocks(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	resp, err := http.Post(ts.URL+"/v1/admin/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("flush without blocks: %d, want 503", resp.StatusCode)
	}
}

// newBlockDurableServer is newDurableServer plus an attached block store
// under dir/blocks, with snapshots pushed out of the way so tests control
// exactly when (and whether) one is taken.
func newBlockDurableServer(t testing.TB, dir string) (*Server, *httptest.Server) {
	t.Helper()
	walDir := filepath.Join(dir, "wal")
	blkDir := filepath.Join(dir, "blocks")
	for _, d := range []string{walDir, blkDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	store := durableStore()
	bs, err := block.Open(block.Config{Dir: blkDir, WindowSeconds: qWindow})
	if err != nil {
		t.Fatal(err)
	}
	store.AttachBlocks(bs)
	s, err := NewDurable(store, nil, durableConfig(), DurabilityConfig{
		Dir:              walDir,
		SnapshotInterval: time.Hour,
		SnapshotEvery:    1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

func adminFlush(t testing.TB, url string) flushResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/admin/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fr flushResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin flush: %d", resp.StatusCode)
	}
	return fr
}

// queryDump serializes the whole query surface — the byte-identity
// oracle for block-store recovery.
func queryDump(t testing.TB, url string) string {
	t.Helper()
	var b strings.Builder
	resp, body := get(t, url+"/v1/query/nodes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nodes: %d %s", resp.StatusCode, body)
	}
	b.Write(body)
	var nodes struct {
		Nodes []int `json:"nodes"`
	}
	if err := json.Unmarshal(body, &nodes); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes.Nodes {
		for _, q := range []string{"", "&step=300", "&step=3600"} {
			resp, body = get(t, url+"/v1/query/range?node="+strconv.Itoa(n)+q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("range node %d %q: %d %s", n, q, resp.StatusCode, body)
			}
			b.Write(body)
		}
	}
	resp, body = get(t, url+"/v1/query/distribution")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distribution: %d %s", resp.StatusCode, body)
	}
	b.Write(body)
	return b.String()
}

func rawBlockFiles(t testing.TB, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "blocks", "raw-*.blk"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestCrashBetweenFlushAndSnapshot is the satellite regression: a server
// killed after sealing blocks but before any snapshot replays its whole
// WAL on restart. The frontier re-derived from the block files must keep
// the replayed samples out of the block store (no re-flush, no
// double-serve), and every read must come back byte-identical to a
// control that never crashed.
func TestCrashBetweenFlushAndSnapshot(t *testing.T) {
	batches := blockBatches()

	ctl, ctlTS := newBlockDurableServer(t, t.TempDir())
	defer func() { ctlTS.Close(); ctl.Close() }()
	total := sendAll(t, ctlTS.URL, batches)
	waitIngested(t, ctl, total)
	adminFlush(t, ctlTS.URL)
	wantAnalytics := analyticsDump(t, ctlTS.URL)
	wantQueries := queryDump(t, ctlTS.URL)

	dir := t.TempDir()
	s1, ts1 := newBlockDurableServer(t, dir)
	sendAll(t, ts1.URL, batches)
	waitIngested(t, s1, total)
	fr := adminFlush(t, ts1.URL)
	if fr.Sealed == 0 {
		t.Fatal("flush sealed nothing — test is vacuous")
	}
	filesBefore := rawBlockFiles(t, dir)
	// SIGKILL between flush and snapshot: snapshots are configured out of
	// the way, so the WAL still describes every sample ever ingested.
	crash(t, s1, ts1)

	s2, ts2 := newBlockDurableServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()
	if got := s2.store.Ingested(); got != total {
		t.Fatalf("recovery replayed %d samples, want %d", got, total)
	}
	if f := s2.store.BlockFrontier(); f != fr.Frontier {
		t.Fatalf("recovered frontier %d, want %d", f, fr.Frontier)
	}
	// Replay rebuilt ring points below the frontier; a re-flush must find
	// nothing to seal and the file set must be untouched.
	fr2 := adminFlush(t, ts2.URL)
	if fr2.Sealed != 0 {
		t.Fatalf("post-recovery flush sealed %d windows, want 0", fr2.Sealed)
	}
	filesAfter := rawBlockFiles(t, dir)
	if len(filesAfter) != len(filesBefore) {
		t.Fatalf("raw block files changed across crash: %d → %d", len(filesBefore), len(filesAfter))
	}
	if got := analyticsDump(t, ts2.URL); got != wantAnalytics {
		t.Fatalf("recovered analytics differ from control\n got: %s\nwant: %s", got, wantAnalytics)
	}
	if got := queryDump(t, ts2.URL); got != wantQueries {
		t.Fatalf("recovered query surface differs from control")
	}
}

// TestSnapshotAfterFlushRecovery covers the other interleaving: the
// snapshot lands after the flush and records the frontier, so recovery
// restores store state without replay and still refuses to re-seal.
func TestSnapshotAfterFlushRecovery(t *testing.T) {
	batches := blockBatches()
	dir := t.TempDir()
	s1, ts1 := newBlockDurableServer(t, dir)
	total := sendAll(t, ts1.URL, batches)
	waitIngested(t, s1, total)
	fr := adminFlush(t, ts1.URL)
	want := queryDump(t, ts1.URL)
	if err := s1.dur.snapshotOnce(s1); err != nil {
		t.Fatal(err)
	}
	crash(t, s1, ts1)

	s2, ts2 := newBlockDurableServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()
	if f := s2.store.BlockFrontier(); f != fr.Frontier {
		t.Fatalf("frontier %d, want %d", f, fr.Frontier)
	}
	if fr2 := adminFlush(t, ts2.URL); fr2.Sealed != 0 {
		t.Fatalf("flush after snapshot recovery sealed %d, want 0", fr2.Sealed)
	}
	if got := queryDump(t, ts2.URL); got != want {
		t.Fatalf("query surface differs after snapshot recovery")
	}
}
