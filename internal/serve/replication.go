package serve

// Replication wiring: every durable server is a replication-capable
// node. A primary serves its WAL as a CRC-framed stream
// (GET /v1/repl/stream), hands out bootstrap snapshots
// (GET /v1/repl/snapshot), and collects follower acknowledgements
// (POST /v1/repl/ack). A follower runs a pull loop (internal/repl)
// that replays the stream through applyReplicated — local WAL append,
// dedup mark, TSDB apply — so its analytics track the primary
// byte-for-byte, and serves read-only queries meanwhile.
//
// Failover is epoch-fenced: POST /v1/promote stops the pull loop and
// bumps the fsynced epoch past every epoch the primary ever reported.
// Shippers carry the highest epoch they have seen in X-Repl-Epoch, so
// the first write that reaches a stale primary fences it — it answers
// 409 with code "stale_epoch" from then on, and the shipper fails over.

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hpcpower/internal/obs"
	"hpcpower/internal/repl"
	"hpcpower/internal/wal"
)

// Replication roles.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// Replication headers. X-Repl-Epoch rides on every ingest and
// replication exchange in both directions — it is how fencing
// information propagates without a coordination service.
const (
	HeaderReplEpoch       = "X-Repl-Epoch"
	HeaderReplRole        = "X-Repl-Role"
	HeaderReplFenced      = "X-Repl-Fenced"
	HeaderReplSnapshotLSN = "X-Repl-Snapshot-LSN"
	// HeaderReplLease marks a 503 from a primary whose election lease
	// has lapsed ("expired"): it cannot safely ack, and the shipper
	// should try another node rather than wait in place.
	HeaderReplLease = "X-Repl-Lease"
)

// Machine-readable error codes carried in the JSON error body.
const (
	// CodeStaleEpoch: this node was a primary but a follower has been
	// promoted past it; it refuses writes permanently (409).
	CodeStaleEpoch = "stale_epoch"
	// CodeNotPrimary: this node is a read-only follower (503).
	CodeNotPrimary = "not_primary"
	// CodeBootstrapRequired: the requested stream position was reaped;
	// the follower must install a snapshot first (410).
	CodeBootstrapRequired = "bootstrap_required"
	// CodeNoLease: this node believes it is primary but its election
	// lease has lapsed — it cannot prove it has not been superseded, so
	// it refuses to ack until a quorum round renews the lease (503).
	CodeNoLease = "no_lease"
)

// ReplicationConfig configures a durable server's replication role.
// The zero value (and a nil pointer in DurabilityConfig) means a
// standalone primary — always streamable, never following.
type ReplicationConfig struct {
	// Role is RolePrimary (default) or RoleFollower.
	Role string
	// PrimaryURL is the primary's base URL; required for RoleFollower.
	PrimaryURL string
	// FollowerID names this follower in the primary's registry and reap
	// holds. Defaults to "follower".
	FollowerID string
	// EpochFile is the fsynced fencing-epoch file. Defaults to
	// <Dir>/EPOCH.
	EpochFile string
	// SyncAck makes a primary acknowledge ingest (202) only after every
	// registered follower has durably applied the batch — semi-sync
	// replication: a promoted follower already holds everything the
	// shipper saw acked. With no follower registered there is no wait.
	SyncAck bool
	// SyncAckTimeout bounds the SyncAck wait. 0 means 5 s. On timeout
	// the batch is durable locally but unacknowledged (500), so the
	// shipper re-sends and the dedup index absorbs the retry.
	SyncAckTimeout time.Duration
	// HeartbeatEvery is the stream heartbeat cadence. 0 means 500 ms.
	HeartbeatEvery time.Duration
	// AckEvery is the follower acknowledgement cadence. 0 means 200 ms.
	AckEvery time.Duration
	// StallTimeout kills a follower's stream connection that delivers
	// nothing for this long (asymmetric partitions). 0 means 5 s.
	StallTimeout time.Duration
	// Logf, if set, receives one line per notable replication event.
	Logf func(format string, args ...any)
}

func (c *ReplicationConfig) withDefaults(dir string) (ReplicationConfig, error) {
	var r ReplicationConfig
	if c != nil {
		r = *c
	}
	switch r.Role {
	case "":
		r.Role = RolePrimary
	case RolePrimary, RoleFollower:
	default:
		return r, fmt.Errorf("serve: unknown replication role %q (want %q or %q)", r.Role, RolePrimary, RoleFollower)
	}
	if r.Role == RoleFollower && r.PrimaryURL == "" {
		return r, fmt.Errorf("serve: replication role %q needs a primary URL", RoleFollower)
	}
	if r.FollowerID == "" {
		r.FollowerID = "follower"
	}
	if r.EpochFile == "" {
		r.EpochFile = filepath.Join(dir, "EPOCH")
	}
	if r.SyncAckTimeout <= 0 {
		r.SyncAckTimeout = 5 * time.Second
	}
	if r.Logf == nil {
		r.Logf = func(string, ...any) {}
	}
	return r, nil
}

// replState is a durable server's replication state: role, fencing
// epoch, the stream source (serving followers when primary), and the
// pull loop (when follower).
type replState struct {
	cfg    ReplicationConfig
	epoch  *repl.EpochFile
	source *repl.Source

	mu       sync.Mutex
	follower *repl.Follower     // non-nil while the pull loop runs
	lastFS   repl.FollowerStats // survives follower.Stop (promotion)

	isFollower atomic.Bool
	fenced     atomic.Bool
	fencedBy   atomic.Uint64 // highest peer epoch that fenced us
	promotions atomic.Int64

	// upstreamAtPromote is the highest upstream LSN this node had
	// durably applied when it was (last) promoted — the divergence
	// point it serves at /v1/repl/frontier so a deposed primary knows
	// where to truncate its WAL. Seeded at Recover for a node that
	// boots primary after having followed.
	upstreamAtPromote atomic.Uint64

	// hintMu guards the primary hint (best-known primary URL, served
	// in not_primary bodies) and the follower pull loop's live target.
	hintMu         sync.Mutex
	primaryHintURL string
	activeUpstream string

	// rejoining serializes the automatic-rejoin goroutine; rejoins and
	// divergedRecords feed /metrics.
	rejoining       atomic.Bool
	rejoins         atomic.Int64
	divergedRecords atomic.Int64

	// replApplied is the highest primary LSN durably applied locally
	// (follower side); reconnects resume just after it.
	replApplied atomic.Uint64

	// bootExtras are primary LSNs above the bootstrap snapshot's
	// watermark that the installed image already contains; the stream
	// will deliver them again and the apply path must skip them.
	bootMu     sync.Mutex
	bootExtras map[uint64]struct{}

	// streamStop ends every in-flight stream connection — closed before
	// graceful HTTP shutdown, which otherwise waits out the streams.
	streamStop chan struct{}
	streamOnce sync.Once

	// onSend receives each catch-up burst's record count (primary side).
	// Set once by NewDurable before the server accepts connections.
	onSend func(records int64)
}

func newReplState(cfg ReplicationConfig, ep *repl.EpochFile, d *durability) *replState {
	rs := &replState{
		cfg:        cfg,
		epoch:      ep,
		bootExtras: map[uint64]struct{}{},
		streamStop: make(chan struct{}),
	}
	rs.isFollower.Store(cfg.Role == RoleFollower)
	rs.primaryHintURL = cfg.PrimaryURL
	rs.source = repl.NewSource(repl.SourceConfig{
		Epoch: ep.Epoch,
		Read:  d.readForRepl,
		Hold: func(id string, lsn uint64) {
			if d.log != nil {
				d.log.SetReapHold(id, lsn)
			}
		},
		HeartbeatEvery: cfg.HeartbeatEvery,
		ObserveSend: func(records int64) {
			if rs.onSend != nil {
				rs.onSend(records)
			}
		},
	})
	return rs
}

func (rs *replState) role() string {
	if rs.isFollower.Load() {
		return RoleFollower
	}
	return RolePrimary
}

// primaryHint is the best-known primary URL, included in not_primary
// error bodies so shippers re-route directly instead of probing.
func (rs *replState) primaryHint() string {
	rs.hintMu.Lock()
	defer rs.hintMu.Unlock()
	return rs.primaryHintURL
}

func (rs *replState) setPrimaryHint(url string) {
	if url == "" {
		return
	}
	rs.hintMu.Lock()
	rs.primaryHintURL = url
	rs.hintMu.Unlock()
}

// currentUpstream is the URL the pull loop is streaming from ("" when
// not following).
func (rs *replState) currentUpstream() string {
	rs.hintMu.Lock()
	defer rs.hintMu.Unlock()
	return rs.activeUpstream
}

// notPrimary writes the role header and a not_primary JSON error that
// carries the primary hint when one is known.
func (rs *replState) notPrimary(w http.ResponseWriter, msg string) {
	w.Header().Set(HeaderReplRole, RoleFollower)
	body := map[string]string{"error": msg, "code": CodeNotPrimary}
	if hint := rs.primaryHint(); hint != "" {
		body["primary"] = hint
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(body)
}

// observeRequestEpoch folds a peer-reported epoch into the fencing
// state: a primary that sees a higher epoch than its own has been
// superseded by a promotion and fences itself — stickily, until
// operator intervention (the process is restarted as a follower).
func (rs *replState) observeRequestEpoch(r *http.Request) {
	v := r.Header.Get(HeaderReplEpoch)
	if v == "" {
		return
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil || e <= rs.epoch.Epoch() {
		return
	}
	if rs.isFollower.Load() {
		return // a follower lagging the primary's epoch is normal
	}
	storeMax(&rs.fencedBy, e)
	if !rs.fenced.Swap(true) {
		rs.cfg.Logf("repl: fenced at epoch %d by peer epoch %d — refusing writes", rs.epoch.Epoch(), e)
	}
}

func (rs *replState) setBootExtras(extras []uint64) {
	m := make(map[uint64]struct{}, len(extras))
	for _, e := range extras {
		m[e] = struct{}{}
	}
	rs.bootMu.Lock()
	rs.bootExtras = m
	rs.bootMu.Unlock()
}

func (rs *replState) isBootExtra(plsn uint64) bool {
	rs.bootMu.Lock()
	defer rs.bootMu.Unlock()
	_, ok := rs.bootExtras[plsn]
	return ok
}

// bootExtraList returns the extras above lsn, sorted-free (callers
// only persist them).
func (rs *replState) bootExtraList(above uint64) []uint64 {
	rs.bootMu.Lock()
	defer rs.bootMu.Unlock()
	var out []uint64
	for e := range rs.bootExtras {
		if e > above {
			out = append(out, e)
		}
	}
	return out
}

// followerStats returns the pull loop's counters, falling back to the
// last snapshot taken before the loop was stopped by a promotion.
func (rs *replState) followerStats() repl.FollowerStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.follower != nil {
		rs.lastFS = rs.follower.Stats()
	}
	return rs.lastFS
}

// lagRecords is the readiness-facing replication lag: on a follower,
// records behind the primary's watermark; on a primary, records the
// slowest registered follower has yet to acknowledge.
func (rs *replState) lagRecords() uint64 {
	if rs.isFollower.Load() {
		return rs.followerStats().Lag
	}
	minA, n := rs.source.MinAcked()
	if n == 0 {
		return 0
	}
	if wm := rs.source.Watermark(); wm > minA {
		return wm - minA
	}
	return 0
}

func (rs *replState) stopStreams() {
	rs.streamOnce.Do(func() { close(rs.streamStop) })
}

// startFollower wires and starts the pull loop against the serving
// layer's apply path, targeting the configured primary.
func (rs *replState) startFollower(s *Server) error {
	return rs.startFollowerTo(s, rs.cfg.PrimaryURL, false)
}

// startFollowerTo starts the pull loop against an explicit upstream —
// the rejoin path retargets a deposed primary at its successor, with
// forceBootstrap set so the first connect installs a snapshot instead
// of extending a diverged timeline.
func (rs *replState) startFollowerTo(s *Server, primaryURL string, forceBootstrap bool) error {
	f, err := repl.StartFollower(repl.FollowerConfig{
		PrimaryURL:     primaryURL,
		ID:             rs.cfg.FollowerID,
		Epoch:          rs.epoch.Epoch,
		ObserveEpoch:   rs.epoch.Store,
		Applied:        rs.replApplied.Load,
		Apply:          s.applyReplicated,
		Bootstrap:      s.installReplSnapshot,
		ForceBootstrap: forceBootstrap,
		AckEvery:       rs.cfg.AckEvery,
		StallTimeout:   rs.cfg.StallTimeout,
		Logf:           rs.cfg.Logf,
		ObserveApply:   s.metrics.replApply.ObserveDuration,
	})
	if err != nil {
		return err
	}
	rs.mu.Lock()
	rs.follower = f
	rs.mu.Unlock()
	rs.hintMu.Lock()
	rs.activeUpstream = primaryURL
	rs.primaryHintURL = primaryURL
	rs.hintMu.Unlock()
	return nil
}

// stopFollower halts the pull loop (idempotent), keeping its final
// counters for /metrics.
func (rs *replState) stopFollower() {
	rs.mu.Lock()
	f := rs.follower
	if f != nil {
		rs.lastFS = f.Stats()
		rs.follower = nil
	}
	rs.mu.Unlock()
	if f != nil {
		f.Stop()
	}
	rs.hintMu.Lock()
	rs.activeUpstream = ""
	rs.hintMu.Unlock()
}

// Promote turns a follower into the primary: stop the pull loop, bump
// the fsynced epoch past every epoch the old primary ever reported,
// and start taking writes. Idempotent — promoting a primary returns
// its current epoch. The bumped epoch fences the old primary the
// moment a shipper carries it there. This is the operator path; it
// informs an attached elector so the election state tracks the manual
// promotion instead of campaigning against it.
func (s *Server) Promote() (epoch uint64, err error) {
	epoch, err = s.promoteTo(0)
	if err != nil {
		return 0, err
	}
	if el := s.elector.Load(); el != nil {
		el.NoteLocalPromotion(epoch)
	}
	return epoch, nil
}

// PromoteTo promotes to exactly epoch — the election path: the elector
// won a quorum of votes for this precise epoch, so the data epoch must
// land on it (not one past it). Must NOT call back into the elector
// (it is invoked under the elector's lock).
func (s *Server) PromoteTo(epoch uint64) (uint64, error) {
	return s.promoteTo(epoch)
}

func (s *Server) promoteTo(target uint64) (epoch uint64, err error) {
	d := s.dur
	if d == nil || d.repl == nil {
		return 0, fmt.Errorf("serve: promotion requires a durable server")
	}
	if !s.ready.Load() {
		return 0, fmt.Errorf("serve: cannot promote before recovery completes")
	}
	rs := d.repl
	if !rs.isFollower.Load() {
		cur := rs.epoch.Epoch()
		if target <= cur {
			return cur, nil
		}
		// Already primary, promoted to a higher epoch (an elector
		// re-winning leadership after a lease lapse).
		if err := rs.epoch.Store(target); err != nil {
			return 0, fmt.Errorf("serve: persisting promotion epoch %d: %w", target, err)
		}
		if target > rs.fencedBy.Load() {
			rs.fenced.Store(false)
		}
		rs.cfg.Logf("repl: primary advanced to epoch %d", target)
		return target, nil
	}
	rs.stopFollower()
	next := rs.epoch.Epoch() + 1
	if target > next {
		next = target
	}
	if err := rs.epoch.Store(next); err != nil {
		return 0, fmt.Errorf("serve: persisting promotion epoch %d: %w", next, err)
	}
	// The upstream frontier freezes at promotion: everything this node
	// applied from its old primary up to here is shared history; its own
	// writes beyond are a new timeline. The deposed primary reads this
	// back via /v1/repl/frontier to find its truncation point.
	rs.upstreamAtPromote.Store(rs.replApplied.Load())
	rs.isFollower.Store(false)
	if next > rs.fencedBy.Load() {
		rs.fenced.Store(false)
	}
	rs.promotions.Add(1)
	if s.anom != nil {
		// The promoted standby starts delivering alerts from exactly the
		// state the primary's snapshots left it in: firing alerts stay
		// deduplicated, mid-countdown conditions keep counting.
		s.anom.SetDeliver(true)
	}
	d.advanceRepl()
	rs.cfg.Logf("repl: promoted to primary at epoch %d (applied primary lsn %d)", next, rs.replApplied.Load())
	return next, nil
}

// replGateIngest enforces role and fencing on the write path. It
// stamps X-Repl-Epoch on every response so shippers accumulate the
// highest epoch they have seen and carry it to other nodes.
func (s *Server) replGateIngest(w http.ResponseWriter, r *http.Request) bool {
	if s.dur == nil || s.dur.repl == nil {
		return true
	}
	rs := s.dur.repl
	rs.observeRequestEpoch(r)
	w.Header().Set(HeaderReplEpoch, strconv.FormatUint(rs.epoch.Epoch(), 10))
	if rs.isFollower.Load() {
		rs.notPrimary(w, "this node is a read-only follower — send writes to the primary")
		return false
	}
	if rs.fenced.Load() {
		w.Header().Set(HeaderReplFenced, "1")
		errJSONCode(w, http.StatusConflict, CodeStaleEpoch,
			"write fenced: epoch %d is stale, a peer was promoted at epoch %d",
			rs.epoch.Epoch(), rs.fencedBy.Load())
		return false
	}
	// With an elector attached, a primary only acks while it holds the
	// leader lease: a partitioned primary that cannot reach a quorum
	// goes silent instead of acking writes its successor will not have.
	if el := s.elector.Load(); el != nil && !el.HasLease() {
		w.Header().Set(HeaderReplLease, "expired")
		errJSONCode(w, http.StatusServiceUnavailable, CodeNoLease,
			"leader lease expired: cannot reach an election quorum — writes may be lost, try another node")
		return false
	}
	return true
}

// replReady answers the common replication-endpoint preconditions,
// writing the error response when they fail.
func (s *Server) replReady(w http.ResponseWriter, r *http.Request) (*replState, bool) {
	if s.dur == nil || s.dur.repl == nil {
		errJSON(w, http.StatusNotImplemented, "replication requires a durable server (-data-dir)")
		return nil, false
	}
	rs := s.dur.repl
	rs.observeRequestEpoch(r)
	w.Header().Set(HeaderReplEpoch, strconv.FormatUint(rs.epoch.Epoch(), 10))
	if !s.ready.Load() {
		errJSON(w, http.StatusServiceUnavailable, "server recovering")
		return nil, false
	}
	return rs, true
}

// handleReplStream serves one follower's stream connection. It is
// routed around the request-timeout wrapper: the connection is
// long-lived by design and needs http.Flusher, which
// http.TimeoutHandler does not provide.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	rs, ok := s.replReady(w, r)
	if !ok {
		return
	}
	if rs.isFollower.Load() {
		rs.notPrimary(w, "cascading replication is not supported — stream from the primary")
		return
	}
	id := r.URL.Query().Get("follower")
	if id == "" {
		errJSON(w, http.StatusBadRequest, "missing follower id")
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		f, err := strconv.ParseUint(v, 10, 64)
		if err != nil || f == 0 {
			errJSON(w, http.StatusBadRequest, "bad from %q", v)
			return
		}
		from = f
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		errJSON(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	d := s.dur
	// Register before the oldest-LSN check: registration pins WAL
	// retention at from-1, so a reap between the check and the stream
	// cannot strand the follower.
	rs.source.Register(id, from-1)
	first, err := d.log.FirstLSN()
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "oldest wal lsn: %v", err)
		return
	}
	if from < first {
		errJSONCode(w, http.StatusGone, CodeBootstrapRequired,
			"lsn %d was reaped (oldest is %d) — install a snapshot", from, first)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-rs.streamStop:
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := rs.source.StreamTo(ctx, w, fl.Flush, from); err != nil && ctx.Err() == nil {
		rs.cfg.Logf("repl: stream to follower %s: %v", id, err)
	}
}

// handleReplSnapshot takes a fresh snapshot and serves it — the
// follower-bootstrap payload, exactly the on-disk snapshot image.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	rs, ok := s.replReady(w, r)
	if !ok {
		return
	}
	if rs.isFollower.Load() {
		rs.notPrimary(w, "cascading replication is not supported — bootstrap from the primary")
		return
	}
	d := s.dur
	if err := d.snapshotOnce(s); err != nil {
		errJSON(w, http.StatusInternalServerError, "taking snapshot: %v", err)
		return
	}
	lsn, payload, found, _, err := wal.LatestSnapshot(d.cfg.Dir)
	if err != nil || !found {
		errJSON(w, http.StatusInternalServerError, "reading snapshot: %v", err)
		return
	}
	w.Header().Set(HeaderReplSnapshotLSN, strconv.FormatUint(lsn, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// handleReplAck records a follower's durably-applied LSN, releasing
// WAL retention below it and unblocking semi-sync ingest waits.
func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	rs, ok := s.replReady(w, r)
	if !ok {
		return
	}
	id := r.URL.Query().Get("follower")
	lsn, err := strconv.ParseUint(r.URL.Query().Get("lsn"), 10, 64)
	if id == "" || err != nil {
		errJSON(w, http.StatusBadRequest, "ack needs follower and lsn")
		return
	}
	rs.source.Ack(id, lsn)
	w.WriteHeader(http.StatusNoContent)
}

// handlePromote is the operator-facing failover trigger (the smoke
// drill POSTs it after killing the primary; SIGUSR1 does the same).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.replReady(w, r); !ok {
		return
	}
	epoch, err := s.Promote()
	if err != nil {
		errJSON(w, http.StatusInternalServerError, "promote: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"role": RolePrimary, "epoch": epoch})
}

// applyReplicated is the follower's apply path for one streamed
// record: dedup mark (so post-promotion redeliveries land as
// duplicates), local WAL append stamped with the primary's LSN (so
// reconnects resume exactly), TSDB apply, and a durability wait —
// the pull loop only acks what would survive a follower crash.
func (s *Server) applyReplicated(plsn uint64, body []byte) error {
	start := time.Now()
	d := s.dur
	rs := d.repl
	if rs.isBootExtra(plsn) {
		// Already inside the installed bootstrap image: advance only.
		storeMax(&rs.replApplied, plsn)
		return nil
	}
	var wb walBody
	if err := json.Unmarshal(body, &wb); err != nil {
		return fmt.Errorf("decoding replicated record %d: %w", plsn, err)
	}
	d.applyMu.RLock()
	if wb.Agent != "" {
		// Mirror the primary's dedup decisions; the stream delivers each
		// primary LSN at most once, so this never gates the apply.
		s.dedup.Mark(wb.Agent, wb.Seq)
	}
	local, err := json.Marshal(walBody{Agent: wb.Agent, Seq: wb.Seq, Samples: wb.Samples, PLSN: plsn, Trace: wb.Trace})
	if err != nil {
		d.applyMu.RUnlock()
		return err
	}
	d.seqMu.Lock()
	lsn, err := d.log.Append(local)
	d.seqMu.Unlock()
	if err != nil {
		d.applyMu.RUnlock()
		return fmt.Errorf("wal append: %w", err)
	}
	appendErr := s.store.Append(wb.Samples)
	if appendErr == nil && s.anom != nil {
		// The follower's engine tracks alert state in lockstep with the
		// primary (delivery stays gated off until promotion).
		s.anom.ObserveBatch(wb.Samples, wb.Trace)
	}
	d.tracker.Load().markDone(lsn)
	storeMax(&rs.replApplied, plsn)
	d.applyMu.RUnlock()
	if appendErr != nil {
		// Records are validated on the primary before they reach the WAL;
		// a failure here is a programming error, not a stream hiccup.
		return fmt.Errorf("store append: %w", appendErr)
	}
	d.appendsSinceSnap.Add(1)
	s.metrics.samplesIngested.Add(int64(len(wb.Samples)))
	if err := d.log.WaitDurable(lsn); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	d.advanceRepl()
	// The repl.Follower's ObserveApply hook feeds the replApply
	// histogram; here we only stamp the trace ring and debug log.
	dur := time.Since(start)
	if wb.Trace != "" {
		s.metrics.traces.Record(obs.TraceEvent{
			Trace: wb.Trace, Stage: "repl_apply", Agent: wb.Agent, Seq: int64(wb.Seq),
			LSN: int64(lsn), PLSN: int64(plsn), Samples: len(wb.Samples),
			DurMS: float64(dur) / float64(time.Millisecond),
			Unix:  time.Now().Unix(), Status: "applied",
		})
		s.metrics.logger.Debug("replicated batch applied",
			slog.String("trace_id", wb.Trace),
			slog.String("agent", wb.Agent),
			slog.Uint64("seq", wb.Seq),
			slog.Uint64("plsn", plsn),
			slog.Uint64("lsn", lsn),
			slog.Int("samples", len(wb.Samples)))
	}
	return nil
}

// installReplSnapshot is the follower's bootstrap path: replace the
// live store and dedup index with the primary's snapshot image, then
// persist a local snapshot immediately — the installed state exists
// nowhere in the local WAL, so a crash before the next scheduled
// snapshot would otherwise rewind the follower to its pre-bootstrap
// past. If anything fails, the local disk still holds the old
// consistent state and the bootstrap reruns after the reconnect.
func (s *Server) installReplSnapshot(plsn uint64, payload []byte) error {
	d := s.dur
	rs := d.repl
	var img snapshotImage
	if err := json.Unmarshal(payload, &img); err != nil {
		return fmt.Errorf("decoding snapshot payload: %w", err)
	}
	if img.Store == nil || img.Dedup == nil {
		return fmt.Errorf("snapshot image is missing store or dedup state")
	}
	d.applyMu.Lock()
	if err := s.store.InstallState(img.Store); err != nil {
		d.applyMu.Unlock()
		return err
	}
	if err := s.dedup.InstallState(img.Dedup); err != nil {
		d.applyMu.Unlock()
		return err
	}
	if s.anom != nil {
		// Adopt the primary's alert timeline wholesale (a nil state — a
		// primary running without an engine — resets ours). Restore never
		// re-delivers the carried events.
		if _, err := s.anom.RestoreState(img.Anomaly); err != nil {
			d.applyMu.Unlock()
			return fmt.Errorf("restoring anomaly state: %w", err)
		}
	}
	rs.setBootExtras(img.Extras)
	storeMax(&rs.replApplied, img.AppliedLSN)
	d.applyMu.Unlock()
	if err := d.snapshotOnce(s); err != nil {
		return fmt.Errorf("persisting bootstrap snapshot: %w", err)
	}
	return nil
}

// readForRepl adapts the WAL's range scan to the stream source,
// filtering out tombstoned records (cancelled by backpressure — the
// agent re-sent them under a fresh LSN).
func (d *durability) readForRepl(from, to uint64, emit func(lsn uint64, body []byte) error) error {
	return d.log.ReadRange(from, to, func(lsn uint64, typ wal.RecordType, body []byte) error {
		if typ != wal.RecordData {
			return nil
		}
		d.tombMu.Lock()
		_, dead := d.tombstoned[lsn]
		d.tombMu.Unlock()
		if dead {
			return nil
		}
		return emit(lsn, body)
	})
}

// markTombstoned records a cancelled LSN so the stream skips it. It
// must run before the LSN is marked applied — a streamer gated on the
// watermark must already see the tombstone.
func (d *durability) markTombstoned(lsn uint64) {
	d.tombMu.Lock()
	d.tombstoned[lsn] = struct{}{}
	d.tombMu.Unlock()
}

// advanceRepl publishes the streamable watermark: records both applied
// (tracker) and durable (fsynced — under SyncNone, merely written),
// so a follower can never ack state the primary might lose that the
// follower would not also lose. With SyncNone the operator has chosen
// to trade that guarantee for speed on both ends.
func (d *durability) advanceRepl() {
	rs := d.repl
	if rs == nil || d.log == nil || !d.recovered.Load() {
		return
	}
	wm := d.tracker.Load().frontierLSN()
	var durable uint64
	if d.cfg.Policy == wal.SyncNone {
		durable = d.log.LastLSN()
	} else {
		durable = d.log.SyncedLSN()
	}
	if durable < wm {
		wm = durable
	}
	rs.source.Advance(wm)
}

// advanceTick is the watermark-publication backstop cadence: the hot
// paths advance inline, the ticker covers interval-fsync stragglers.
const advanceTick = 100 * time.Millisecond

func (d *durability) advanceLoop() {
	defer d.wg.Done()
	t := time.NewTicker(advanceTick)
	defer t.Stop()
	for {
		select {
		case <-d.stopc:
			return
		case <-t.C:
			d.advanceRepl()
		}
	}
}

// StopReplicationStreams ends every in-flight follower stream — called
// before graceful HTTP shutdown, which would otherwise wait the
// streams out. Followers reconnect (to this node or its successor).
func (s *Server) StopReplicationStreams() {
	if s.dur != nil && s.dur.repl != nil {
		s.dur.repl.stopStreams()
	}
}

// collect emits the repl_* series into the registry's exposition.
func (rs *replState) collect(e *obs.Exposition) {
	e.Gauge("powserved_repl_epoch", float64(rs.epoch.Epoch()))
	roleVal := float64(1)
	if rs.isFollower.Load() {
		roleVal = 0
	}
	e.Gauge("powserved_repl_role", roleVal)
	e.Gauge("powserved_repl_fenced", float64(b2i(rs.fenced.Load())))
	e.Gauge("powserved_repl_lag_records", float64(rs.lagRecords()))
	e.Gauge("powserved_repl_watermark", float64(rs.source.Watermark()))
	e.Counter("powserved_repl_promotions_total", float64(rs.promotions.Load()))
	e.Counter("powserved_repl_streamed_records_total", float64(rs.source.Streamed()))
	e.Counter("powserved_repl_rejoins_total", float64(rs.rejoins.Load()))
	e.Counter("powserved_elect_diverged_records", float64(rs.divergedRecords.Load()))

	fs := rs.followerStats()
	e.Gauge("powserved_repl_applied_lsn", float64(fs.AppliedLSN))
	e.Counter("powserved_repl_applied_records_total", float64(fs.AppliedRecords))
	e.Counter("powserved_repl_snapshot_installs_total", float64(fs.SnapshotInstalls))
	e.Counter("powserved_repl_reconnects_total", float64(fs.Reconnects))

	followers := rs.source.Followers()
	e.Gauge("powserved_repl_followers", float64(len(followers)))
	for _, f := range followers {
		e.GaugeL("powserved_repl_follower_acked_lsn", "follower", f.ID, float64(f.AckedLSN))
	}
}

// storeMax raises a to v if v is higher (monotonic atomic max).
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// errJSONCode writes a JSON error body carrying a machine-readable
// code alongside the human-readable message.
func errJSONCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...), "code": code})
}
