package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/admit"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
	"hpcpower/internal/wal"
)

// sampleBatch builds an n-sample batch for one agent/sequence.
func sampleBatch(agent string, seq uint64, n int) trace.SampleBatch {
	b := trace.SampleBatch{AgentID: agent, Seq: seq}
	for i := 0; i < n; i++ {
		b.Samples = append(b.Samples, trace.PowerSample{
			Node: i % 8, JobID: 7, Unix: int64(60 + i), PowerW: 100,
		})
	}
	return b
}

// TestMemPressureShedsIngest crosses the memory watermark and checks
// the full degraded-mode surface: ingest sheds 429 over_capacity with
// the over-capacity marker and both retry hints, range queries shed at
// critical pressure, predict (ungated) keeps serving, and /readyz
// reports the condition without going unready.
func TestMemPressureShedsIngest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admit.MemWatermark = 1024 // one ring blows straight through this
	cfg.Admit.Step = 5 * time.Millisecond
	s, ts := newTestServer(t, cfg)

	// First batch is admitted (not yet degraded) and creates rings + job
	// state well beyond the watermark.
	resp, body := postJSON(t, ts.URL+"/v1/samples", sampleBatch("a1", 1, 64))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-pressure ingest: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !s.adm.memDegraded.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("mem monitor never degraded; memBytes=%d", s.memBytes())
		}
		time.Sleep(time.Millisecond)
	}

	resp, body = postJSON(t, ts.URL+"/v1/samples", sampleBatch("a1", 2, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest under memory pressure: %d %s, want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), CodeOverCapacity) {
		t.Fatalf("429 body %s, want code %q", body, CodeOverCapacity)
	}
	if resp.Header.Get(HeaderOverCapacity) != "1" {
		t.Fatal("429 must carry the over-capacity marker header")
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get(HeaderRetryAfterMs) == "" {
		t.Fatalf("429 must carry both retry hints; got %q / %q",
			resp.Header.Get("Retry-After"), resp.Header.Get(HeaderRetryAfterMs))
	}

	// Critical pressure sheds the query class...
	resp, body = get(t, ts.URL+"/v1/query/nodes")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query at critical pressure: %d %s, want 429", resp.StatusCode, body)
	}
	// ...but prediction (ungated: schedulers need it most under load)
	// and node reads keep serving.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{User: "u001", Nodes: 4, WallHours: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict under memory pressure: %d %s, want 200", resp.StatusCode, body)
	}

	// /readyz stays 200 (reads still serve) and reports the condition.
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz under memory pressure: %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"mem_degraded":true`) {
		t.Fatalf("readyz body %s, want mem_degraded:true", body)
	}
	if got := s.pressure(); got != admit.PressureCritical {
		t.Fatalf("pressure = %d, want critical", got)
	}
}

// TestMemEvalHysteresis drives memEval by hand on a worker-less server
// and checks the watermark/resume hysteresis: degrade at the watermark,
// stay degraded in the dead band, clear only below resume — no
// oscillation at the boundary.
func TestMemEvalHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 8
	s := &Server{
		store: tsdb.New(tsdb.Config{Shards: 1, RingLen: 16}),
		cfg:   cfg,
		dedup: tsdb.NewDeduper(tsdb.DedupConfig{}),
	}
	s.metrics = newMetrics(func() int { return s.ingestQ.Len() })
	s.initAdmit()
	s.adm.cfg.MemWatermark = 1000
	s.adm.cfg.MemResume = 800
	now := time.Now()

	// Queue bytes are the controllable component: one 20-sample batch
	// accounts 128 + 48×20 = 1088 bytes > watermark.
	big := queuedBatch{samples: make([]trace.PowerSample, 20)}
	small := queuedBatch{samples: make([]trace.PowerSample, 15)} // 848 bytes: dead band
	if err := s.ingestQ.Push(big); err != nil {
		t.Fatal(err)
	}
	s.memEval(now)
	if !s.adm.memDegraded.Load() {
		t.Fatalf("memBytes=%d over watermark must degrade", s.memBytes())
	}
	s.memEval(now)
	if got := s.adm.memTransitions.Load(); got != 1 {
		t.Fatalf("repeated over-watermark evals: transitions=%d, want 1", got)
	}

	// Drop into the dead band (resume ≤ mem < watermark): must stay
	// degraded — that is the hysteresis.
	s.ingestQ.Pop()
	s.ingestQ.Push(small)
	s.memEval(now)
	if !s.adm.memDegraded.Load() {
		t.Fatalf("memBytes=%d in dead band must stay degraded", s.memBytes())
	}

	// Below resume: clears.
	s.ingestQ.Pop()
	s.memEval(now)
	if s.adm.memDegraded.Load() {
		t.Fatalf("memBytes=%d below resume must clear", s.memBytes())
	}
	if got := s.adm.memTransitions.Load(); got != 2 {
		t.Fatalf("transitions=%d, want 2 (one up, one down)", got)
	}
}

// TestAgentRateLimit429 checks the per-agent token bucket end to end:
// an agent that exceeds its burst gets 429 over_capacity with a
// sub-second retry hint while a second agent is untouched.
func TestAgentRateLimit429(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admit.AgentRate = 1
	cfg.Admit.AgentBurst = 2
	_, ts := newTestServer(t, cfg)

	for seq := uint64(1); seq <= 2; seq++ {
		resp, body := postJSON(t, ts.URL+"/v1/samples", sampleBatch("hog", seq, 1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst send %d: %d %s", seq, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/samples", sampleBatch("hog", 3, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate send: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get(HeaderRetryAfterMs) == "" {
		t.Fatal("rate-limit 429 must carry the millisecond retry hint")
	}
	resp, body = postJSON(t, ts.URL+"/v1/samples", sampleBatch("polite", 1, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other agent must be unaffected: %d %s", resp.StatusCode, body)
	}
}

// TestDurableCoDelShedTombstone: an entry shed by the CoDel queue after
// it was WAL'd must (a) answer 429, never 202, (b) tombstone the record
// so replay skips it, and (c) free the sequence number for the retry.
// Worker-less server with a 1ns target/interval so the second queued
// entry is deterministically shed on dequeue.
func TestDurableCoDelShedTombstone(t *testing.T) {
	dir := t.TempDir()
	dur, err := openDurability(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	dur.log = log
	cfg := durableConfig()
	cfg.QueueDepth = 8
	cfg.Admit.Target = time.Nanosecond
	cfg.Admit.Interval = time.Nanosecond
	s := &Server{
		store: durableStore(),
		cfg:   cfg,
		dedup: tsdb.NewDeduper(tsdb.DedupConfig{}),
		dur:   dur,
	}
	s.metrics = newMetrics(func() int { return s.ingestQ.Len() })
	s.initAdmit()
	s.ready.Store(true)

	type result struct {
		code int
		hdr  http.Header
	}
	send := func(seq uint64) chan result {
		ch := make(chan result, 1)
		go func() {
			rec := httptest.NewRecorder()
			s.ingestDurable(rec, httptest.NewRequest(http.MethodPost, "/v1/samples", nil),
				sampleBatch("a1", seq, 1))
			ch <- result{rec.Code, rec.Header()}
		}()
		return ch
	}
	waitQueued := func() {
		deadline := time.Now().Add(2 * time.Second)
		for s.ingestQ.Len() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("batch never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// First entry: delivered (first over-target dequeue only arms the
	// CoDel interval clock). Ack it by hand — no workers, no markDone, so
	// recovery replays it like a pre-apply crash.
	r1 := send(1)
	waitQueued()
	time.Sleep(time.Millisecond) // sojourn ≥ target
	qb1, ok := s.ingestQ.Pop()
	if !ok || qb1.seq != 1 {
		t.Fatalf("pop 1 = %+v ok=%v", qb1, ok)
	}
	qb1.resc <- true
	if res := <-r1; res.code != http.StatusAccepted {
		t.Fatalf("first batch: %d, want 202", res.code)
	}

	// Second entry: a full interval has now passed above target, so this
	// dequeue enters drop state and sheds it. Pop blocks afterwards (the
	// queue is empty) — run it async and unblock it via Close.
	r2 := send(2)
	waitQueued()
	time.Sleep(time.Millisecond)
	go s.ingestQ.Pop()
	res := <-r2
	if res.code != http.StatusTooManyRequests {
		t.Fatalf("shed batch: %d, want 429", res.code)
	}
	if res.hdr.Get(HeaderOverCapacity) != "1" {
		t.Fatal("shed 429 must carry the over-capacity marker")
	}
	// The sequence number is free again: the retry is not a duplicate.
	if dup, _ := s.dedup.Mark("a1", 2); dup {
		t.Fatal("shed batch's sequence must be forgotten for the retry")
	}
	s.ingestQ.Close(true)

	// Crash and recover: the shed record must stay dead, the delivered
	// (but never markDone'd) one must replay.
	log.Close()
	dur.lock.Abandon()
	s2, err := NewDurable(durableStore(), nil, durableConfig(), DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep.Tombstoned != 1 {
		t.Fatalf("tombstoned %d records on replay, want 1", rep.Tombstoned)
	}
	if got := s2.store.Ingested(); got != 1 {
		t.Fatalf("recovered %d samples, want 1 — the shed copy must stay dead", got)
	}
}

// TestAdminShedsAtElevatedPressure: admin-class endpoints shed as soon
// as the ingest queue is half full (elevated pressure), while queries
// still serve. Worker-less server so the occupancy is deterministic.
func TestAdminShedsAtElevatedPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 4
	s := &Server{
		store: tsdb.New(tsdb.Config{Shards: 1, RingLen: 16}),
		cfg:   cfg,
		dedup: tsdb.NewDeduper(tsdb.DedupConfig{}),
	}
	s.metrics = newMetrics(func() int { return s.ingestQ.Len() })
	s.initAdmit()

	for i := 0; i < 2; i++ { // half occupancy
		s.ingestQ.Push(queuedBatch{})
	}
	if p := s.pressure(); p != admit.PressureElevated {
		t.Fatalf("pressure at half occupancy = %d, want elevated", p)
	}
	okHandler := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	req := httptest.NewRequest(http.MethodGet, "/", nil)

	rec := httptest.NewRecorder()
	s.gated(admit.ClassAdmin, "admin", okHandler)(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("admin at elevated pressure: %d, want 429", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.gated(admit.ClassQuery, "query", okHandler)(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query at elevated pressure: %d, want 200", rec.Code)
	}
}
