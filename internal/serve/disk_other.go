//go:build !(linux || darwin)

package serve

// diskUsage is unavailable on this platform; the watermark check is
// skipped and degraded mode relies on the write probe alone.
func diskUsage(path string) (free, total uint64, ok bool) { return 0, 0, false }
