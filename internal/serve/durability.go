package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpcpower/internal/anomaly"
	"hpcpower/internal/obs"
	"hpcpower/internal/repl"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
	"hpcpower/internal/vfs"
	"hpcpower/internal/wal"
)

// DurabilityConfig turns on crash-safe ingest: every accepted batch is
// appended to a write-ahead log in Dir before it is enqueued, periodic
// snapshots bound replay time, and Recover rebuilds the exact pre-crash
// analytics from the latest snapshot plus the WAL tail.
type DurabilityConfig struct {
	// Dir is the data directory. It must already exist and be writable;
	// NewDurable fails fast otherwise and refuses to share it with a
	// running instance (flock).
	Dir string
	// Policy is the fsync discipline (wal.SyncBatch / SyncInterval /
	// SyncNone). SyncBatch acks a 202 only after the record is fsynced.
	Policy wal.SyncPolicy
	// SyncInterval is the cadence for wal.SyncInterval. 0 means 100 ms.
	SyncInterval time.Duration
	// SegmentBytes rotates WAL segments. 0 means 64 MiB.
	SegmentBytes int64
	// SnapshotInterval is the time between snapshots. 0 means 20 s.
	SnapshotInterval time.Duration
	// SnapshotEvery also snapshots after this many WAL appends since the
	// last one. 0 means 4096.
	SnapshotEvery int64
	// KeepSnapshots retains this many snapshot files. 0 means 3.
	KeepSnapshots int
	// Replication configures the node's replication role; nil means a
	// standalone primary (streamable, never following).
	Replication *ReplicationConfig
	// FS is the filesystem every durable artifact (WAL segments,
	// snapshots, lock file, disk probe) goes through. Nil means vfs.OS;
	// fault drills inject a vfs.FaultFS here.
	FS vfs.FS
	// DiskCheckInterval is the cadence of the storage-health monitor
	// that flips ingest into degraded mode. 0 means 2 s.
	DiskCheckInterval time.Duration
	// DiskLowBytes degrades ingest when the data filesystem's free
	// space falls below it. 0 disables the watermark check (the write
	// probe still runs).
	DiskLowBytes int64
	// DiskResumeBytes is the hysteresis level: once degraded on space,
	// ingest reopens only when free space exceeds it. 0 means
	// 2×DiskLowBytes.
	DiskResumeBytes int64
}

func (c *DurabilityConfig) withDefaults() DurabilityConfig {
	d := *c
	if d.SyncInterval <= 0 {
		d.SyncInterval = 100 * time.Millisecond
	}
	if d.SnapshotInterval <= 0 {
		d.SnapshotInterval = 20 * time.Second
	}
	if d.SnapshotEvery <= 0 {
		d.SnapshotEvery = 4096
	}
	if d.KeepSnapshots <= 0 {
		d.KeepSnapshots = 3
	}
	if d.FS == nil {
		d.FS = vfs.OS
	}
	if d.DiskCheckInterval <= 0 {
		d.DiskCheckInterval = 2 * time.Second
	}
	return d
}

// snapshotImage is the JSON payload of one snapshot file: the full TSDB
// and dedup state plus the apply frontier. Replay applies exactly the WAL
// records with LSN > AppliedLSN and not in Extras — everything else is
// already inside the image.
type snapshotImage struct {
	Store *tsdb.StoreState   `json:"store"`
	Dedup *tsdb.DeduperState `json:"dedup"`
	// AppliedLSN is the apply watermark: every record with LSN ≤ it is in
	// Store. Extras lists the applied LSNs above the watermark (records
	// applied out of order around in-flight neighbors).
	AppliedLSN uint64   `json:"applied_lsn"`
	Extras     []uint64 `json:"extras,omitempty"`
	// ReplLSN is the highest primary LSN a follower had durably applied
	// at capture time; recovery resumes the pull loop just after it.
	// ReplExtras carries the bootstrap-extra set (see replState) so a
	// follower crash after a bootstrap cannot double-apply them.
	ReplLSN    uint64   `json:"repl_lsn,omitempty"`
	ReplExtras []uint64 `json:"repl_extras,omitempty"`
	// Anomaly is the alert-engine state (hysteresis machines + event
	// ring), captured at the same batch boundary as Store — the job
	// fingerprints themselves ride inside Store. Absent when the server
	// runs without an engine.
	Anomaly *anomaly.EngineState `json:"anomaly,omitempty"`
}

// RecoveryReport summarizes one Recover call, for logs and /metrics.
type RecoveryReport struct {
	SnapshotFound    bool
	SnapshotLSN      uint64
	SnapshotsSkipped int // corrupt snapshot files skipped over
	StaleLock        bool
	RecordsReplayed  int64
	SamplesReplayed  int64
	RecordsSkipped   int64 // already in the snapshot (LSN gate)
	Tombstoned       int64 // cancelled by a tombstone
	DecodeErrors     int64
	TruncatedBytes   int64
	DroppedSegments  int
	Duration         time.Duration
}

// applyTracker tracks which WAL LSNs have been folded into the store: a
// watermark (every LSN ≤ it is done) plus the sparse set of done LSNs
// above it. LSNs are contiguous, so the watermark chases the set.
type applyTracker struct {
	mu        sync.Mutex
	watermark uint64
	done      map[uint64]struct{}
}

func newApplyTracker(watermark uint64) *applyTracker {
	return &applyTracker{watermark: watermark, done: map[uint64]struct{}{}}
}

func (t *applyTracker) markDone(lsn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if lsn <= t.watermark {
		return
	}
	t.done[lsn] = struct{}{}
	for {
		if _, ok := t.done[t.watermark+1]; !ok {
			return
		}
		delete(t.done, t.watermark+1)
		t.watermark++
	}
}

// frontierLSN returns just the watermark — the hot-path accessor the
// replication watermark publisher uses (no extras allocation).
func (t *applyTracker) frontierLSN() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

// frontier returns the watermark and the sorted extras above it.
func (t *applyTracker) frontier() (uint64, []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	extras := make([]uint64, 0, len(t.done))
	for lsn := range t.done {
		extras = append(extras, lsn)
	}
	sort.Slice(extras, func(a, b int) bool { return extras[a] < extras[b] })
	return t.watermark, extras
}

// durability owns the server's crash-safety machinery: the data-dir
// lock, the WAL, the apply tracker, and the snapshot scheduler.
type durability struct {
	cfg  DurabilityConfig
	fsys vfs.FS
	lock *wal.FileLock
	log  *wal.Log

	// disk is the storage-health monitor state (see disk.go).
	disk diskState

	// applyMu is the snapshot-consistency lock. Readers: the ingest
	// accept path (dedup mark → WAL append → enqueue, one atomic unit)
	// and the worker apply path (store append → markDone). Writer: the
	// snapshot capture, which therefore sees store, dedup, and tracker at
	// a single batch boundary.
	applyMu sync.RWMutex
	// seqMu orders WAL appends with enqueues so LSN order equals queue
	// order: replay applies records in LSN order, and with one ingest
	// worker the live apply order must match for the recovered analytics
	// to be byte-identical.
	seqMu sync.Mutex
	// tracker is swapped wholesale when a deposed primary rejoins
	// (election.go), and the shed path must read it without applyMu
	// (admit.go) — hence the atomic pointer rather than a plain field.
	tracker atomic.Pointer[applyTracker]

	// tombstoned is the live set of cancelled LSNs (queue-full batches
	// whose WAL record must never be applied or streamed). Seeded by the
	// recovery tombstone scan, extended by the backpressure path before
	// the LSN is marked done — so the replication stream, gated on the
	// done watermark, always sees the cancellation first.
	tombMu     sync.Mutex
	tombstoned map[uint64]struct{}

	// repl is the node's replication state; non-nil for every durable
	// server (a standalone primary is just a primary with no followers).
	repl *replState

	appendsSinceSnap atomic.Int64
	snapLSN          atomic.Uint64 // frontier watermark of the last snapshot
	snapshots        atomic.Int64
	snapshotErrors   atomic.Int64

	recovered atomic.Bool
	report    RecoveryReport

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// openDurability fail-fasts on the data dir (missing, unwritable, or
// locked by a live instance) and opens the WAL without replaying it.
func openDurability(cfg DurabilityConfig) (*durability, error) {
	cfg = cfg.withDefaults()
	lock, err := wal.LockDirFS(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	rcfg, err := cfg.Replication.withDefaults(cfg.Dir)
	if err != nil {
		lock.Unlock()
		return nil, err
	}
	ep, err := repl.OpenEpochFile(rcfg.EpochFile)
	if err != nil {
		lock.Unlock()
		return nil, err
	}
	d := &durability{
		cfg:        cfg,
		fsys:       cfg.FS,
		lock:       lock,
		tombstoned: map[uint64]struct{}{},
		stopc:      make(chan struct{}),
	}
	d.tracker.Store(newApplyTracker(0))
	d.repl = newReplState(rcfg, ep, d)
	return d, nil
}

// walBody is the WAL record payload: the delivery-stamped batch, so
// replay can rebuild both the store and the dedup index.
type walBody struct {
	Agent   string              `json:"agent,omitempty"`
	Seq     uint64              `json:"seq,omitempty"`
	Samples []trace.PowerSample `json:"samples"`
	// PLSN is the primary's LSN for a record a follower applied off the
	// replication stream (0 on records ingested directly). Recovery
	// takes the max to find where the pull loop resumes.
	PLSN uint64 `json:"plsn,omitempty"`
	// Trace is the shipper-minted trace ID; it rides the WAL body (and
	// therefore the replication stream, which carries bodies verbatim)
	// so follower apply logs carry the same ID as the primary's ingest.
	Trace string `json:"trace,omitempty"`
}

func encodeWALBody(agent string, seq uint64, samples []trace.PowerSample, traceID string) ([]byte, error) {
	return json.Marshal(walBody{Agent: agent, Seq: seq, Samples: samples, Trace: traceID})
}

// Recover restores the latest valid snapshot into the store and dedup
// index, opens the WAL (truncating any torn tail), and replays the
// records past the snapshot frontier. It must run before the server
// accepts ingest traffic; /readyz answers 503 until it completes.
func (s *Server) Recover() (*RecoveryReport, error) {
	d := s.dur
	if d == nil {
		return nil, fmt.Errorf("serve: server has no durability configured")
	}
	if d.recovered.Load() {
		return nil, fmt.Errorf("serve: Recover called twice")
	}
	start := time.Now()
	rep := RecoveryReport{StaleLock: d.lock.Stale()}

	snapLSN, payload, found, skipped, err := wal.LatestSnapshotFS(d.fsys, d.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshots: %w", err)
	}
	rep.SnapshotsSkipped = skipped
	var img snapshotImage
	if found {
		if err := json.Unmarshal(payload, &img); err != nil {
			return nil, fmt.Errorf("serve: snapshot %d payload: %w", snapLSN, err)
		}
		if img.Store != nil {
			if err := s.store.RestoreState(img.Store); err != nil {
				return nil, fmt.Errorf("serve: restoring snapshot %d: %w", snapLSN, err)
			}
		}
		if img.Dedup != nil {
			if err := s.dedup.RestoreState(img.Dedup); err != nil {
				return nil, fmt.Errorf("serve: restoring snapshot %d dedup: %w", snapLSN, err)
			}
		}
		if img.Anomaly != nil && s.anom != nil {
			if _, err := s.anom.RestoreState(img.Anomaly); err != nil {
				return nil, fmt.Errorf("serve: restoring snapshot %d anomaly state: %w", snapLSN, err)
			}
		}
		rep.SnapshotFound, rep.SnapshotLSN = true, img.AppliedLSN
	}

	// New appends must never reuse an LSN the snapshot already covers,
	// even if the WAL tail was lost entirely.
	floor := img.AppliedLSN
	for _, e := range img.Extras {
		if e > floor {
			floor = e
		}
	}
	log, err := wal.Open(d.cfg.Dir, wal.Options{
		SegmentBytes: d.cfg.SegmentBytes,
		Policy:       d.cfg.Policy,
		Interval:     d.cfg.SyncInterval,
		NextLSNFloor: floor,
		FS:           d.fsys,
		// Latency hooks feed the serving registry: append and fsync
		// distributions, plus records-per-fsync (group-commit size).
		ObserveAppend:      s.metrics.walAppend.ObserveDuration,
		ObserveFsync:       s.metrics.walFsync.ObserveDuration,
		ObserveGroupCommit: func(records int64) { s.metrics.groupCommit.Observe(float64(records)) },
	})
	if err != nil {
		return nil, fmt.Errorf("serve: opening wal: %w", err)
	}
	d.log = log

	applied := map[uint64]struct{}{}
	for _, e := range img.Extras {
		applied[e] = struct{}{}
	}
	// Pass 1: a tombstone cancels an earlier record, so collect them all
	// before applying anything.
	tombstoned := map[uint64]struct{}{}
	err = log.Replay(func(lsn uint64, typ wal.RecordType, body []byte) error {
		if typ == wal.RecordTombstone {
			tombstoned[wal.DecodeTombstone(body)] = struct{}{}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: wal tombstone scan: %w", err)
	}
	// Pass 2: apply every data record past the snapshot frontier, in LSN
	// order — the order the live server applied them. Dedup marks are
	// re-recorded but never gate replay: a mark captured in the snapshot
	// may belong to a record that was still in flight at capture time,
	// and skipping it here would lose acknowledged data.
	maxPLSN := uint64(0)
	err = log.Replay(func(lsn uint64, typ wal.RecordType, body []byte) error {
		if typ != wal.RecordData {
			return nil
		}
		if _, ok := tombstoned[lsn]; ok {
			rep.Tombstoned++
			return nil
		}
		if lsn <= img.AppliedLSN {
			rep.RecordsSkipped++
			return nil
		}
		if _, ok := applied[lsn]; ok {
			rep.RecordsSkipped++
			return nil
		}
		var wb walBody
		if err := json.Unmarshal(body, &wb); err != nil {
			rep.DecodeErrors++
			return nil
		}
		if wb.PLSN > maxPLSN {
			maxPLSN = wb.PLSN
		}
		if wb.Agent != "" {
			s.dedup.Mark(wb.Agent, wb.Seq)
		}
		if err := s.store.Append(wb.Samples); err != nil {
			rep.DecodeErrors++
			return nil
		}
		if s.anom != nil {
			// Detector time is sample-driven, so replay reproduces the
			// live run's alert decisions exactly (and replayed batches
			// keep their trace IDs on any transitions they trigger).
			s.anom.ObserveBatch(wb.Samples, wb.Trace)
		}
		rep.RecordsReplayed++
		rep.SamplesReplayed += int64(len(wb.Samples))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: wal replay: %w", err)
	}

	// Everything on disk is now in the store: the frontier is the last
	// LSN the (truncated) WAL holds, or the snapshot floor beyond it.
	wm := log.LastLSN()
	if floor > wm {
		wm = floor
	}
	d.tracker.Store(newApplyTracker(wm))
	d.snapLSN.Store(img.AppliedLSN)
	d.tombMu.Lock()
	d.tombstoned = tombstoned
	d.tombMu.Unlock()

	// Replication state rebuilds from the same artifacts: the snapshot's
	// pull-loop watermark, raised by any primary-stamped records the WAL
	// tail replayed past it.
	rs := d.repl
	// A primary claims epoch 1 on first boot (0 means "never led");
	// promotion always lands at 2 or above, which a drill can assert.
	if rs.cfg.Role == RolePrimary && rs.epoch.Epoch() == 0 {
		if err := rs.epoch.Store(1); err != nil {
			return nil, fmt.Errorf("serve: initializing epoch: %w", err)
		}
	}
	ra := img.ReplLSN
	if maxPLSN > ra {
		ra = maxPLSN
	}
	storeMax(&rs.replApplied, ra)
	rs.setBootExtras(img.ReplExtras)
	if rs.cfg.Role == RolePrimary {
		// A primary that previously followed (a promoted standby
		// restarting) serves its old pull frontier as the divergence
		// point for its deposed predecessor's rejoin.
		rs.upstreamAtPromote.Store(rs.replApplied.Load())
	}

	st := log.Stats()
	rep.TruncatedBytes = st.TruncatedBytes
	rep.DroppedSegments = st.DroppedSegments
	rep.Duration = time.Since(start)
	d.report = rep
	d.recovered.Store(true)
	s.ready.Store(true)

	d.advanceRepl()
	d.wg.Add(3)
	go d.snapshotLoop(s)
	go d.advanceLoop()
	go d.diskLoop()
	if rs.cfg.Role == RoleFollower {
		if err := rs.startFollower(s); err != nil {
			return nil, fmt.Errorf("serve: starting follower pull loop: %w", err)
		}
	}
	return &rep, nil
}

// snapshotLoop takes periodic snapshots, plus one whenever enough WAL
// appends have accumulated since the last.
func (d *durability) snapshotLoop(s *Server) {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.SnapshotInterval / 4)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-d.stopc:
			return
		case <-t.C:
			due := time.Since(last) >= d.cfg.SnapshotInterval && d.appendsSinceSnap.Load() > 0
			if d.appendsSinceSnap.Load() >= d.cfg.SnapshotEvery {
				due = true
			}
			if !due {
				continue
			}
			if err := d.snapshotOnce(s); err != nil {
				d.snapshotErrors.Add(1)
			}
			last = time.Now()
		}
	}
}

// snapshotOnce captures a consistent (store, dedup, frontier) image,
// makes the WAL durable past it, persists the snapshot, and reaps the
// segments and snapshots it obsoletes.
func (d *durability) snapshotOnce(s *Server) error {
	d.applyMu.Lock()
	wm, extras := d.tracker.Load().frontier()
	img := snapshotImage{
		Store:      s.store.ExportState(),
		Dedup:      s.dedup.ExportState(),
		AppliedLSN: wm,
		Extras:     extras,
	}
	if rs := d.repl; rs != nil {
		img.ReplLSN = rs.replApplied.Load()
		img.ReplExtras = rs.bootExtraList(img.ReplLSN)
	}
	if s.anom != nil {
		img.Anomaly = s.anom.ExportState()
	}
	pending := d.appendsSinceSnap.Load()
	d.applyMu.Unlock()

	// Durability barrier: a dedup mark inside the image implies its WAL
	// record is on disk — otherwise a crash could lose an acked batch and
	// the snapshot would reject the agent's re-send as a duplicate.
	if err := d.log.Sync(); err != nil {
		return err
	}
	payload, err := json.Marshal(&img)
	if err != nil {
		return err
	}
	if err := wal.WriteSnapshotFS(d.fsys, d.cfg.Dir, wm, payload); err != nil {
		return err
	}
	d.snapshots.Add(1)
	d.snapLSN.Store(wm)
	d.appendsSinceSnap.Add(-pending)
	d.log.Reap(wm)
	wal.ReapSnapshotsFS(d.fsys, d.cfg.Dir, d.cfg.KeepSnapshots)
	return nil
}

// collect emits the wal_*, snapshot_*, recovery_*, and repl_* series
// into the registry's exposition — the durability half of /metrics,
// registered as a collector by NewDurable.
func (d *durability) collect(e *obs.Exposition) {
	if d.log != nil {
		st := d.log.Stats()
		e.Counter("powserved_wal_appends_total", float64(st.Appends))
		e.Counter("powserved_wal_fsyncs_total", float64(st.Fsyncs))
		e.Counter("powserved_wal_rotations_total", float64(st.Rotations))
		e.Gauge("powserved_wal_segments", float64(st.Segments))
		e.Gauge("powserved_wal_last_lsn", float64(st.LastLSN))
		e.Gauge("powserved_wal_synced_lsn", float64(st.SyncedLSN))
		e.Counter("powserved_wal_truncated_bytes_total", float64(st.TruncatedBytes))
		e.Counter("powserved_wal_dropped_segments_total", float64(st.DroppedSegments))
		e.Gauge("powserved_wal_poisoned", float64(b2i(st.Poisoned)))
	}
	e.Gauge("powserved_disk_degraded", float64(b2i(d.disk.degraded.Load())))
	e.Gauge("powserved_disk_free_bytes", float64(d.disk.freeBytes.Load()))
	e.Gauge("powserved_disk_total_bytes", float64(d.disk.totalBytes.Load()))
	e.Counter("powserved_disk_transitions_total", float64(d.disk.transitions.Load()))
	e.Counter("powserved_disk_probe_errors_total", float64(d.disk.probeErrors.Load()))
	e.Counter("powserved_snapshots_total", float64(d.snapshots.Load()))
	e.Counter("powserved_snapshot_errors_total", float64(d.snapshotErrors.Load()))
	e.Gauge("powserved_snapshot_last_lsn", float64(d.snapLSN.Load()))
	if d.recovered.Load() {
		rep := d.report
		e.Gauge("powserved_recovery_snapshot_found", float64(b2i(rep.SnapshotFound)))
		e.Gauge("powserved_recovery_snapshot_lsn", float64(rep.SnapshotLSN))
		e.Gauge("powserved_recovery_snapshots_skipped", float64(rep.SnapshotsSkipped))
		e.Gauge("powserved_recovery_records_replayed", float64(rep.RecordsReplayed))
		e.Gauge("powserved_recovery_samples_replayed", float64(rep.SamplesReplayed))
		e.Gauge("powserved_recovery_records_skipped", float64(rep.RecordsSkipped))
		e.Gauge("powserved_recovery_tombstoned", float64(rep.Tombstoned))
		e.Gauge("powserved_recovery_truncated_bytes", float64(rep.TruncatedBytes))
		e.Gauge("powserved_recovery_stale_lock", float64(b2i(rep.StaleLock)))
		e.Gauge("powserved_recovery_seconds", rep.Duration.Seconds())
	}
	if d.repl != nil {
		d.repl.collect(e)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// close stops the snapshot scheduler, takes a final snapshot when the
// queue has fully drained (fast restart), closes the WAL, and releases
// the data-dir lock. Called from Server.Close after the workers exit.
func (d *durability) close(s *Server) {
	// The pull loop and follower streams go first: both touch the WAL,
	// which is about to close.
	if d.repl != nil {
		d.repl.stopStreams()
		d.repl.stopFollower()
	}
	d.stopOnce.Do(func() { close(d.stopc) })
	d.wg.Wait()
	if d.log != nil {
		if d.recovered.Load() {
			if err := d.snapshotOnce(s); err != nil {
				d.snapshotErrors.Add(1)
			}
		}
		d.log.Close()
	}
	d.lock.Unlock()
}
