package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/obs"
)

// legacyMetricNames is every powserved_* series the pre-registry
// emitters produced. The obs.Registry rewrite must keep each one
// byte-compatible so existing scrapes and dashboards survive.
// (powserved_repl_follower_acked_lsn is omitted: it only appears once a
// follower has registered, which TestTracePropagatesToFollower covers.)
var legacyMetricNames = []string{
	"powserved_samples_ingested_total",
	"powserved_batches_accepted_total",
	"powserved_batches_rejected_total",
	"powserved_batches_invalid_total",
	"powserved_batches_duplicate_total",
	"powserved_batches_stale_total",
	"powserved_redeliveries_total",
	"powserved_requests_total",
	"powserved_request_seconds_sum",
	"powserved_request_seconds_max",
	"powserved_request_errors_total",
	"powserved_ingest_queue_depth",
	"powserved_agent_breaker_state",
	"powserved_agent_retries",
	"powserved_agent_spill_depth",
	"powserved_wal_appends_total",
	"powserved_wal_fsyncs_total",
	"powserved_wal_rotations_total",
	"powserved_wal_segments",
	"powserved_wal_last_lsn",
	"powserved_wal_synced_lsn",
	"powserved_wal_truncated_bytes_total",
	"powserved_wal_dropped_segments_total",
	"powserved_snapshots_total",
	"powserved_snapshot_errors_total",
	"powserved_snapshot_last_lsn",
	"powserved_recovery_seconds",
	"powserved_recovery_snapshot_found",
	"powserved_recovery_snapshot_lsn",
	"powserved_recovery_records_replayed",
	"powserved_recovery_samples_replayed",
	"powserved_recovery_records_skipped",
	"powserved_recovery_tombstoned",
	"powserved_recovery_truncated_bytes",
	"powserved_recovery_snapshots_skipped",
	"powserved_recovery_stale_lock",
	"powserved_repl_epoch",
	"powserved_repl_role",
	"powserved_repl_fenced",
	"powserved_repl_lag_records",
	"powserved_repl_watermark",
	"powserved_repl_promotions_total",
	"powserved_repl_streamed_records_total",
	"powserved_repl_applied_lsn",
	"powserved_repl_applied_records_total",
	"powserved_repl_snapshot_installs_total",
	"powserved_repl_reconnects_total",
	"powserved_repl_followers",
}

// scrapeMetrics exercises the ingest and query paths, then returns one
// /metrics scrape with every family populated.
func scrapeMetrics(t *testing.T) string {
	t.Helper()
	s, ts := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { ts.Close(); s.Close() }()

	total := sendAll(t, ts.URL, stampedBatches(7, 8))
	waitIngested(t, s, total)
	get(t, ts.URL+"/v1/summary")
	_, body := get(t, ts.URL+"/metrics")
	return string(body)
}

func TestMetricsLegacyNamesPreserved(t *testing.T) {
	body := scrapeMetrics(t)
	for _, name := range legacyMetricNames {
		if !strings.Contains(body, "\n"+name+"{") && !strings.Contains(body, "\n"+name+" ") {
			t.Errorf("/metrics lost legacy series %s", name)
		}
	}
}

func TestMetricsHistogramFamiliesPresent(t *testing.T) {
	body := scrapeMetrics(t)
	for _, name := range []string{
		"powserved_request_latency_seconds_bucket",
		"powserved_ingest_e2e_seconds_bucket",
		"powserved_wal_append_seconds_bucket",
		"powserved_wal_fsync_seconds_bucket",
		"powserved_group_commit_records_bucket",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics lacks histogram series %s", name)
		}
	}
	// The ingest and WAL histograms must have actually observed the
	// batches sent above, not just expose empty bucket scaffolding.
	for _, count := range []string{
		"powserved_ingest_e2e_seconds_count 8",
		"powserved_wal_append_seconds_count 8",
	} {
		if !strings.Contains(body, count) {
			t.Errorf("/metrics lacks %q (histogram not fed by the hot path)", count)
		}
	}
	if strings.Contains(body, "powserved_wal_fsync_seconds_count 0") {
		t.Error("WAL fsync histogram is empty after acknowledged durable ingest")
	}
}

// TestMetricsExpositionLint holds every scrape to the Prometheus text
// exposition rules (TYPE before series, no duplicates, monotone
// cumulative buckets with an +Inf bound).
func TestMetricsExpositionLint(t *testing.T) {
	body := scrapeMetrics(t)
	if err := obs.LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics violates the exposition format: %v\n%s", err, body)
	}
}

// postTraced POSTs a batch with an X-Trace-Id header, returning the
// response.
func postTraced(t *testing.T, url, traceID string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/samples", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceID, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// waitTraceStages polls url's trace ring until the trace shows every
// wanted stage (or times out).
func waitTraceStages(t *testing.T, url, traceID string, stages ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, url+"/debug/traces/recent?trace="+traceID)
		var out struct {
			Traces []obs.TraceEvent `json:"traces"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("trace ring body %q: %v", body, err)
		}
		seen := map[string]bool{}
		for _, ev := range out.Traces {
			if ev.Trace == traceID {
				seen[ev.Stage] = true
			}
		}
		missing := ""
		for _, st := range stages {
			if !seen[st] {
				missing = st
				break
			}
		}
		if missing == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never reached stage %q (ring: %s)", traceID, missing, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestTraceRoundTrip: an X-Trace-Id sent with a durable ingest is
// echoed on the ack and lands in the trace ring with both the ingest
// and apply stages.
func TestIngestTraceRoundTrip(t *testing.T) {
	s, ts := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { ts.Close(); s.Close() }()

	traceID := obs.NewTraceID()
	batch := stampedBatches(3, 1)[0]
	resp := postTraced(t, ts.URL, traceID, batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderTraceID); got != traceID {
		t.Fatalf("ack trace header = %q, want %q", got, traceID)
	}
	waitTraceStages(t, ts.URL, traceID, "ingest", "apply")
}

// TestTracePropagatesToFollower: the trace ID rides the WAL body across
// the replication stream, so the follower's ring holds a repl_apply
// event under the same ID the shipper minted.
func TestTracePropagatesToFollower(t *testing.T) {
	primary, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsP.Close(); primary.Close() }()
	follower, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); follower.Close() }()

	traceID := obs.NewTraceID()
	batch := stampedBatches(5, 1)[0]
	if resp := postTraced(t, tsP.URL, traceID, batch); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d, want 202", resp.StatusCode)
	}
	waitIngested(t, follower, int64(len(batch.Samples)))
	waitTraceStages(t, tsP.URL, traceID, "ingest", "apply")
	waitTraceStages(t, tsF.URL, traceID, "repl_apply")

	// The follower registered on the primary, so the one legacy series
	// the standalone scrape cannot show must be live now.
	_, mp := get(t, tsP.URL+"/metrics")
	if !strings.Contains(string(mp), "powserved_repl_follower_acked_lsn{") {
		t.Error("primary /metrics lacks powserved_repl_follower_acked_lsn after follower attach")
	}
	if err := obs.LintExposition(bytes.NewReader(mp)); err != nil {
		t.Errorf("primary /metrics with follower violates exposition format: %v", err)
	}
}
