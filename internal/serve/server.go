// Package serve is the HTTP layer of the powserved online telemetry
// service: batch sample ingest with bounded-queue backpressure, node
// series and live job characterization queries, pre-execution power
// prediction from a serialized BDT, and operational endpoints
// (/metrics, /healthz) — stdlib net/http only.
//
// Endpoints:
//
//	POST /v1/samples          ingest a trace.SampleBatch (202, or 503 on backpressure)
//	GET  /v1/nodes/{id}/series?from=&to=   retained window of one node
//	GET  /v1/jobs/{id}/power  live streaming characterization of one job
//	POST /v1/predict          BDT prediction from (user, nodes, wall_hours)
//	GET  /v1/summary          store-wide reduction (merged shards)
//	GET  /metrics             Prometheus-style counters
//	GET  /healthz             liveness
//	GET  /readyz              readiness: 503 during recovery replay and drain
//
// With a DurabilityConfig (NewDurable) the ingest path is crash-safe:
// accepted batches hit a write-ahead log before the queue, snapshots
// bound replay, and Recover rebuilds the exact pre-crash analytics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hpcpower/internal/admit"
	"hpcpower/internal/anomaly"
	"hpcpower/internal/elect"
	"hpcpower/internal/mlearn"
	"hpcpower/internal/obs"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
)

// Config parameterizes the server.
type Config struct {
	// QueueDepth bounds the ingest queue (batches). 0 means 256. When the
	// queue is full, POST /v1/samples answers 503 + Retry-After instead of
	// blocking the agent — explicit backpressure, never unbounded memory.
	QueueDepth int
	// IngestWorkers drains the queue into the store. 0 means 4.
	IngestWorkers int
	// MaxBatchBytes bounds an ingest request body. 0 means 8 MiB.
	MaxBatchBytes int64
	// RequestTimeout bounds handler time per request. 0 means 10 s.
	RequestTimeout time.Duration
	// DedupWindow is the per-agent reordering tolerance (batches) of the
	// idempotent-ingest index. 0 means 4096.
	DedupWindow int
	// Logger receives the server's structured logs (per-component via
	// obs.Component). nil discards — tests and embedders stay silent.
	Logger *slog.Logger
	// SlowRequest is the slow-request log threshold: any instrumented
	// request at or over it logs a Warn with its endpoint, status,
	// duration, and trace ID. 0 means 1 s; negative disables.
	SlowRequest time.Duration
	// BlockFlushInterval is the cadence of the background head→block
	// flush loop (only with a block store attached to the tsdb store).
	// 0 disables the loop — windows seal only via POST /v1/admin/flush.
	BlockFlushInterval time.Duration
	// BlockFlushGrace holds the flush cut this far behind wall clock so
	// late samples still land in their window. 0 means 5 m.
	BlockFlushGrace time.Duration
	// Admit parameterizes the admission-control layer: the AIMD ingest
	// limiter, CoDel queue shedding, per-agent rate limiting, priority
	// quotas, and the memory watermark. The zero value enables the
	// limiter and CoDel with their defaults and leaves rate limiting and
	// the watermark off.
	Admit admit.Config
	// Anomaly is the optional streaming anomaly-detection engine. Its
	// Lookup must be the store's JobFingerprint. With it set the apply
	// path (live ingest, WAL replay, replicated apply) feeds every batch
	// to the engine, GET /v1/anomalies serves its events, alert state
	// rides snapshots, and a follower's engine stays silent until
	// promotion. The server owns the engine: Close shuts it down.
	Anomaly *anomaly.Engine
}

// DefaultConfig returns the sizing powserved starts with.
func DefaultConfig() Config {
	return Config{QueueDepth: 256, IngestWorkers: 4, MaxBatchBytes: 8 << 20, RequestTimeout: 10 * time.Second}
}

// Server wires the TSDB, the prediction model, and the HTTP API.
type Server struct {
	store *tsdb.Store
	model *mlearn.BDT // may be nil: predict answers 503
	cfg   Config

	mux     *http.ServeMux
	metrics *metrics
	dedup   *tsdb.Deduper
	dur     *durability     // nil: ingest is memory-only (no WAL)
	anom    *anomaly.Engine // nil: anomaly detection disabled
	ready   atomic.Bool     // false until recovery completes

	// elector is the optional leader-election state machine (see
	// election.go); nil unless StartElection wired one. With it set, a
	// primary only acks while it holds the leader lease, and a deposed
	// primary automatically rejoins its successor as a follower.
	elector atomic.Pointer[elect.Elector]

	// ingestQ is the bounded ingest queue with CoDel shedding: Push
	// races Close safely (errors, never panics), and overdue entries are
	// shed oldest-first via onIngestShed under sustained overload.
	ingestQ *admit.Queue[queuedBatch]
	// adm is the admission-control state: AIMD limiter, priority gate,
	// per-agent rate buckets, memory watermark. See admit.go.
	adm *admission
	// flushStop terminates the background block-flush and memory-monitor
	// loops (see query.go and admit.go).
	flushStop chan struct{}
	flushWG   sync.WaitGroup
	workerWG  sync.WaitGroup
	draining  atomic.Bool
}

// queuedBatch is one ingest-queue entry: the samples plus the WAL
// sequence number that recorded them (0 when durability is off), the
// batch's trace ID for the apply-stage trace event, the (agent, seq)
// delivery stamp so a CoDel shed can free the sequence number, and the
// ack channel the handler waits on — true once the batch is applied,
// false when it was shed before apply, so a 202 is never written for
// samples that did not reach the store.
type queuedBatch struct {
	lsn     uint64
	samples []trace.PowerSample
	trace   string
	agent   string
	seq     uint64
	resc    chan bool // buffered(1); nil in tests that bypass the ack
}

// New builds a server around a store and an optional prediction model,
// and starts its ingest workers. Call Close (or Shutdown) to drain.
func New(store *tsdb.Store, model *mlearn.BDT, cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.IngestWorkers <= 0 {
		cfg.IngestWorkers = 4
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	s := &Server{
		store:     store,
		model:     model,
		cfg:       cfg,
		mux:       http.NewServeMux(),
		dedup:     tsdb.NewDeduper(tsdb.DedupConfig{Window: cfg.DedupWindow}),
		anom:      cfg.Anomaly,
		flushStop: make(chan struct{}),
	}
	s.ready.Store(true) // nothing to recover
	s.metrics = newMetrics(func() int { return s.ingestQ.Len() })
	if s.anom != nil {
		s.metrics.reg.AddCollector(s.collectAnomaly)
	}
	s.initAdmit()
	s.metrics.logger = obs.Component(cfg.Logger, "serve")
	switch {
	case cfg.SlowRequest > 0:
		s.metrics.slowThreshold = cfg.SlowRequest
	case cfg.SlowRequest == 0:
		s.metrics.slowThreshold = time.Second
	}
	for i := 0; i < cfg.IngestWorkers; i++ {
		s.workerWG.Add(1)
		go s.ingestWorker()
	}
	s.routes()
	s.startBlockLoop()
	s.startMemLoop()
	return s
}

// NewDurable builds a crash-safe server: it locks and validates the data
// directory immediately (fail-fast on a missing, unwritable, or already
// locked dir) but does not replay — call Recover before serving traffic.
// Until Recover completes, /readyz answers 503 and ingest answers 503.
func NewDurable(store *tsdb.Store, model *mlearn.BDT, cfg Config, dcfg DurabilityConfig) (*Server, error) {
	dur, err := openDurability(dcfg)
	if err != nil {
		return nil, err
	}
	s := New(store, model, cfg)
	s.dur = dur
	if s.anom != nil && dur.repl != nil && dur.repl.isFollower.Load() {
		// A follower tracks alert state silently so a failover never
		// double-pages; promotion re-enables sink delivery.
		s.anom.SetDeliver(false)
	}
	s.metrics.reg.AddCollector(dur.collect)
	dur.repl.onSend = func(records int64) { s.metrics.replSend.Observe(float64(records)) }
	s.ready.Store(false) // Recover flips it
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/samples", s.metrics.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("GET /v1/nodes/{id}/series", s.metrics.instrument("node_series", s.handleNodeSeries))
	s.mux.HandleFunc("GET /v1/jobs", s.metrics.instrument("jobs", s.handleJobs))
	s.mux.HandleFunc("GET /v1/jobs/{id}/power", s.metrics.instrument("job_power", s.handleJobPower))
	s.mux.HandleFunc("POST /v1/predict", s.metrics.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("GET /v1/summary", s.metrics.instrument("summary", s.handleSummary))
	anomalies := s.metrics.instrument("anomalies", s.handleAnomalies)
	s.mux.HandleFunc("GET /v1/anomalies", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") == "1" {
			// The NDJSON stream is long-lived and needs the raw
			// http.Flusher; latency accounting would only measure the
			// client's disconnect time.
			s.handleAnomalies(w, r)
			return
		}
		anomalies(w, r)
	})
	s.mux.HandleFunc("GET /v1/query/range", s.metrics.instrument("query_range", s.gated(admit.ClassQuery, "query", s.handleQueryRange)))
	s.mux.HandleFunc("GET /v1/query/nodes", s.metrics.instrument("query_nodes", s.gated(admit.ClassQuery, "query", s.handleQueryNodes)))
	s.mux.HandleFunc("GET /v1/query/distribution", s.metrics.instrument("query_distribution", s.gated(admit.ClassQuery, "query", s.handleQueryDistribution)))
	s.mux.HandleFunc("POST /v1/admin/flush", s.metrics.instrument("admin_flush", s.gated(admit.ClassAdmin, "admin", s.handleAdminFlush)))
	s.mux.HandleFunc("POST /v1/admin/scrub", s.metrics.instrument("admin_scrub", s.gated(admit.ClassAdmin, "admin", s.handleAdminScrub)))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/traces/recent", s.metrics.traces.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/repl/stream", s.handleReplStream)
	s.mux.HandleFunc("GET /v1/repl/snapshot", s.metrics.instrument("repl_snapshot", s.handleReplSnapshot))
	s.mux.HandleFunc("POST /v1/repl/ack", s.metrics.instrument("repl_ack", s.handleReplAck))
	s.mux.HandleFunc("GET /v1/repl/frontier", s.metrics.instrument("repl_frontier", s.handleReplFrontier))
	s.mux.HandleFunc("POST /v1/promote", s.metrics.instrument("promote", s.handlePromote))
}

// Handler returns the fully instrumented root handler with the request
// timeout applied (ingest and predict are fast; the timeout guards the
// query endpoints against pathological windows).
func (s *Server) Handler() http.Handler {
	timed := timeoutJSON(s.mux, s.cfg.RequestTimeout)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The replication stream is long-lived by design and needs
		// http.Flusher — http.TimeoutHandler provides neither, so it is
		// routed around the timeout wrapper. The anomaly event stream
		// (stream=1) is the same kind of connection.
		if r.URL.Path == "/v1/repl/stream" ||
			(r.URL.Path == "/v1/anomalies" && r.URL.Query().Get("stream") == "1") {
			s.mux.ServeHTTP(w, r)
			return
		}
		timed.ServeHTTP(w, r)
	})
}

// timeoutJSON wraps h in http.TimeoutHandler with a JSON timeout body
// that is actually served as JSON: TimeoutHandler writes its body with
// whatever headers the underlying writer already carries, so the
// Content-Type is pre-set here. Handlers that complete in time replace
// it with their own (TimeoutHandler copies their headers over).
func timeoutJSON(h http.Handler, d time.Duration) http.Handler {
	th := http.TimeoutHandler(h, d, `{"error":"request timeout"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

func (s *Server) ingestWorker() {
	defer s.workerWG.Done()
	for {
		qb, ok := s.ingestQ.Pop()
		if !ok {
			return
		}
		// Under durability the apply and its markDone are one unit wrt
		// the snapshot capture lock, so a snapshot never records an LSN
		// as applied while its samples are only half-folded.
		if s.dur != nil {
			s.dur.applyMu.RLock()
		}
		applyStart := time.Now()
		err := s.store.Append(qb.samples)
		if err == nil && s.anom != nil {
			// Inside the applyMu read lock (when durable): a snapshot's
			// engine-state cut lands on the same batch boundary as its
			// store state, so restore never re-fires or loses an alert.
			s.anom.ObserveBatch(qb.samples, qb.trace)
		}
		if s.dur != nil {
			s.dur.tracker.Load().markDone(qb.lsn)
			s.dur.applyMu.RUnlock()
			// The record is applied; if it is also fsynced this makes it
			// streamable to followers right away.
			s.dur.advanceRepl()
		}
		if err != nil {
			// Validated before enqueue; a failure here is a programming
			// error — count it, don't crash the drain loop.
			s.metrics.batchesInvalid.Add(1)
		} else {
			s.metrics.samplesIngested.Add(int64(len(qb.samples)))
			if qb.trace != "" {
				d := time.Since(applyStart)
				s.metrics.traces.Record(obs.TraceEvent{
					Trace: qb.trace, Stage: "apply", LSN: int64(qb.lsn),
					Samples: len(qb.samples), DurMS: float64(d) / float64(time.Millisecond),
					Unix: time.Now().Unix(), Status: "applied",
				})
				s.metrics.logger.Debug("batch applied",
					slog.String("trace_id", qb.trace),
					slog.Uint64("lsn", qb.lsn),
					slog.Int("samples", len(qb.samples)))
			}
		}
		if qb.resc != nil {
			qb.resc <- true
		}
	}
}

// traceIngest records the ingest-stage trace event and its debug log
// line after a successful accept; lsn is 0 on the memory-only path.
func (s *Server) traceIngest(traceID string, batch trace.SampleBatch, lsn uint64, d time.Duration) {
	s.metrics.ingestE2E.ObserveDuration(d)
	if traceID == "" {
		return
	}
	s.metrics.traces.Record(obs.TraceEvent{
		Trace: traceID, Stage: "ingest", Agent: batch.AgentID, Seq: int64(batch.Seq),
		LSN: int64(lsn), Samples: len(batch.Samples),
		DurMS: float64(d) / float64(time.Millisecond),
		Unix:  time.Now().Unix(), Status: "accepted",
	})
	s.metrics.logger.Debug("batch ingested",
		slog.String("trace_id", traceID),
		slog.String("agent", batch.AgentID),
		slog.Uint64("seq", batch.Seq),
		slog.Uint64("lsn", lsn),
		slog.Int("samples", len(batch.Samples)),
		slog.Duration("dur", d))
}

// Close stops accepting ingest work and drains the queue. Safe against
// concurrent ingest handlers: a Push racing Close gets ErrClosed (never
// a panic), and workers apply the remaining backlog before exiting.
func (s *Server) Close() {
	if s.draining.Swap(true) {
		return
	}
	s.ingestQ.Close(true)
	close(s.flushStop)
	s.flushWG.Wait()
	s.workerWG.Wait()
	if s.dur != nil {
		s.dur.close(s)
	}
	if s.anom != nil {
		s.anom.Close()
	}
}

// errJSON writes a JSON error body with the given status.
func errJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds scales the 503 Retry-After hint with ingest queue
// occupancy: a briefly-full queue asks agents back in a second, a deeply
// backed-up one pushes the retry storm further out so the workers can
// drain. occupancy is in [0, 1].
func retryAfterSeconds(depth, capacity int) int {
	if capacity <= 0 {
		return 1
	}
	occ := float64(depth) / float64(capacity)
	if occ < 0 {
		occ = 0
	} else if occ > 1 {
		occ = 1
	}
	return 1 + int(occ*4+0.5) // 1 s empty → 5 s full
}

func (s *Server) retryAfter() int {
	return retryAfterSeconds(s.ingestQ.Len(), s.ingestQ.Cap())
}

// storageUnavailable answers a write request with the storage-degraded
// 503: machine-readable code, Retry-After, and the marker header that
// lets shippers tell "disk trouble, stay put" from "follower, rotate".
func (s *Server) storageUnavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	w.Header().Set(HeaderStorageDegraded, "1")
	errJSONCode(w, http.StatusServiceUnavailable, CodeStorageDegraded, "storage degraded: %s", reason)
}

// ingestResponse is the body of a 202 from POST /v1/samples. Duplicate
// deliveries are acknowledged (the data is already counted — re-sending
// would be wrong) with accepted=0 and duplicate=true.
type ingestResponse struct {
	Accepted  int  `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		errJSON(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		errJSON(w, http.StatusServiceUnavailable, "server recovering")
		return
	}
	if !s.replGateIngest(w, r) {
		return
	}
	if d := s.dur; d != nil && d.storageDegraded() {
		// Reads keep serving; only the write path refuses while the data
		// dir cannot make bytes durable. Shippers spill and retry.
		s.metrics.batchesRejected.Add(1)
		s.storageUnavailable(w, d.degradeReason())
		return
	}
	if s.adm.memDegraded.Load() {
		// Memory pressure: shed before even decoding the body — the
		// cheapest possible refusal while the node works its backlog down.
		s.metrics.batchesRejected.Add(1)
		s.overCapacity(w, "memory", 0)
		return
	}
	start := time.Now()
	var batch trace.SampleBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err := dec.Decode(&batch); err != nil {
		s.metrics.batchesInvalid.Add(1)
		errJSON(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(batch.Samples) == 0 {
		s.metrics.batchesInvalid.Add(1)
		errJSON(w, http.StatusBadRequest, "empty batch")
		return
	}
	if err := batch.Validate(); err != nil {
		s.metrics.batchesInvalid.Add(1)
		errJSON(w, http.StatusBadRequest, "invalid batch: %v", err)
		return
	}
	if batch.Redelivery {
		s.metrics.redeliveries.Add(1)
	}
	if batch.AgentID != "" {
		s.metrics.observeAgent(batch.AgentID, r.Header)
	}
	// Propagate the shipper-minted trace ID: echo it on the response and
	// carry it through the WAL and apply stages so one grep follows the
	// batch end to end.
	traceID := r.Header.Get(obs.HeaderTraceID)
	if traceID != "" {
		w.Header().Set(obs.HeaderTraceID, traceID)
	}
	if batch.AgentID != "" {
		// Per-agent token bucket: one misbehaving agent exhausts its own
		// budget and gets a precise Retry-After; the fleet is untouched.
		if ok, retry := s.adm.buckets.Allow(batch.AgentID); !ok {
			s.metrics.batchesRejected.Add(1)
			s.overCapacity(w, "agent_rate", retry)
			return
		}
	}
	// AIMD limiter: the primary ingest control. Release feeds the ack
	// latency (accept → applied/durable) back into the control loop.
	if !s.adm.limiter.Acquire() {
		s.metrics.batchesRejected.Add(1)
		s.overCapacity(w, "limiter", 0)
		return
	}
	defer func() { s.adm.limiter.Release(time.Since(start)) }()
	if s.dur != nil {
		s.ingestDurable(w, r, batch)
		return
	}
	if batch.AgentID != "" {
		// Mark before enqueue so two racing deliveries of the same
		// (agent, seq) cannot both be counted; rolled back below if the
		// batch is refused.
		if dup, stale := s.dedup.Mark(batch.AgentID, batch.Seq); dup {
			s.metrics.batchesDuplicate.Add(1)
			if stale {
				s.metrics.batchesStale.Add(1)
			}
			writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: 0, Duplicate: true})
			return
		}
	}
	resc := make(chan bool, 1)
	err := s.ingestQ.Push(queuedBatch{
		samples: batch.Samples, trace: traceID,
		agent: batch.AgentID, seq: batch.Seq, resc: resc,
	})
	switch {
	case err == nil:
		if !<-resc {
			// Shed by CoDel before apply: onIngestShed already counted the
			// refusal and freed the sequence number — never ack.
			s.write429(w, "codel", 0)
			return
		}
		s.metrics.batchesAccepted.Add(1)
		writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: len(batch.Samples)})
		s.traceIngest(traceID, batch, 0, time.Since(start))
	case errors.Is(err, admit.ErrClosed):
		if batch.AgentID != "" {
			s.dedup.Forget(batch.AgentID, batch.Seq)
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		errJSON(w, http.StatusServiceUnavailable, "server draining")
	default:
		// Backpressure: bounded queue full. The agent owns the retry — and
		// must be able to re-send this sequence number successfully.
		if batch.AgentID != "" {
			s.dedup.Forget(batch.AgentID, batch.Seq)
		}
		s.metrics.batchesRejected.Add(1)
		s.overCapacity(w, "queue", 0)
	}
}

// ingestDurable is the crash-safe accept path. Under one applyMu read
// lock — one atomic unit from the snapshot capturer's point of view — it
// marks the delivery stamp, appends the batch to the WAL, and enqueues
// it; seqMu keeps LSN order equal to queue order so replay applies
// records exactly as the live server did. The 202 is only written after
// WaitDurable, so an acknowledged batch survives a crash.
func (s *Server) ingestDurable(w http.ResponseWriter, r *http.Request, batch trace.SampleBatch) {
	start := time.Now()
	traceID := r.Header.Get(obs.HeaderTraceID)
	d := s.dur
	d.applyMu.RLock()
	if batch.AgentID != "" {
		if dup, stale := s.dedup.Mark(batch.AgentID, batch.Seq); dup {
			d.applyMu.RUnlock()
			s.metrics.batchesDuplicate.Add(1)
			if stale {
				s.metrics.batchesStale.Add(1)
			}
			writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: 0, Duplicate: true})
			return
		}
	}
	body, err := encodeWALBody(batch.AgentID, batch.Seq, batch.Samples, traceID)
	if err != nil {
		if batch.AgentID != "" {
			s.dedup.Forget(batch.AgentID, batch.Seq)
		}
		d.applyMu.RUnlock()
		errJSON(w, http.StatusInternalServerError, "encoding wal record: %v", err)
		return
	}
	d.seqMu.Lock()
	lsn, err := d.log.Append(body)
	if err != nil {
		d.seqMu.Unlock()
		if batch.AgentID != "" {
			s.dedup.Forget(batch.AgentID, batch.Seq)
		}
		d.applyMu.RUnlock()
		// A failing WAL (transient ENOSPC/EIO or a poisoned log) is
		// storage trouble, not a client error: 503 + Retry-After tells
		// the shipper to spill and come back, exactly like backpressure.
		s.metrics.batchesRejected.Add(1)
		s.storageUnavailable(w, fmt.Sprintf("wal append: %v", err))
		return
	}
	resc := make(chan bool, 1)
	pushErr := admit.ErrClosed
	if !s.draining.Load() {
		pushErr = s.ingestQ.Push(queuedBatch{
			lsn: lsn, samples: batch.Samples, trace: traceID,
			agent: batch.AgentID, seq: batch.Seq, resc: resc,
		})
	}
	d.seqMu.Unlock()
	if pushErr != nil {
		// The record is in the WAL but will never be applied: cancel it
		// with a tombstone so replay skips it, and free the agent to
		// re-send the same sequence number. The in-memory set must grow
		// before markDone — once the LSN is inside the done watermark the
		// replication stream may read it.
		d.markTombstoned(lsn)
		tr := d.tracker.Load()
		if tlsn, terr := d.log.AppendTombstone(lsn); terr == nil {
			tr.markDone(tlsn)
		}
		tr.markDone(lsn)
		if batch.AgentID != "" {
			s.dedup.Forget(batch.AgentID, batch.Seq)
		}
		d.applyMu.RUnlock()
		s.metrics.batchesRejected.Add(1)
		if errors.Is(pushErr, admit.ErrFull) {
			s.overCapacity(w, "queue", 0)
		} else {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			errJSON(w, http.StatusServiceUnavailable, "server draining")
		}
		return
	}
	d.applyMu.RUnlock()
	d.appendsSinceSnap.Add(1)
	// Fsync wait happens outside every lock: group-commit latency never
	// blocks snapshots or other accepts.
	if err := d.log.WaitDurable(lsn); err != nil {
		// Fsyncgate: the fsync covering this LSN failed, so the record's
		// durability is unknowable and the WAL has sealed itself — no
		// later fsync can retroactively save it. Never ack. The 503 makes
		// the agent re-send; the batch is queued and will be applied, and
		// the dedup mark turns the retry into a counted-once duplicate
		// ack once a recovered (restarted) node can make it durable.
		// (The queued entry stays owned by the worker or the shed
		// callback — no resc wait here.)
		s.storageUnavailable(w, fmt.Sprintf("wal sync: %v", err))
		return
	}
	if !<-resc {
		// CoDel shed the batch after it was WAL'd: onIngestShed has
		// already tombstoned the record and freed the sequence number —
		// never ack samples that did not reach the store.
		s.write429(w, "codel", 0)
		return
	}
	if rs := d.repl; rs != nil && rs.cfg.SyncAck && !rs.isFollower.Load() {
		// Semi-sync replication: hold the 202 until every registered
		// follower has durably applied the record (no follower, no wait).
		// The record is fsynced here, so publishing the watermark inline
		// starts the stream hop immediately instead of on the next tick.
		d.advanceRepl()
		ctx, cancel := context.WithTimeout(r.Context(), rs.cfg.SyncAckTimeout)
		err := rs.source.WaitReplicated(ctx, lsn)
		cancel()
		if err != nil {
			// Durable locally but not replicated: refuse the ack so the
			// shipper re-sends; the dedup index turns the retry into a
			// counted-once duplicate once a follower is reachable again.
			errJSON(w, http.StatusInternalServerError, "replication ack: %v", err)
			return
		}
	}
	s.metrics.batchesAccepted.Add(1)
	writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: len(batch.Samples)})
	s.traceIngest(traceID, batch, lsn, time.Since(start))
}

func (s *Server) handleNodeSeries(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || node < 0 {
		errJSON(w, http.StatusBadRequest, "bad node id %q", r.PathValue("id"))
		return
	}
	var from, to int64
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.ParseInt(v, 10, 64); err != nil {
			errJSON(w, http.StatusBadRequest, "bad from: %v", err)
			return
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = strconv.ParseInt(v, 10, 64); err != nil {
			errJSON(w, http.StatusBadRequest, "bad to: %v", err)
			return
		}
	}
	points := s.store.NodeSeries(node, from, to)
	writeJSON(w, http.StatusOK, map[string]any{"node": node, "points": points})
}

func (s *Server) handleJobPower(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		errJSON(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	stats, ok := s.store.JobPower(id)
	if !ok {
		errJSON(w, http.StatusNotFound, "no samples for job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	ids := s.store.Jobs()
	if ids == nil {
		ids = []uint64{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": ids})
}

// PredictRequest is the body of POST /v1/predict: the paper's three
// pre-execution features.
type PredictRequest struct {
	User      string  `json:"user"`
	Nodes     int     `json:"nodes"`
	WallHours float64 `json:"wall_hours"`
}

// PredictResponse is the prediction plus the leaf's uncertainty — what a
// power-aware scheduler needs to size cap headroom.
type PredictResponse struct {
	PredictedW float64 `json:"predicted_w"`
	LeafStdW   float64 `json:"leaf_std_w"`
	LeafN      int     `json:"leaf_n"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.model == nil {
		errJSON(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		errJSON(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Nodes <= 0 || req.WallHours <= 0 {
		errJSON(w, http.StatusBadRequest, "nodes and wall_hours must be positive")
		return
	}
	pred, std, n := s.model.PredictWithStd(mlearn.Features{
		User: req.User, Nodes: req.Nodes, WallHours: req.WallHours,
	})
	writeJSON(w, http.StatusOK, PredictResponse{PredictedW: pred, LeafStdW: std, LeafN: n})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Summarize())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
}

// Registry exposes the server's metrics registry, e.g. for serving the
// same exposition on a separate debug listener.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// Traces exposes the server's recent-trace ring for the debug listener.
func (s *Server) Traces() *obs.TraceRing { return s.metrics.traces }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"ingested": s.store.Ingested(),
	})
}

// handleReadyz is the readiness probe: unlike /healthz (process up), it
// answers 503 while the server cannot usefully take traffic — during
// recovery replay, before Recover has run, and during graceful drain.
// The body is machine-readable: besides "status", a replicated node
// reports its role, fencing epoch, apply frontier, and replication lag,
// so load balancers and failover drills can route on one probe.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, s.readyzBody("draining"))
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, s.readyzBody("recovering"))
	default:
		writeJSON(w, http.StatusOK, s.readyzBody("ready"))
	}
}

func (s *Server) readyzBody(status string) map[string]any {
	body := map[string]any{"status": status}
	// Memory pressure is not unreadiness (reads keep serving, writes shed
	// with an actionable 429), but probes and drills route on it.
	body["mem_degraded"] = s.adm.memDegraded.Load()
	if s.adm.cfg.MemWatermark > 0 {
		body["mem_bytes"] = s.memBytes()
		body["mem_watermark_bytes"] = s.adm.cfg.MemWatermark
	}
	if s.anom != nil {
		body["anomaly"] = s.anomalyReadyz()
	}
	d := s.dur
	if d == nil {
		return body
	}
	// Degraded storage is not unreadiness: the node still serves reads
	// and rejects writes with an actionable 503, so /readyz stays 200
	// and reports the condition for probes that want to route on it.
	body["storage_degraded"] = d.storageDegraded()
	if reason := d.degradeReason(); reason != "" {
		body["storage_reason"] = reason
	}
	if d.repl == nil {
		return body
	}
	rs := d.repl
	body["role"] = rs.role()
	body["epoch"] = rs.epoch.Epoch()
	body["fenced"] = rs.fenced.Load()
	var applied uint64
	if d.recovered.Load() {
		applied = d.tracker.Load().frontierLSN()
	}
	body["applied_lsn"] = applied
	body["repl_applied_lsn"] = rs.replApplied.Load()
	body["repl_lag_records"] = rs.lagRecords()
	body["rejoins"] = rs.rejoins.Load()
	body["diverged_records"] = rs.divergedRecords.Load()
	if el := s.elector.Load(); el != nil {
		st := el.Status()
		body["election"] = map[string]any{
			"role":               st.Role,
			"leader_id":          st.LeaderID,
			"leader_url":         st.LeaderURL,
			"epoch":              st.Epoch,
			"has_lease":          st.HasLease,
			"lease_remaining_ms": st.LeaseRemaining.Milliseconds(),
			"witness_ok":         st.WitnessOK,
			"last_transition":    st.LastTransition,
		}
	}
	return body
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// shuts down gracefully: stop accepting connections, finish in-flight
// requests, drain the ingest queue. The returned addr channel reports the
// bound address (useful with ":0").
func (s *Server) ListenAndServe(ctx context.Context, addr string) (boundAddr string, done <-chan error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("serve: %w", err)
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		serveErr := hs.Serve(ln)
		if errors.Is(serveErr, http.ErrServerClosed) {
			serveErr = nil
		}
		errc <- serveErr
	}()
	result := make(chan error, 1)
	go func() {
		select {
		case <-ctx.Done():
			// Follower streams never end on their own; cut them so the
			// graceful shutdown below does not wait out its full timeout.
			s.StopReplicationStreams()
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			shutErr := hs.Shutdown(shutCtx)
			s.Close()
			if serveErr := <-errc; serveErr != nil {
				shutErr = serveErr
			}
			result <- shutErr
		case serveErr := <-errc:
			s.Close()
			result <- serveErr
		}
	}()
	return ln.Addr().String(), result, nil
}
