package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcpower/internal/mlearn"
	"hpcpower/internal/rng"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
)

func trainedModel(t testing.TB) *mlearn.BDT {
	t.Helper()
	src := rng.New(7)
	users := []string{"u001", "u002", "u003"}
	var samples []mlearn.Sample
	for i := 0; i < 200; i++ {
		u := int(src.Uint64() % 3)
		samples = append(samples, mlearn.Sample{
			Features: mlearn.Features{
				User:      users[u],
				Nodes:     1 + int(src.Uint64()%32),
				WallHours: 0.5 + 12*src.Float64(),
			},
			PowerW: 100 + 30*float64(u) + 5*src.Float64(),
		})
	}
	m := mlearn.NewBDT(mlearn.DefaultTreeParams())
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(tsdb.New(tsdb.Config{Shards: 4, RingLen: 256}), trainedModel(t), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// waitIngested polls until the store has absorbed want samples (ingest is
// asynchronous behind the bounded queue).
func waitIngested(t testing.TB, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.store.Ingested() < want {
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d before timeout", s.store.Ingested(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIngestAndQueryRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	batch := trace.SampleBatch{}
	for m := 0; m < 10; m++ {
		for n := 0; n < 4; n++ {
			batch.Samples = append(batch.Samples, trace.PowerSample{
				Node: n, JobID: 5, Unix: int64(6000 + 60*m), PowerW: 100 + float64(n),
			})
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/samples", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	waitIngested(t, s, 40)

	// Node series.
	resp, body = get(t, ts.URL+"/v1/nodes/2/series?from=6000&to=6300")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("series status %d: %s", resp.StatusCode, body)
	}
	var series struct {
		Node   int          `json:"node"`
		Points []tsdb.Point `json:"points"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	if series.Node != 2 || len(series.Points) != 6 {
		t.Errorf("series = node %d with %d points", series.Node, len(series.Points))
	}

	// Live job characterization.
	resp, body = get(t, ts.URL+"/v1/jobs/5/power")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job power status %d: %s", resp.StatusCode, body)
	}
	var js tsdb.JobStats
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.Samples != 40 || js.Nodes != 4 || js.MeanW < 100 || js.MeanW > 104 {
		t.Errorf("job stats = %+v", js)
	}
	// Spread across nodes is exactly 3 W every minute.
	if js.AvgSpatialSpreadW < 2.99 || js.AvgSpatialSpreadW > 3.01 {
		t.Errorf("spatial spread = %v", js.AvgSpatialSpreadW)
	}

	// Unknown job → 404.
	resp, _ = get(t, ts.URL+"/v1/jobs/999/power")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}

	// Summary.
	resp, body = get(t, ts.URL+"/v1/summary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary status %d", resp.StatusCode)
	}
	var sum tsdb.Summary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Samples != 40 || sum.Nodes != 4 || sum.Jobs != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestIngestRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	for name, body := range map[string]string{
		"not json":       "xyzzy",
		"empty batch":    `{"samples":[]}`,
		"negative node":  `{"samples":[{"node":-1,"job":1,"t":60,"w":100}]}`,
		"negative power": `{"samples":[{"node":1,"job":1,"t":60,"w":-5}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestIngestBackpressure fills the bounded queue (no workers draining it)
// and checks the 503 + Retry-After contract, with every accepted batch
// accounted and none dropped.
func TestIngestBackpressure(t *testing.T) {
	store := tsdb.New(tsdb.Config{Shards: 2, RingLen: 64})
	// A server whose single worker is blocked: saturate the queue first.
	s := New(store, nil, Config{QueueDepth: 4, IngestWorkers: 1})
	// Stall the worker by pre-filling the queue faster than it drains:
	// direct channel access keeps the test deterministic.
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	batch := trace.SampleBatch{Samples: []trace.PowerSample{{Node: 1, JobID: 1, Unix: 60, PowerW: 10}}}
	accepted, rejected := 0, 0
	for i := 0; i < 2000; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/samples", batch)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if accepted == 0 {
		t.Error("no batch accepted")
	}
	// Every accepted sample must eventually reach the store: accepted
	// means enqueued, and the queue is drained, not dropped.
	waitIngested(t, s, int64(accepted))
	if got := store.Ingested(); got != int64(accepted) {
		t.Errorf("store ingested %d, want %d (accepted)", got, accepted)
	}
}

func TestPredictMatchesOfflineModel(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mlearn.LoadBDT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := New(tsdb.New(tsdb.DefaultConfig()), loaded, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	for _, f := range []PredictRequest{
		{User: "u001", Nodes: 4, WallHours: 2},
		{User: "u003", Nodes: 16, WallHours: 11.5},
		{User: "unseen", Nodes: 1, WallHours: 0.5},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/predict", f)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d: %s", resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		// The served prediction must equal the offline model exactly.
		want, wantStd, wantN := m.PredictWithStd(mlearn.Features{
			User: f.User, Nodes: f.Nodes, WallHours: f.WallHours,
		})
		if pr.PredictedW != want || pr.LeafStdW != wantStd || pr.LeafN != wantN {
			t.Errorf("predict(%+v) = %+v, want (%v, %v, %d)", f, pr, want, wantStd, wantN)
		}
	}

	// Invalid request.
	resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{User: "u001"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid predict status %d", resp.StatusCode)
	}
}

func TestPredictWithoutModel(t *testing.T) {
	s := New(tsdb.New(tsdb.DefaultConfig()), nil, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{User: "u", Nodes: 1, WallHours: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("predict without model: status %d", resp.StatusCode)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	batch := trace.SampleBatch{Samples: []trace.PowerSample{{Node: 0, JobID: 1, Unix: 60, PowerW: 50}}}
	postJSON(t, ts.URL+"/v1/samples", batch)
	waitIngested(t, s, 1)
	get(t, ts.URL+"/v1/jobs/1/power")

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"powserved_samples_ingested_total 1",
		"powserved_batches_accepted_total 1",
		`powserved_requests_total{endpoint="ingest"} 1`,
		`powserved_requests_total{endpoint="job_power"} 1`,
		"powserved_ingest_queue_depth",
		"powserved_request_seconds_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestGracefulShutdown exercises ListenAndServe: concurrent ingest while
// the context is cancelled; the server must drain the queue (nothing
// accepted is lost) and exit cleanly.
func TestGracefulShutdown(t *testing.T) {
	store := tsdb.New(tsdb.Config{Shards: 4, RingLen: 64})
	s := New(store, nil, Config{QueueDepth: 64, IngestWorkers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	addr, done, err := s.ListenAndServe(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	var mu sync.Mutex
	accepted := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				batch := trace.SampleBatch{Samples: []trace.PowerSample{
					{Node: w, JobID: uint64(w + 1), Unix: int64(60 * (i + 1)), PowerW: 100},
				}}
				buf, _ := json.Marshal(batch)
				resp, err := http.Post(url+"/v1/samples", "application/json", bytes.NewReader(buf))
				if err != nil {
					return // server may already be shutting down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusAccepted {
					mu.Lock()
					accepted++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown timed out")
	}
	mu.Lock()
	want := int64(accepted)
	mu.Unlock()
	if got := store.Ingested(); got != want {
		t.Errorf("after drain: ingested %d, want %d", got, want)
	}
	// Port is released.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}
