package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpcpower/internal/mlearn"
	"hpcpower/internal/rng"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
)

func trainedModel(t testing.TB) *mlearn.BDT {
	t.Helper()
	src := rng.New(7)
	users := []string{"u001", "u002", "u003"}
	var samples []mlearn.Sample
	for i := 0; i < 200; i++ {
		u := int(src.Uint64() % 3)
		samples = append(samples, mlearn.Sample{
			Features: mlearn.Features{
				User:      users[u],
				Nodes:     1 + int(src.Uint64()%32),
				WallHours: 0.5 + 12*src.Float64(),
			},
			PowerW: 100 + 30*float64(u) + 5*src.Float64(),
		})
	}
	m := mlearn.NewBDT(mlearn.DefaultTreeParams())
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(tsdb.New(tsdb.Config{Shards: 4, RingLen: 256}), trainedModel(t), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// waitIngested polls until the store has absorbed want samples (ingest is
// asynchronous behind the bounded queue).
func waitIngested(t testing.TB, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.store.Ingested() < want {
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d before timeout", s.store.Ingested(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIngestAndQueryRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	batch := trace.SampleBatch{}
	for m := 0; m < 10; m++ {
		for n := 0; n < 4; n++ {
			batch.Samples = append(batch.Samples, trace.PowerSample{
				Node: n, JobID: 5, Unix: int64(6000 + 60*m), PowerW: 100 + float64(n),
			})
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/samples", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	waitIngested(t, s, 40)

	// Node series.
	resp, body = get(t, ts.URL+"/v1/nodes/2/series?from=6000&to=6300")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("series status %d: %s", resp.StatusCode, body)
	}
	var series struct {
		Node   int          `json:"node"`
		Points []tsdb.Point `json:"points"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	if series.Node != 2 || len(series.Points) != 6 {
		t.Errorf("series = node %d with %d points", series.Node, len(series.Points))
	}

	// Live job characterization.
	resp, body = get(t, ts.URL+"/v1/jobs/5/power")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job power status %d: %s", resp.StatusCode, body)
	}
	var js tsdb.JobStats
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.Samples != 40 || js.Nodes != 4 || js.MeanW < 100 || js.MeanW > 104 {
		t.Errorf("job stats = %+v", js)
	}
	// Spread across nodes is exactly 3 W every minute.
	if js.AvgSpatialSpreadW < 2.99 || js.AvgSpatialSpreadW > 3.01 {
		t.Errorf("spatial spread = %v", js.AvgSpatialSpreadW)
	}

	// Unknown job → 404.
	resp, _ = get(t, ts.URL+"/v1/jobs/999/power")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}

	// Summary.
	resp, body = get(t, ts.URL+"/v1/summary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary status %d", resp.StatusCode)
	}
	var sum tsdb.Summary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Samples != 40 || sum.Nodes != 4 || sum.Jobs != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestIngestRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	for name, body := range map[string]string{
		"not json":       "xyzzy",
		"empty batch":    `{"samples":[]}`,
		"negative node":  `{"samples":[{"node":-1,"job":1,"t":60,"w":100}]}`,
		"negative power": `{"samples":[{"node":1,"job":1,"t":60,"w":-5}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestIngestBackpressure fills the bounded queue (no workers draining it)
// and checks the 503 + Retry-After contract, with every accepted batch
// accounted and none dropped.
func TestIngestBackpressure(t *testing.T) {
	store := tsdb.New(tsdb.Config{Shards: 2, RingLen: 64})
	// A server whose single worker is blocked: saturate the queue first.
	s := New(store, nil, Config{QueueDepth: 4, IngestWorkers: 1})
	// Stall the worker by pre-filling the queue faster than it drains:
	// direct channel access keeps the test deterministic.
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	batch := trace.SampleBatch{Samples: []trace.PowerSample{{Node: 1, JobID: 1, Unix: 60, PowerW: 10}}}
	accepted, rejected := 0, 0
	for i := 0; i < 2000; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/samples", batch)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if accepted == 0 {
		t.Error("no batch accepted")
	}
	// Every accepted sample must eventually reach the store: accepted
	// means enqueued, and the queue is drained, not dropped.
	waitIngested(t, s, int64(accepted))
	if got := store.Ingested(); got != int64(accepted) {
		t.Errorf("store ingested %d, want %d (accepted)", got, accepted)
	}
}

func TestPredictMatchesOfflineModel(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mlearn.LoadBDT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := New(tsdb.New(tsdb.DefaultConfig()), loaded, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	for _, f := range []PredictRequest{
		{User: "u001", Nodes: 4, WallHours: 2},
		{User: "u003", Nodes: 16, WallHours: 11.5},
		{User: "unseen", Nodes: 1, WallHours: 0.5},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/predict", f)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d: %s", resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		// The served prediction must equal the offline model exactly.
		want, wantStd, wantN := m.PredictWithStd(mlearn.Features{
			User: f.User, Nodes: f.Nodes, WallHours: f.WallHours,
		})
		if pr.PredictedW != want || pr.LeafStdW != wantStd || pr.LeafN != wantN {
			t.Errorf("predict(%+v) = %+v, want (%v, %v, %d)", f, pr, want, wantStd, wantN)
		}
	}

	// Invalid request.
	resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{User: "u001"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid predict status %d", resp.StatusCode)
	}
}

func TestPredictWithoutModel(t *testing.T) {
	s := New(tsdb.New(tsdb.DefaultConfig()), nil, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{User: "u", Nodes: 1, WallHours: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("predict without model: status %d", resp.StatusCode)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	batch := trace.SampleBatch{Samples: []trace.PowerSample{{Node: 0, JobID: 1, Unix: 60, PowerW: 50}}}
	postJSON(t, ts.URL+"/v1/samples", batch)
	waitIngested(t, s, 1)
	get(t, ts.URL+"/v1/jobs/1/power")

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"powserved_samples_ingested_total 1",
		"powserved_batches_accepted_total 1",
		`powserved_requests_total{endpoint="ingest"} 1`,
		`powserved_requests_total{endpoint="job_power"} 1`,
		"powserved_ingest_queue_depth",
		"powserved_request_seconds_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestGracefulShutdown exercises ListenAndServe: concurrent ingest while
// the context is cancelled; the server must drain the queue (nothing
// accepted is lost) and exit cleanly.
func TestGracefulShutdown(t *testing.T) {
	store := tsdb.New(tsdb.Config{Shards: 4, RingLen: 64})
	s := New(store, nil, Config{QueueDepth: 64, IngestWorkers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	addr, done, err := s.ListenAndServe(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	var mu sync.Mutex
	accepted := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				batch := trace.SampleBatch{Samples: []trace.PowerSample{
					{Node: w, JobID: uint64(w + 1), Unix: int64(60 * (i + 1)), PowerW: 100},
				}}
				buf, _ := json.Marshal(batch)
				resp, err := http.Post(url+"/v1/samples", "application/json", bytes.NewReader(buf))
				if err != nil {
					return // server may already be shutting down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusAccepted {
					mu.Lock()
					accepted++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown timed out")
	}
	mu.Lock()
	want := int64(accepted)
	mu.Unlock()
	if got := store.Ingested(); got != want {
		t.Errorf("after drain: ingested %d, want %d", got, want)
	}
	// Port is released.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestIngestDeduplicates delivers the same (agent, seq) batch twice:
// the second must be acknowledged without re-counting, and both the
// duplicate and redelivery counters must surface on /metrics.
func TestIngestDeduplicates(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	batch := trace.SampleBatch{
		AgentID: "agent-x", Seq: 1,
		Samples: []trace.PowerSample{{Node: 1, JobID: 7, Unix: 60, PowerW: 100}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/samples", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first delivery: %d %s", resp.StatusCode, body)
	}
	waitIngested(t, s, 1)

	// Redelivery of the same sequence: acknowledged, not re-counted.
	batch.Redelivery = true
	resp, body = postJSON(t, ts.URL+"/v1/samples", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("redelivery: %d %s", resp.StatusCode, body)
	}
	var ack struct {
		Accepted  int  `json:"accepted"`
		Duplicate bool `json:"duplicate"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 0 || !ack.Duplicate {
		t.Errorf("redelivery ack = %+v, want accepted=0 duplicate=true", ack)
	}
	time.Sleep(10 * time.Millisecond)
	if got := s.store.Ingested(); got != 1 {
		t.Errorf("store ingested %d after duplicate delivery, want 1", got)
	}
	js, _ := s.store.JobPower(7)
	if js.Samples != 1 {
		t.Errorf("job analytics counted %d samples, want 1 (no double count)", js.Samples)
	}

	// A new sequence from the same agent is accepted normally.
	resp, _ = postJSON(t, ts.URL+"/v1/samples", trace.SampleBatch{
		AgentID: "agent-x", Seq: 2,
		Samples: []trace.PowerSample{{Node: 1, JobID: 7, Unix: 120, PowerW: 101}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seq 2: %d", resp.StatusCode)
	}
	waitIngested(t, s, 2)

	// Stamp validation: agent without seq (and vice versa) is rejected.
	for _, bad := range []trace.SampleBatch{
		{AgentID: "agent-x", Samples: batch.Samples},
		{Seq: 3, Samples: batch.Samples},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/samples", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("invalid stamp %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}

	_, body = get(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"powserved_batches_duplicate_total 1",
		"powserved_redeliveries_total 1",
		`powserved_agent_breaker_state{agent="agent-x"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestIngestRecordsAgentReports checks the agent-health headers a
// shipper stamps on deliveries are republished as /metrics gauges.
func TestIngestRecordsAgentReports(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	batch := trace.SampleBatch{
		AgentID: "node-17", Seq: 1,
		Samples: []trace.PowerSample{{Node: 1, JobID: 1, Unix: 60, PowerW: 50}},
	}
	buf, _ := json.Marshal(batch)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/samples", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderBreakerState, "half-open")
	req.Header.Set(HeaderAgentRetries, "42")
	req.Header.Set(HeaderSpillDepth, "9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		`powserved_agent_breaker_state{agent="node-17"} 1`,
		`powserved_agent_retries{agent="node-17"} 42`,
		`powserved_agent_spill_depth{agent="node-17"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRetryAfterScalesWithQueueOccupancy covers the adaptive
// backpressure hint: empty queue → 1 s, full queue → 5 s, monotonic in
// between — and the hint a real rejection carries reflects a full queue.
func TestRetryAfterScalesWithQueueOccupancy(t *testing.T) {
	const capacity = 64
	prev := 0
	for depth := 0; depth <= capacity; depth += 8 {
		got := retryAfterSeconds(depth, capacity)
		if got < prev {
			t.Errorf("retryAfterSeconds(%d, %d) = %d < previous %d (not monotonic)", depth, capacity, got, prev)
		}
		prev = got
	}
	if got := retryAfterSeconds(0, capacity); got != 1 {
		t.Errorf("empty queue hint = %d, want 1", got)
	}
	if got := retryAfterSeconds(capacity, capacity); got != 5 {
		t.Errorf("full queue hint = %d, want 5", got)
	}
	if retryAfterSeconds(capacity, capacity) <= retryAfterSeconds(capacity/4, capacity) {
		t.Error("hint does not grow as the queue fills")
	}

	// End to end: a rejection from a saturated queue carries the
	// full-queue hint, not the old hardcoded "1".
	s := New(tsdb.New(tsdb.Config{Shards: 2, RingLen: 64}), nil, Config{QueueDepth: 2, IngestWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	batch := trace.SampleBatch{Samples: []trace.PowerSample{{Node: 1, JobID: 1, Unix: 60, PowerW: 10}}}
	sawFull := false
	for i := 0; i < 500 && !sawFull; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/samples", batch)
		if resp.StatusCode == http.StatusServiceUnavailable {
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil {
				t.Fatalf("unparseable Retry-After %q", resp.Header.Get("Retry-After"))
			}
			if ra < 2 {
				t.Fatalf("full-queue Retry-After = %d, want scaled value ≥ 2", ra)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Skip("queue never saturated (machine too fast); helper assertions above still cover scaling")
	}
}

// TestTimeoutResponseIsJSON is the regression test for the
// http.TimeoutHandler Content-Type fix: a timed-out request must get
// the JSON error body *as* application/json.
func TestTimeoutResponseIsJSON(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
	})
	ts := httptest.NewServer(timeoutJSON(slow, 20*time.Millisecond))
	defer ts.Close()
	resp, body := get(t, ts.URL+"/v1/predict")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeout Content-Type = %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("timeout body %q is not the JSON error", body)
	}

	// Handlers that finish in time keep their own Content-Type.
	_, hts := newTestServer(t, DefaultConfig())
	resp, _ = get(t, hts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain (not clobbered by the timeout wrapper)", ct)
	}
	resp, _ = get(t, hts.URL+"/healthz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/healthz Content-Type = %q", ct)
	}
}

// TestCloseMidFloodKeepsAcceptedBatches floods ingest from many
// goroutines and calls Close in the middle: every batch that got a 202
// must be queryable afterwards (no accepted-then-lost samples), and no
// send may race the queue close (panics would crash the handler).
func TestCloseMidFloodKeepsAcceptedBatches(t *testing.T) {
	store := tsdb.New(tsdb.Config{Shards: 4, RingLen: 4096})
	s := New(store, nil, Config{QueueDepth: 8, IngestWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const flooders = 8
	var wg sync.WaitGroup
	var accepted atomic.Int64
	acceptedNodes := make([]map[int]bool, flooders)
	start := make(chan struct{})
	for f := 0; f < flooders; f++ {
		acceptedNodes[f] = map[int]bool{}
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				node := f*1000 + i
				batch := trace.SampleBatch{
					AgentID: fmt.Sprintf("flood-%d", f), Seq: uint64(i + 1),
					Samples: []trace.PowerSample{{Node: node, JobID: uint64(f + 1), Unix: int64(60 * (i + 1)), PowerW: 100}},
				}
				buf, _ := json.Marshal(batch)
				resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(buf))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusAccepted {
					accepted.Add(1)
					acceptedNodes[f][node] = true
				}
			}
		}(f)
	}
	close(start)
	// Let the flood build: wait for the first 202 (a fixed sleep flakes
	// under the race detector, where the first apply-acked round trip can
	// take arbitrarily long), then a moment more so Close lands mid-flood.
	for deadline := time.Now().Add(5 * time.Second); accepted.Load() == 0 && time.Now().Before(deadline); {
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(2 * time.Millisecond)
	s.Close() // mid-flood: drains the queue, flips handlers to 503
	wg.Wait()

	if accepted.Load() == 0 {
		t.Fatal("nothing accepted before Close")
	}
	if got := store.Ingested(); got != accepted.Load() {
		t.Fatalf("store ingested %d, want %d (every 202'd batch)", got, accepted.Load())
	}
	// Every individually accepted sample is queryable.
	for f := range acceptedNodes {
		for node := range acceptedNodes[f] {
			if pts := store.NodeSeries(node, 0, 0); len(pts) != 1 {
				t.Fatalf("node %d: 202-accepted sample not queryable after Close (%d points)", node, len(pts))
			}
		}
	}
	// And ingest now answers 503 draining.
	batch := trace.SampleBatch{Samples: []trace.PowerSample{{Node: 1, JobID: 1, Unix: 60, PowerW: 1}}}
	resp, _ := postJSON(t, ts.URL+"/v1/samples", batch)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-Close ingest status %d, want 503", resp.StatusCode)
	}
}

func TestJobsListEndpoint(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	resp, body := get(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"jobs":[]`) {
		t.Fatalf("empty jobs list: %d %s", resp.StatusCode, body)
	}
	postJSON(t, ts.URL+"/v1/samples", trace.SampleBatch{Samples: []trace.PowerSample{
		{Node: 0, JobID: 3, Unix: 60, PowerW: 10},
		{Node: 0, JobID: 1, Unix: 60, PowerW: 10},
	}})
	waitIngested(t, s, 2)
	_, body = get(t, ts.URL+"/v1/jobs")
	var out struct {
		Jobs []uint64 `json:"jobs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 2 || out.Jobs[0] != 1 || out.Jobs[1] != 3 {
		t.Errorf("jobs = %v, want [1 3]", out.Jobs)
	}
}
