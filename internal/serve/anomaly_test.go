package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/anomaly"
	"hpcpower/internal/obs"
	"hpcpower/internal/trace"
	"hpcpower/internal/tsdb"
)

// newAnomalyServer builds a memory-only server with a detector engine
// wired to its store.
func newAnomalyServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	store := tsdb.New(tsdb.Config{Shards: 4, RingLen: 256})
	eng := anomaly.NewEngine(anomaly.Config{Lookup: store.JobFingerprint})
	cfg := DefaultConfig()
	cfg.IngestWorkers = 1
	cfg.Anomaly = eng
	s := New(store, nil, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// flatBatches slices a constant-power single-job series into 5-sample
// batches — small time-slices, so the engine's batch-granular hysteresis
// advances at sample resolution (matching what powload ships).
func flatBatches(agent string, job uint64, node int, start int64, minutes int, w float64) []trace.SampleBatch {
	var out []trace.SampleBatch
	seq := uint64(1)
	for m := 0; m < minutes; m += 5 {
		b := trace.SampleBatch{AgentID: agent, Seq: seq}
		seq++
		for i := m; i < m+5 && i < minutes; i++ {
			b.Samples = append(b.Samples, trace.PowerSample{
				Node: node, JobID: job, Unix: start + int64(i)*60, PowerW: w,
			})
		}
		out = append(out, b)
	}
	return out
}

// anomalyEvents GETs /v1/anomalies with the given query string and
// decodes the event list.
func anomalyEvents(t testing.TB, url, query string) []anomaly.Event {
	t.Helper()
	resp, body := get(t, url+"/v1/anomalies"+query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/anomalies%s status %d: %s", query, resp.StatusCode, body)
	}
	var out struct {
		Events []anomaly.Event `json:"events"`
		Count  int             `json:"count"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return out.Events
}

// waitAnomalyFires polls until the server reports want fire events for
// the job.
func waitAnomalyFires(t testing.TB, url string, job uint64, want int) []anomaly.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := anomalyEvents(t, url, "?type=fire&job="+fmtUint(job))
		if len(evs) >= want {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d has %d fire events, want %d", job, len(evs), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fmtUint(u uint64) string { return strconv.FormatUint(u, 10) }

// TestAnomalyHTTPFireActiveFingerprint: a flatlining job shipped over
// HTTP fires through GET /v1/anomalies, shows as active, serves its
// fingerprint, carries its batch's trace ID, and surfaces in /readyz.
func TestAnomalyHTTPFireActiveFingerprint(t *testing.T) {
	s, ts := newAnomalyServer(t)
	const job, node = 42, 3
	start := int64(1_700_000_000)
	total := int64(0)
	for _, b := range flatBatches("fl", job, node, start, 45, 200) {
		resp := postTraced(t, ts.URL, "trace-flat", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		total += int64(len(b.Samples))
	}
	waitIngested(t, s, total)
	fires := waitAnomalyFires(t, ts.URL, job, 1)
	ev := fires[0]
	if ev.Detector != "flatline" || ev.Job != job || ev.Node != node {
		t.Fatalf("fire event = %+v", ev)
	}
	if ev.Trace != "trace-flat" {
		t.Fatalf("fire event trace = %q, want the ingest batch's trace ID", ev.Trace)
	}

	// Active list.
	resp, body := get(t, ts.URL+"/v1/anomalies?active=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("active status %d: %s", resp.StatusCode, body)
	}
	var act struct {
		Active []anomaly.Alert `json:"active"`
	}
	if err := json.Unmarshal(body, &act); err != nil {
		t.Fatal(err)
	}
	if len(act.Active) != 1 || act.Active[0].Job != job || act.Active[0].Detector != "flatline" {
		t.Fatalf("active = %+v", act.Active)
	}

	// Fingerprint.
	resp, body = get(t, ts.URL+"/v1/anomalies?fingerprint=1&job="+fmtUint(job))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint status %d: %s", resp.StatusCode, body)
	}
	var fpOut struct {
		Job         uint64              `json:"job"`
		Fingerprint anomaly.Fingerprint `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &fpOut); err != nil {
		t.Fatal(err)
	}
	if fpOut.Fingerprint.N != 45 || fpOut.Fingerprint.Max != 200 {
		t.Fatalf("fingerprint = %+v", fpOut.Fingerprint)
	}

	// Unknown job is a 404; missing job param a 400.
	if resp, _ := get(t, ts.URL+"/v1/anomalies?fingerprint=1&job=9999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/anomalies?fingerprint=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing job status %d, want 400", resp.StatusCode)
	}

	// /readyz carries the detector block.
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d: %s", resp.StatusCode, body)
	}
	var rb struct {
		Anomaly struct {
			Enabled      bool `json:"enabled"`
			Rules        int  `json:"rules"`
			ActiveAlerts int  `json:"active_alerts"`
			Delivering   bool `json:"delivering"`
		} `json:"anomaly"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if !rb.Anomaly.Enabled || rb.Anomaly.Rules != 4 || rb.Anomaly.ActiveAlerts != 1 || !rb.Anomaly.Delivering {
		t.Fatalf("readyz anomaly block = %+v (body %s)", rb.Anomaly, body)
	}
}

// TestAnomalyDisabled: without an engine the endpoint answers 501.
func TestAnomalyDisabled(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	resp, _ := get(t, ts.URL+"/v1/anomalies")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

// TestAnomalyStreamServesBacklog: stream=1 replays the matching ring
// backlog as NDJSON.
func TestAnomalyStreamServesBacklog(t *testing.T) {
	s, ts := newAnomalyServer(t)
	const job = 7
	start := int64(1_700_000_000)
	total := int64(0)
	for _, b := range flatBatches("st", job, 1, start, 45, 190) {
		resp, _ := postJSON(t, ts.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatal("ingest refused")
		}
		total += int64(len(b.Samples))
	}
	waitIngested(t, s, total)
	waitAnomalyFires(t, ts.URL, job, 1)

	resp, err := http.Get(ts.URL + "/v1/anomalies?stream=1&type=fire")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var ev anomaly.Event
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("stream ended before the backlog event")
	}
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("stream line %q: %v", sc.Text(), err)
	}
	if ev.Type != anomaly.EventFire || ev.Job != job {
		t.Fatalf("streamed event = %+v", ev)
	}
}

// newAnomalyDurableServer is newDurableServer with a detector engine.
func newAnomalyDurableServer(t testing.TB, dir string) (*Server, *httptest.Server) {
	t.Helper()
	store := durableStore()
	eng := anomaly.NewEngine(anomaly.Config{Lookup: store.JobFingerprint})
	cfg := durableConfig()
	cfg.Anomaly = eng
	s, err := NewDurable(store, nil, cfg, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// TestAnomalyStateRidesSnapshots is the failover/restart contract at
// the serving layer: an alert fired before a restart stays active and
// does not re-fire after recovery, because both the fingerprints (tsdb
// snapshot) and the alert machines (engine state) ride the snapshot.
func TestAnomalyStateRidesSnapshots(t *testing.T) {
	dir := t.TempDir()
	const job = 61
	start := int64(1_700_000_000)

	s1, ts1 := newAnomalyDurableServer(t, dir)
	total := int64(0)
	for _, b := range flatBatches("snap", job, 2, start, 45, 210) {
		resp := postTraced(t, ts1.URL, "trace-snap", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatal("ingest refused")
		}
		total += int64(len(b.Samples))
	}
	waitIngested(t, s1, total)
	waitAnomalyFires(t, ts1.URL, job, 1)
	ts1.Close()
	s1.Close() // takes the final snapshot

	s2, ts2 := newAnomalyDurableServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()
	st := s2.anom.Snapshot()
	if st.Fired != 1 || st.Active != 1 {
		t.Fatalf("restored engine: fired %d active %d, want 1/1", st.Fired, st.Active)
	}
	if evs := anomalyEvents(t, ts2.URL, "?type=fire&job="+fmtUint(job)); len(evs) != 1 {
		t.Fatalf("restored ring has %d fire events, want 1", len(evs))
	}

	// Keep the condition holding on the restarted node: no duplicate
	// fire (the restored machine knows it is already firing).
	more := flatBatches("snap2", job, 2, start+45*60, 30, 210)
	total2 := int64(0)
	for _, b := range more {
		resp, _ := postJSON(t, ts2.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatal("ingest refused after restart")
		}
		total2 += int64(len(b.Samples))
	}
	// Throughput counters are not part of the carried state, so the
	// restarted engine counts only post-restart samples.
	deadline := time.Now().Add(5 * time.Second)
	for s2.anom.Snapshot().Samples < total2 {
		if time.Now().After(deadline) {
			t.Fatalf("engine observed %d of %d samples", s2.anom.Snapshot().Samples, total2)
		}
		time.Sleep(time.Millisecond)
	}
	if got := s2.anom.Snapshot().Fired; got != 1 {
		t.Fatalf("restarted node re-fired: fired counter %d, want 1", got)
	}
	if evs := anomalyEvents(t, ts2.URL, "?type=fire&job="+fmtUint(job)); len(evs) != 1 {
		t.Fatalf("restarted ring has %d fire events, want 1", len(evs))
	}
}

// TestAnomalyFollowerDeliveryGating: a follower's engine tracks state
// silently; promotion flips delivery on.
func TestAnomalyFollowerDeliveryGating(t *testing.T) {
	primary, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsP.Close(); primary.Close() }()

	dir := t.TempDir()
	store := durableStore()
	eng := anomaly.NewEngine(anomaly.Config{Lookup: store.JobFingerprint})
	cfg := durableConfig()
	cfg.Anomaly = eng
	s, err := NewDurable(store, nil, cfg, DurabilityConfig{
		Dir:         dir,
		Replication: followerCfg(tsP.URL),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	defer s.Close()
	if eng.Delivering() {
		t.Fatal("follower engine delivers alerts before promotion")
	}
	if _, err := s.Promote(); err != nil {
		t.Fatal(err)
	}
	if !eng.Delivering() {
		t.Fatal("promoted engine still gagged")
	}
}

// TestAnomalyMetricsLint: with the engine enabled (and a fired alert),
// every legacy family survives and the full exposition still lints.
func TestAnomalyMetricsLint(t *testing.T) {
	s, ts := newAnomalyServer(t)
	const job = 9
	start := int64(1_700_000_000)
	total := int64(0)
	for _, b := range flatBatches("m", job, 0, start, 45, 150) {
		resp, _ := postJSON(t, ts.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatal("ingest refused")
		}
		total += int64(len(b.Samples))
	}
	waitIngested(t, s, total)
	waitAnomalyFires(t, ts.URL, job, 1)

	_, body := get(t, ts.URL+"/metrics")
	exp := string(body)
	for _, name := range []string{
		"powserved_anomaly_enabled",
		"powserved_anomaly_rules",
		"powserved_anomaly_jobs",
		"powserved_anomaly_samples_total",
		"powserved_anomaly_batches_total",
		"powserved_anomaly_evals_total",
		"powserved_anomaly_last_sample_unix",
		"powserved_alert_fired_total",
		"powserved_alert_resolved_total",
		"powserved_alert_active",
		"powserved_alert_suppressed_total",
		"powserved_alert_events_total",
		"powserved_alert_events_evicted_total",
		"powserved_alert_delivering",
	} {
		if !strings.Contains(exp, "\n"+name+"{") && !strings.Contains(exp, "\n"+name+" ") {
			t.Errorf("/metrics lacks %s", name)
		}
	}
	if !strings.Contains(exp, `powserved_alert_fired_total{rule="flatline"} 1`) {
		t.Error("/metrics does not count the flatline fire")
	}
	if err := obs.LintExposition(strings.NewReader(exp)); err != nil {
		t.Fatalf("/metrics with anomaly engine violates the exposition format: %v", err)
	}
}
