package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpcpower/internal/elect"
)

// startSoloElection attaches a single-node elector (no peers: quorum
// of one) to a durable server — enough to exercise the serve-side
// wiring without a full group.
func startSoloElection(t testing.TB, s *Server, ts *httptest.Server, lead bool) *elect.Elector {
	t.Helper()
	st, err := elect.OpenStateFile(filepath.Join(t.TempDir(), "elect-state"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	el, err := s.StartElection(ctx, elect.Config{
		ID:             "solo",
		URL:            ts.URL,
		Lead:           lead,
		HeartbeatEvery: 10 * time.Millisecond,
		State:          st,
		Transport:      &elect.HTTPTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(el.Close)
	return el
}

// TestFrontierEndpoint: a primary reports its identity, epoch, role,
// and the upstream watermark frozen at promotion time.
func TestFrontierEndpoint(t *testing.T) {
	p, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsP.Close(); p.Close() }()
	sendAll(t, tsP.URL, stampedBatches(3, 5))

	resp, body := get(t, tsP.URL+"/v1/repl/frontier")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontier = %d %s", resp.StatusCode, body)
	}
	s := string(body)
	for _, want := range []string{`"role":"primary"`, `"epoch":`, `"upstream_lsn":0`, `"local_lsn":`} {
		if !strings.Contains(s, want) {
			t.Fatalf("frontier body %s lacks %s", s, want)
		}
	}

	// A follower answers too (the rejoin path validates the role and
	// refuses), and its upstream watermark is meaningless-but-present.
	f, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); f.Close() }()
	resp, body = get(t, tsF.URL+"/v1/repl/frontier")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"role":"follower"`) {
		t.Fatalf("follower frontier = %d %s", resp.StatusCode, body)
	}
}

// TestNotPrimaryCarriesLeaderHint: a follower's 503 tells the shipper
// where the primary is, so failover is one hop instead of a scan.
func TestNotPrimaryCarriesLeaderHint(t *testing.T) {
	p, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsP.Close(); p.Close() }()
	f, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); f.Close() }()

	resp, body := postJSON(t, tsF.URL+"/v1/samples", stampedBatches(1, 1)[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower ingest = %d, want 503", resp.StatusCode)
	}
	s := string(body)
	if !strings.Contains(s, `"code":"not_primary"`) || !strings.Contains(s, `"primary":"`+tsP.URL+`"`) {
		t.Fatalf("follower 503 body %s lacks not_primary code or primary hint %q", s, tsP.URL)
	}
}

// TestDeposedPrimaryRejoins: a primary with diverged, never-replicated
// records is told a foreign leader holds a higher epoch. It must
// truncate its diverged WAL suffix, count the rollback, re-enter the
// group as a follower of that leader, and converge to byte-identical
// analytics.
func TestDeposedPrimaryRejoins(t *testing.T) {
	a, tsA := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsA.Close(); a.Close() }()
	b, tsB := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsB.Close(); b.Close() }()

	// Divergent histories: nothing A holds was ever replicated to B
	// and vice versa.
	totalA := sendAll(t, tsA.URL, stampedBatches(11, 8))
	waitIngested(t, a, totalA)
	diverged := sendAll(t, tsB.URL, stampedBatches(99, 4))
	waitIngested(t, b, diverged)

	// A wins an election at a higher epoch; B learns about it.
	epoch, err := a.PromoteTo(7)
	if err != nil || epoch != 7 {
		t.Fatalf("promote a: epoch %d err %v", epoch, err)
	}
	b.maybeRejoin(7, "a", tsA.URL)

	// B must demote, follow A, and converge to A's analytics.
	deadline := time.Now().Add(10 * time.Second)
	for b.store.Ingested() != totalA && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got, want := analyticsDump(t, tsB.URL), analyticsDump(t, tsA.URL); got != want {
		t.Fatal("rejoined node's analytics differ from new leader")
	}

	code, m := readyzJSON(t, tsB.URL)
	if code != http.StatusOK {
		t.Fatalf("rejoined readyz = %d %v", code, m)
	}
	if m["role"] != RoleFollower {
		t.Fatalf("rejoined role = %v, want follower", m["role"])
	}
	if got := m["epoch"].(float64); got != 7 {
		t.Fatalf("rejoined epoch = %v, want 7", got)
	}
	if got := m["rejoins"].(float64); got != 1 {
		t.Fatalf("rejoins = %v, want 1", got)
	}
	// Every one of B's pre-deposal records was past the shared
	// frontier: all of them count as diverged.
	rs := b.dur.repl
	if got := rs.divergedRecords.Load(); got == 0 {
		t.Fatalf("diverged records = %d, want > 0 (all of B's own writes were rolled back)", got)
	}
	// Ingest on the rejoined node now redirects to the leader.
	resp, body := postJSON(t, tsB.URL+"/v1/samples", stampedBatches(1, 1)[0])
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), tsA.URL) {
		t.Fatalf("rejoined ingest = %d %s, want 503 with hint to %s", resp.StatusCode, body, tsA.URL)
	}
}

// TestPromoteDuringSnapshotBootstrap: promoting a follower while its
// snapshot bootstrap is in flight must not deadlock, corrupt state, or
// resurrect the pull loop — whichever side wins, the node ends up a
// working primary.
func TestPromoteDuringSnapshotBootstrap(t *testing.T) {
	p, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{SegmentBytes: 256})
	defer func() { tsP.Close(); p.Close() }()
	total := sendAll(t, tsP.URL, stampedBatches(13, 40))
	waitIngested(t, p, total)
	// Reap the early WAL so the follower is forced through the
	// snapshot-bootstrap path, not a plain stream from LSN 1.
	if err := p.dur.snapshotOnce(p); err != nil {
		t.Fatal(err)
	}

	f, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); f.Close() }()
	// Race the promotion against the bootstrap: no sleep, fire
	// immediately after the pull loop starts.
	epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("promote during bootstrap: %v", err)
	}
	if epoch == 0 {
		t.Fatal("promotion did not advance the epoch")
	}

	// The node must now behave as a primary: accept writes at the new
	// epoch and never flip back to follower.
	b := stampedBatches(77, 1)[0]
	resp, body := postJSONEpoch(t, tsF.URL+"/v1/samples", epoch, b)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-promotion ingest = %d %s", resp.StatusCode, body)
	}
	time.Sleep(50 * time.Millisecond) // let any straggler pull-loop iteration run
	code, m := readyzJSON(t, tsF.URL)
	if code != http.StatusOK || m["role"] != RolePrimary {
		t.Fatalf("post-promotion readyz = %d %v, want ready primary", code, m)
	}
}

// TestReadyzElectionShape: with an elector attached, /readyz exposes
// the election block — role, leader, epoch, lease, witness health, and
// the last transition — plus the rejoin counters.
func TestReadyzElectionShape(t *testing.T) {
	s, ts := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { ts.Close(); s.Close() }()
	el := startSoloElection(t, s, ts, true)

	// A solo leader (quorum of one) regains its lease after one round.
	deadline := time.Now().Add(5 * time.Second)
	for !el.HasLease() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !el.HasLease() {
		t.Fatal("solo leader never acquired its lease")
	}

	code, m := readyzJSON(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("readyz = %d %v", code, m)
	}
	elb, ok := m["election"].(map[string]any)
	if !ok {
		t.Fatalf("readyz lacks election block: %v", m)
	}
	for _, k := range []string{"role", "leader_id", "leader_url", "epoch", "has_lease", "lease_remaining_ms", "witness_ok", "last_transition"} {
		if _, ok := elb[k]; !ok {
			t.Fatalf("election block lacks %q: %v", k, elb)
		}
	}
	if elb["role"] != "leader" || elb["leader_id"] != "solo" || elb["has_lease"] != true {
		t.Fatalf("election block = %v, want leading solo with lease", elb)
	}
	for _, k := range []string{"rejoins", "diverged_records"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("readyz lacks %q: %v", k, m)
		}
	}

	// The lease gate: while the lease is held ingest flows; a leader
	// whose elector reports no lease refuses with the no_lease code.
	b := stampedBatches(5, 1)[0]
	if resp, body := postJSON(t, ts.URL+"/v1/samples", b); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("leased ingest = %d %s", resp.StatusCode, body)
	}
}
