package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// followerCfg returns a ReplicationConfig for a test follower of the
// given primary, with cadences tightened for test speed.
func followerCfg(primaryURL string) *ReplicationConfig {
	return &ReplicationConfig{
		Role:           RoleFollower,
		PrimaryURL:     primaryURL,
		FollowerID:     "f1",
		AckEvery:       10 * time.Millisecond,
		HeartbeatEvery: 25 * time.Millisecond,
		StallTimeout:   2 * time.Second,
	}
}

// newFollowerServer builds, recovers, and serves a follower of
// primaryURL over dir.
func newFollowerServer(t testing.TB, dir, primaryURL string, dcfg DurabilityConfig) (*Server, *httptest.Server) {
	t.Helper()
	dcfg.Dir = dir
	if dcfg.Replication == nil {
		dcfg.Replication = followerCfg(primaryURL)
	}
	s, err := NewDurable(durableStore(), nil, durableConfig(), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// postJSONEpoch is postJSON with an X-Repl-Epoch header — what a
// shipper that has observed a promotion sends.
func postJSONEpoch(t testing.TB, url string, epoch uint64, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderReplEpoch, strconv.FormatUint(epoch, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, resp)
	return resp, out
}

func readAll(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return b.Bytes()
}

func readyzJSON(t testing.TB, url string) (int, map[string]any) {
	t.Helper()
	resp, body := get(t, url+"/readyz")
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("readyz body %q is not JSON: %v", body, err)
	}
	return resp.StatusCode, m
}

// TestReplicationEndToEnd: a follower streams a live primary's WAL into
// its own durable pipeline, serves byte-identical analytics read-only,
// survives its own crash, and resumes exactly where it stopped.
func TestReplicationEndToEnd(t *testing.T) {
	primary, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsP.Close(); primary.Close() }()

	dirF := t.TempDir()
	follower, tsF := newFollowerServer(t, dirF, tsP.URL, DurabilityConfig{})

	batches := stampedBatches(21, 50)
	total := sendAll(t, tsP.URL, batches[:40])
	waitIngested(t, primary, total)
	waitIngested(t, follower, total)

	if got, want := analyticsDump(t, tsF.URL), analyticsDump(t, tsP.URL); got != want {
		t.Fatalf("follower analytics differ from primary\n got: %s\nwant: %s", got, want)
	}

	// The follower is read-only: ingest is refused with the
	// machine-readable not_primary code and a role header.
	resp, body := postJSON(t, tsF.URL+"/v1/samples", batches[40])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower ingest: got %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), CodeNotPrimary) {
		t.Fatalf("follower ingest body %q lacks code %q", body, CodeNotPrimary)
	}
	if got := resp.Header.Get(HeaderReplRole); got != RoleFollower {
		t.Fatalf("follower ingest role header = %q", got)
	}

	// /readyz is 200 (queryable) and machine-readable on both sides.
	code, m := readyzJSON(t, tsF.URL)
	if code != http.StatusOK || m["status"] != "ready" || m["role"] != RoleFollower {
		t.Fatalf("follower readyz = %d %v", code, m)
	}
	if _, ok := m["repl_lag_records"]; !ok {
		t.Fatalf("follower readyz lacks repl_lag_records: %v", m)
	}
	code, m = readyzJSON(t, tsP.URL)
	if code != http.StatusOK || m["role"] != RolePrimary || m["epoch"] != float64(1) {
		t.Fatalf("primary readyz = %d %v", code, m)
	}

	// Acceptance metrics on both sides.
	_, mp := get(t, tsP.URL+"/metrics")
	for _, want := range []string{"powserved_repl_epoch 1", `powserved_repl_follower_acked_lsn{follower="f1"}`, "powserved_repl_streamed_records_total"} {
		if !strings.Contains(string(mp), want) {
			t.Fatalf("primary /metrics lacks %q", want)
		}
	}
	_, mf := get(t, tsF.URL+"/metrics")
	for _, want := range []string{"powserved_repl_lag_records", "powserved_repl_role 0", "powserved_repl_applied_records_total"} {
		if !strings.Contains(string(mf), want) {
			t.Fatalf("follower /metrics lacks %q", want)
		}
	}

	// Crash the follower, keep feeding the primary, restart the
	// follower over the same dir: it must resume from its recovered
	// primary-LSN watermark and converge again.
	crash(t, follower, tsF)
	total += sendAll(t, tsP.URL, batches[40:])
	waitIngested(t, primary, total)

	follower2, tsF2 := newFollowerServer(t, dirF, tsP.URL, DurabilityConfig{})
	defer func() { tsF2.Close(); follower2.Close() }()
	waitIngested(t, follower2, total)
	if got, want := analyticsDump(t, tsF2.URL), analyticsDump(t, tsP.URL); got != want {
		t.Fatal("follower analytics diverged after crash + resume")
	}
}

// TestSemiSyncAck: with SyncAck on, a 202 from the primary means every
// registered follower already applied the batch durably — checked by
// reading the follower's counter immediately after the ack, no polling.
func TestSemiSyncAck(t *testing.T) {
	primary, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{
		Replication: &ReplicationConfig{SyncAck: true, SyncAckTimeout: 3 * time.Second, HeartbeatEvery: 25 * time.Millisecond},
	})
	defer func() { tsP.Close(); primary.Close() }()

	batches := stampedBatches(4, 20)
	// No follower registered: no wait, plain 202s.
	n := sendAll(t, tsP.URL, batches[:5])
	waitIngested(t, primary, n)

	follower, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); follower.Close() }()
	// Wait for the follower to register (first stream request).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, cnt := primary.dur.repl.source.MinAcked(); cnt > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never registered")
		}
		time.Sleep(time.Millisecond)
	}

	for _, b := range batches[5:] {
		resp, body := postJSON(t, tsP.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seq %d: %d %s", b.Seq, resp.StatusCode, body)
		}
		n += int64(len(b.Samples))
		if got := follower.store.Ingested(); got < n {
			t.Fatalf("202 for seq %d but follower holds %d of %d samples", b.Seq, got, n)
		}
	}
}

// TestPromotionAndFencing is the failover story: promote the follower,
// verify the epoch bump, verify redelivered batches dedup, and verify
// the stale primary is fenced with the distinct 409 code — stickily.
func TestPromotionAndFencing(t *testing.T) {
	primary, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsP.Close(); primary.Close() }()
	follower, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); follower.Close() }()

	batches := stampedBatches(8, 32)
	total := sendAll(t, tsP.URL, batches[:30])
	waitIngested(t, primary, total)
	waitIngested(t, follower, total)

	// Promote. The primary booted at epoch 1, so promotion lands at 2.
	resp, body := postJSON(t, tsF.URL+"/v1/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d %s", resp.StatusCode, body)
	}
	var pr struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &pr); err != nil || pr.Role != RolePrimary || pr.Epoch != 2 {
		t.Fatalf("promote response %s (err %v), want role=primary epoch=2", body, err)
	}
	// Idempotent.
	resp, body = postJSON(t, tsF.URL+"/v1/promote", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"epoch":2`) {
		t.Fatalf("re-promote: %d %s", resp.StatusCode, body)
	}

	// The promoted node takes fresh writes...
	resp, body = postJSON(t, tsF.URL+"/v1/samples", batches[30])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after promotion: %d %s", resp.StatusCode, body)
	}
	// ...and redelivery of a batch the old primary acked is a duplicate:
	// the dedup index replicated with the data.
	redo := batches[29]
	redo.Redelivery = true
	resp, body = postJSON(t, tsF.URL+"/v1/samples", redo)
	if resp.StatusCode != http.StatusAccepted || !strings.Contains(string(body), `"duplicate":true`) {
		t.Fatalf("redelivered seq %d: %d %s, want duplicate ack", redo.Seq, resp.StatusCode, body)
	}

	// Fencing: the first write carrying the new epoch fences the old
	// primary — 409, distinct code, fenced header.
	resp, body = postJSONEpoch(t, tsP.URL+"/v1/samples", pr.Epoch, batches[31])
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale primary ingest: got %d, want 409", resp.StatusCode)
	}
	if !strings.Contains(string(body), CodeStaleEpoch) {
		t.Fatalf("stale primary body %q lacks code %q", body, CodeStaleEpoch)
	}
	if resp.Header.Get(HeaderReplFenced) != "1" {
		t.Fatal("stale primary response lacks X-Repl-Fenced")
	}
	// Sticky: even a write with no epoch header stays fenced.
	resp, _ = postJSON(t, tsP.URL+"/v1/samples", batches[31])
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fencing not sticky: got %d, want 409", resp.StatusCode)
	}
	// The fenced primary still serves reads, and says so on /readyz.
	code, m := readyzJSON(t, tsP.URL)
	if code != http.StatusOK || m["fenced"] != true {
		t.Fatalf("fenced primary readyz = %d %v", code, m)
	}

	// The new primary's metrics carry the acceptance series.
	_, mf := get(t, tsF.URL+"/metrics")
	for _, want := range []string{"powserved_repl_epoch 2", "powserved_repl_role 1", "powserved_repl_promotions_total 1"} {
		if !strings.Contains(string(mf), want) {
			t.Fatalf("promoted node /metrics lacks %q", want)
		}
	}
}

// TestFollowerBootstrapFromSnapshot: a follower that starts after the
// primary reaped its early WAL must install a snapshot, then stream the
// tail — and the installed dedup index must survive promotion, turning
// every redelivered batch into a duplicate (zero double-counting).
func TestFollowerBootstrapFromSnapshot(t *testing.T) {
	primary, tsP := newDurableServer(t, t.TempDir(), DurabilityConfig{SegmentBytes: 256})
	defer func() { tsP.Close(); primary.Close() }()

	batches := stampedBatches(13, 40)
	total := sendAll(t, tsP.URL, batches)
	waitIngested(t, primary, total)
	if err := primary.dur.snapshotOnce(primary); err != nil {
		t.Fatal(err)
	}
	first, err := primary.dur.log.FirstLSN()
	if err != nil {
		t.Fatal(err)
	}
	if first <= 1 {
		t.Fatalf("reap left oldest lsn %d; the bootstrap path needs a gap", first)
	}

	follower, tsF := newFollowerServer(t, t.TempDir(), tsP.URL, DurabilityConfig{})
	defer func() { tsF.Close(); follower.Close() }()
	waitIngested(t, follower, total)
	if got, want := analyticsDump(t, tsF.URL), analyticsDump(t, tsP.URL); got != want {
		t.Fatal("bootstrapped follower analytics differ from primary")
	}
	// The store state lands (satisfying waitIngested) before the
	// install's own bookkeeping finishes — poll the counter briefly.
	deadline := time.Now().Add(5 * time.Second)
	for follower.dur.repl.followerStats().SnapshotInstalls != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot installs = %d, want 1",
				follower.dur.repl.followerStats().SnapshotInstalls)
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	// The shipper never saw the failover: it redelivers everything it
	// has no ack for. All 40 must dedup against the installed index.
	for _, b := range batches {
		b.Redelivery = true
		resp, body := postJSON(t, tsF.URL+"/v1/samples", b)
		if resp.StatusCode != http.StatusAccepted || !strings.Contains(string(body), `"duplicate":true`) {
			t.Fatalf("redelivered seq %d: %d %s, want duplicate ack", b.Seq, resp.StatusCode, body)
		}
	}
	if got := follower.store.Ingested(); got != total {
		t.Fatalf("double-counted: ingested %d, want %d", got, total)
	}
	if got := follower.metrics.batchesDuplicate.Value(); got != int64(len(batches)) {
		t.Fatalf("duplicate counter = %d, want %d", got, len(batches))
	}
}

// TestReadyzJSONShape: the machine-readable body carries the
// replication fields on durable servers and stays minimal on
// memory-only ones — with the status codes of the original probe.
func TestReadyzJSONShape(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	code, m := readyzJSON(t, ts.URL)
	if code != http.StatusOK || m["status"] != "ready" {
		t.Fatalf("memory readyz = %d %v", code, m)
	}
	if _, ok := m["role"]; ok {
		t.Fatalf("memory readyz should not report a role: %v", m)
	}
	_ = s

	d, tsD := newDurableServer(t, t.TempDir(), DurabilityConfig{})
	defer func() { tsD.Close(); d.Close() }()
	code, m = readyzJSON(t, tsD.URL)
	if code != http.StatusOK {
		t.Fatalf("durable readyz = %d", code)
	}
	for _, k := range []string{"status", "role", "epoch", "fenced", "applied_lsn", "repl_applied_lsn", "repl_lag_records"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("durable readyz lacks %q: %v", k, m)
		}
	}
	if m["role"] != RolePrimary || m["fenced"] != false {
		t.Fatalf("durable readyz = %v", m)
	}
}
