//go:build linux || darwin

package serve

import "syscall"

// diskUsage reports the filesystem's free (unprivileged) and total
// bytes for the given path.
func diskUsage(path string) (free, total uint64, ok bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, 0, false
	}
	bsize := uint64(st.Bsize)
	return uint64(st.Bavail) * bsize, uint64(st.Blocks) * bsize, true
}
