package trace

import (
	"math"
	"testing"
	"time"

	"hpcpower/internal/units"
)

var t0 = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)

func validJob(id uint64) Job {
	return Job{
		ID:              id,
		User:            "u001",
		App:             "GROMACS",
		Nodes:           4,
		Submit:          t0,
		Start:           t0.Add(10 * time.Minute),
		End:             t0.Add(130 * time.Minute),
		ReqWall:         3 * time.Hour,
		AvgPowerPerNode: 150,
		Energy:          units.Joules(150 * 4 * 120 * 60),
	}
}

func TestJobDerived(t *testing.T) {
	j := validJob(1)
	if got := j.Runtime(); got != 2*time.Hour {
		t.Errorf("Runtime = %v", got)
	}
	if got := j.RuntimeMinutes(); got != 120 {
		t.Errorf("RuntimeMinutes = %d", got)
	}
	if got := float64(j.NodeHours()); math.Abs(got-8) > 1e-12 {
		t.Errorf("NodeHours = %v", got)
	}
}

func TestJobValidate(t *testing.T) {
	good := validJob(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Job)
	}{
		{"zero nodes", func(j *Job) { j.Nodes = 0 }},
		{"end before start", func(j *Job) { j.End = j.Start.Add(-time.Minute) }},
		{"start before submit", func(j *Job) { j.Start = j.Submit.Add(-time.Minute) }},
		{"zero walltime", func(j *Job) { j.ReqWall = 0 }},
		{"negative power", func(j *Job) { j.AvgPowerPerNode = -1 }},
		{"negative energy", func(j *Job) { j.Energy = -1 }},
	}
	for _, m := range mutations {
		j := validJob(1)
		m.mut(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected error", m.name)
		}
	}
}

func TestNodeSeriesEnergy(t *testing.T) {
	ns := NodeSeries{Power: []float64{100, 200, 300}}
	want := units.Joules((100 + 200 + 300) * 60)
	if got := ns.Energy(); got != want {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func testDataset() *Dataset {
	d := &Dataset{
		Meta: Meta{
			System: "Emmy", TotalNodes: 560, NodeTDPW: 210,
			Start: t0, End: t0.Add(24 * time.Hour), Seed: 42,
		},
		Series: map[uint64][]NodeSeries{},
	}
	j1 := validJob(1)
	j2 := validJob(2)
	j2.User = "u002"
	j2.App = "FASTEST"
	j2.Nodes = 8
	j2.Instrumented = true
	j2.TemporalCVPct = 11
	j2.PeakOvershootPct = 12.5
	j2.AvgSpatialSpreadW = 20
	d.Jobs = append(d.Jobs, j1, j2)
	d.Series[2] = []NodeSeries{
		{JobID: 2, Node: 0, Start: j2.Start, Power: []float64{140, 150, 160}},
		{JobID: 2, Node: 1, Start: j2.Start, Power: []float64{150, 155, 145}},
	}
	d.System = []SystemSample{
		{Time: t0, ActiveNodes: 500, TotalPowerW: 70000},
		{Time: t0.Add(time.Minute), ActiveNodes: 510, TotalPowerW: 71500.5},
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := testDataset()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	// Duplicate job IDs.
	dup := testDataset()
	dup.Jobs[1].ID = 1
	delete(dup.Series, 2)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs not caught")
	}
	// Job larger than the cluster.
	big := testDataset()
	big.Jobs[0].Nodes = 561
	if err := big.Validate(); err == nil {
		t.Error("oversized job not caught")
	}
	// Series for unknown job.
	orphan := testDataset()
	orphan.Series[99] = []NodeSeries{{JobID: 99}}
	if err := orphan.Validate(); err == nil {
		t.Error("orphan series not caught")
	}
	// Series keyed under the wrong job.
	wrong := testDataset()
	wrong.Series[1] = []NodeSeries{{JobID: 2}}
	if err := wrong.Validate(); err == nil {
		t.Error("mis-keyed series not caught")
	}
	// Bad meta.
	for _, mut := range []func(*Dataset){
		func(d *Dataset) { d.Meta.TotalNodes = 0 },
		func(d *Dataset) { d.Meta.NodeTDPW = 0 },
	} {
		bad := testDataset()
		mut(bad)
		if err := bad.Validate(); err == nil {
			t.Error("bad meta not caught")
		}
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := testDataset()
	if j := d.Job(2); j == nil || j.App != "FASTEST" {
		t.Errorf("Job(2) = %+v", j)
	}
	if j := d.Job(99); j != nil {
		t.Error("Job(99) should be nil")
	}
	inst := d.InstrumentedJobs()
	if len(inst) != 1 || inst[0].ID != 2 {
		t.Errorf("InstrumentedJobs = %v", inst)
	}
	users := d.Users()
	if len(users) != 2 || users[0] != "u001" || users[1] != "u002" {
		t.Errorf("Users = %v", users)
	}
	apps := d.Apps()
	if len(apps) != 2 || apps[0] != "FASTEST" {
		t.Errorf("Apps = %v", apps)
	}
}

func TestSortJobs(t *testing.T) {
	d := &Dataset{}
	a := validJob(3)
	b := validJob(1)
	b.Start = a.Start.Add(-time.Hour)
	b.Submit = b.Start.Add(-time.Minute)
	c := validJob(2)
	c.Start = a.Start // tie with a: ID order
	d.Jobs = []Job{a, b, c}
	d.SortJobs()
	gotIDs := [3]uint64{d.Jobs[0].ID, d.Jobs[1].ID, d.Jobs[2].ID}
	if gotIDs != [3]uint64{1, 2, 3} {
		t.Errorf("sorted IDs = %v", gotIDs)
	}
}
