package trace

import (
	"fmt"
	"sort"
	"time"

	"hpcpower/internal/units"
)

// PowerSample is the wire record of the online telemetry path: one
// per-node per-minute RAPL power reading, as pushed by a monitoring agent
// to the serving layer (cmd/powserved). It is the live counterpart of one
// NodeSeries entry — flattened, self-describing, and JSON-friendly so
// agents in any language can produce it.
type PowerSample struct {
	Node   int     `json:"node"` // cluster-wide node index
	JobID  uint64  `json:"job"`  // job occupying the node (0 = idle/system)
	Unix   int64   `json:"t"`    // sample time, seconds since epoch
	PowerW float64 `json:"w"`    // average watts over the sampling interval
}

// Validate reports the first structural problem with the sample, if any.
func (s PowerSample) Validate() error {
	switch {
	case s.Node < 0:
		return fmt.Errorf("trace: sample has negative node %d", s.Node)
	case s.Unix <= 0:
		return fmt.Errorf("trace: sample has non-positive time %d", s.Unix)
	case s.PowerW < 0:
		return fmt.Errorf("trace: sample has negative power %v", s.PowerW)
	}
	return nil
}

// SampleBatch is the ingest request body of POST /v1/samples.
//
// AgentID and Seq are the delivery identity used for idempotent ingest:
// an agent stamps every batch it ships with its own ID and a monotonic
// sequence number starting at 1, and the server deduplicates on
// (AgentID, Seq) so an at-least-once transport never double-counts a
// sample into the job analytics. An empty AgentID opts out of
// deduplication — anonymous pushes keep working unchanged.
//
// Redelivery marks a batch that is being re-sent after a delivery
// failure (the first attempt may or may not have reached the server);
// the server counts redeliveries so operators can see transport churn.
type SampleBatch struct {
	AgentID    string        `json:"agent,omitempty"`
	Seq        uint64        `json:"seq,omitempty"`
	Redelivery bool          `json:"redelivery,omitempty"`
	Samples    []PowerSample `json:"samples"`
}

// Validate checks the delivery stamp and every sample in the batch.
func (b SampleBatch) Validate() error {
	if b.AgentID != "" && b.Seq == 0 {
		return fmt.Errorf("trace: batch from agent %q has no sequence number", b.AgentID)
	}
	if b.AgentID == "" && b.Seq != 0 {
		return fmt.Errorf("trace: batch has sequence %d but no agent id", b.Seq)
	}
	for i, s := range b.Samples {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
	}
	return nil
}

// FlattenSeries converts a dataset's time-resolved node series into the
// wire samples an agent would have pushed live. Per-job node indices are
// offset by a running base so different jobs do not collide on node 0
// (a dataset does not record physical node placement).
func FlattenSeries(d *Dataset) []PowerSample {
	var out []PowerSample
	base := 0
	for _, id := range sortedSeriesIDs(d) {
		for _, ns := range d.Series[id] {
			for i, pw := range ns.Power {
				out = append(out, PowerSample{
					Node:   base + ns.Node,
					JobID:  ns.JobID,
					Unix:   ns.Start.Add(sampleOffset(i)).Unix(),
					PowerW: pw,
				})
			}
		}
		if n := len(d.Series[id]); n > 0 {
			base += n
		}
	}
	return out
}

func sampleOffset(i int) time.Duration {
	return time.Duration(i) * units.SampleInterval
}

func sortedSeriesIDs(d *Dataset) []uint64 {
	ids := make([]uint64, 0, len(d.Series))
	for id := range d.Series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}
