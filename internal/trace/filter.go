package trace

import (
	"fmt"
	"time"
)

// Dataset slicing utilities: the paper's analyses repeatedly restrict the
// job table — to one month (robustness), to one application (Fig. 4), to
// multi-node jobs (Figs. 8-10). These helpers produce consistent
// sub-datasets (jobs plus their retained series and the covered system
// window) without mutating the original.

// FilterJobs returns a copy of the dataset containing only jobs for which
// keep returns true, along with their retained series. The system series
// is carried over unchanged (it describes the whole machine).
func (d *Dataset) FilterJobs(keep func(*Job) bool) *Dataset {
	out := &Dataset{
		Meta:   d.Meta,
		System: d.System,
		Series: map[uint64][]NodeSeries{},
	}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if !keep(j) {
			continue
		}
		out.Jobs = append(out.Jobs, *j)
		if s, ok := d.Series[j.ID]; ok {
			out.Series[j.ID] = s
		}
	}
	return out
}

// ByApp returns the sub-dataset of jobs running the named application.
func (d *Dataset) ByApp(app string) *Dataset {
	return d.FilterJobs(func(j *Job) bool { return j.App == app })
}

// ByUser returns the sub-dataset of one user's jobs.
func (d *Dataset) ByUser(user string) *Dataset {
	return d.FilterJobs(func(j *Job) bool { return j.User == user })
}

// MultiNode returns the sub-dataset of jobs with at least minNodes nodes.
func (d *Dataset) MultiNode(minNodes int) *Dataset {
	return d.FilterJobs(func(j *Job) bool { return j.Nodes >= minNodes })
}

// TimeWindow returns the sub-dataset of jobs STARTING in [from, to), with
// the system series clipped to the same window and meta adjusted.
func (d *Dataset) TimeWindow(from, to time.Time) (*Dataset, error) {
	if !to.After(from) {
		return nil, fmt.Errorf("trace: empty window [%v, %v)", from, to)
	}
	out := d.FilterJobs(func(j *Job) bool {
		return !j.Start.Before(from) && j.Start.Before(to)
	})
	out.Meta.Start, out.Meta.End = from, to
	out.System = nil
	for _, s := range d.System {
		if !s.Time.Before(from) && s.Time.Before(to) {
			out.System = append(out.System, s)
		}
	}
	return out, nil
}

// Merge combines datasets from the SAME system (e.g. monthly releases)
// into one. Job IDs must be disjoint; metadata must agree.
func Merge(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := &Dataset{
		Meta:   parts[0].Meta,
		Series: map[uint64][]NodeSeries{},
	}
	seen := map[uint64]bool{}
	for _, p := range parts {
		if p.Meta.System != out.Meta.System ||
			p.Meta.TotalNodes != out.Meta.TotalNodes ||
			p.Meta.NodeTDPW != out.Meta.NodeTDPW {
			return nil, fmt.Errorf("trace: merging incompatible systems %q and %q",
				out.Meta.System, p.Meta.System)
		}
		if p.Meta.Start.Before(out.Meta.Start) {
			out.Meta.Start = p.Meta.Start
		}
		if p.Meta.End.After(out.Meta.End) {
			out.Meta.End = p.Meta.End
		}
		for i := range p.Jobs {
			j := p.Jobs[i]
			if seen[j.ID] {
				return nil, fmt.Errorf("trace: duplicate job %d across parts", j.ID)
			}
			seen[j.ID] = true
			out.Jobs = append(out.Jobs, j)
		}
		for id, s := range p.Series {
			out.Series[id] = s
		}
		out.System = append(out.System, p.System...)
	}
	out.SortJobs()
	return out, nil
}
