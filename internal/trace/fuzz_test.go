package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Parser fuzzing: the released dataset formats are consumed by external
// tooling and must never panic on malformed input — errors only.

func FuzzReadJobsCSV(f *testing.F) {
	var buf bytes.Buffer
	d := testDataset()
	if err := d.WriteJobsCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("job_id,user\n1,u")
	f.Add(strings.Repeat("a,", 40))
	f.Fuzz(func(t *testing.T, input string) {
		var ds Dataset
		_ = ds.ReadJobsCSV(strings.NewReader(input)) // must not panic
	})
}

func FuzzReadAccounting(f *testing.F) {
	var buf bytes.Buffer
	d := testDataset()
	if err := d.WriteAccounting(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("JobID|User\n")
	f.Add("JobID|User|JobName|Submit|Start|End|Timelimit|NNodes|State\nx|y|z|a|b|c|d|e|f\n")
	f.Fuzz(func(t *testing.T, input string) {
		var ds Dataset
		_ = ds.ReadAccounting(strings.NewReader(input))
	})
}

func FuzzParseTimelimit(f *testing.F) {
	for _, seed := range []string{"01:00:00", "1-02:03:04", "30:00", "", "x", "::", "-1:2:3"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := parseTimelimit(input)
		if err == nil && d < 0 {
			t.Errorf("parseTimelimit(%q) = negative %v without error", input, d)
		}
	})
}

func FuzzReadSeriesCSV(f *testing.F) {
	var buf bytes.Buffer
	d := testDataset()
	if err := d.WriteSeriesCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("job_id,node,idx,time_unix,power_w\n1,0,0,0,abc\n")
	f.Fuzz(func(t *testing.T, input string) {
		var ds Dataset
		_ = ds.ReadSeriesCSV(strings.NewReader(input))
	})
}
