package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"hpcpower/internal/units"
)

// On-disk layout of a released dataset directory:
//
//	meta.json    — Meta (system name, node count, TDP, window, seed)
//	jobs.csv     — one row per job: accounting + power characteristics
//	system.csv   — one row per minute: active nodes, total power
//	series.csv   — long-format per-node minute samples (instrumented jobs)
const (
	metaFile   = "meta.json"
	jobsFile   = "jobs.csv"
	systemFile = "system.csv"
	seriesFile = "series.csv"
)

// jobsHeader is the column schema of jobs.csv.
var jobsHeader = []string{
	"job_id", "user", "app", "nodes",
	"submit_unix", "start_unix", "end_unix", "req_walltime_s",
	"avg_power_per_node_w", "energy_j",
	"instrumented",
	"temporal_cv_pct", "peak_overshoot_pct", "pct_time_above_mean10",
	"avg_spatial_spread_w", "spatial_spread_pct", "pct_time_spread_above_avg",
	"node_energy_spread_pct",
}

// Save writes the dataset into dir, creating it if needed.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: creating dataset dir: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, metaFile), d.writeMeta); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, jobsFile), d.WriteJobsCSV); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, systemFile), d.WriteSystemCSV); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, seriesFile), d.WriteSeriesCSV)
}

// Load reads a dataset previously written by Save.
func Load(dir string) (*Dataset, error) {
	d := &Dataset{Series: map[uint64][]NodeSeries{}}
	if err := readFile(filepath.Join(dir, metaFile), d.readMeta); err != nil {
		return nil, err
	}
	if err := readFile(filepath.Join(dir, jobsFile), d.ReadJobsCSV); err != nil {
		return nil, err
	}
	if err := readFile(filepath.Join(dir, systemFile), d.ReadSystemCSV); err != nil {
		return nil, err
	}
	if err := d.loadSeries(dir); err != nil {
		return nil, err
	}
	return d, nil
}

func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	return os.Rename(tmp, path)
}

func readFile(path string, read func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return read(bufio.NewReaderSize(f, 1<<20))
}

func (d *Dataset) writeMeta(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Meta)
}

func (d *Dataset) readMeta(r io.Reader) error {
	return json.NewDecoder(r).Decode(&d.Meta)
}

// WriteJobsCSV writes the job table in the jobs.csv schema.
func (d *Dataset) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jobsHeader); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	row := make([]string, len(jobsHeader))
	for i := range d.Jobs {
		j := &d.Jobs[i]
		row[0] = strconv.FormatUint(j.ID, 10)
		row[1] = j.User
		row[2] = j.App
		row[3] = strconv.Itoa(j.Nodes)
		row[4] = strconv.FormatInt(j.Submit.Unix(), 10)
		row[5] = strconv.FormatInt(j.Start.Unix(), 10)
		row[6] = strconv.FormatInt(j.End.Unix(), 10)
		row[7] = strconv.FormatInt(int64(j.ReqWall/time.Second), 10)
		row[8] = fmtF(float64(j.AvgPowerPerNode))
		row[9] = fmtF(float64(j.Energy))
		row[10] = strconv.FormatBool(j.Instrumented)
		row[11] = fmtF(j.TemporalCVPct)
		row[12] = fmtF(j.PeakOvershootPct)
		row[13] = fmtF(j.PctTimeAboveMean10)
		row[14] = fmtF(j.AvgSpatialSpreadW)
		row[15] = fmtF(j.SpatialSpreadPct)
		row[16] = fmtF(j.PctTimeSpreadAboveAvg)
		row[17] = fmtF(j.NodeEnergySpreadPct)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobsCSV parses a jobs.csv table, appending to d.Jobs.
func (d *Dataset) ReadJobsCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("trace: reading jobs header: %w", err)
	}
	if len(header) != len(jobsHeader) {
		return fmt.Errorf("trace: jobs.csv has %d columns, want %d", len(header), len(jobsHeader))
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: jobs.csv line %d: %w", line, err)
		}
		j, err := parseJobRow(rec)
		if err != nil {
			return fmt.Errorf("trace: jobs.csv line %d: %w", line, err)
		}
		d.Jobs = append(d.Jobs, j)
	}
}

func parseJobRow(rec []string) (Job, error) {
	var j Job
	p := fieldParser{rec: rec}
	j.ID = p.uint(0)
	j.User = rec[1]
	j.App = rec[2]
	j.Nodes = p.int(3)
	j.Submit = time.Unix(p.int64(4), 0).UTC()
	j.Start = time.Unix(p.int64(5), 0).UTC()
	j.End = time.Unix(p.int64(6), 0).UTC()
	j.ReqWall = time.Duration(p.int64(7)) * time.Second
	j.AvgPowerPerNode = units.Watts(p.float(8))
	j.Energy = units.Joules(p.float(9))
	j.Instrumented = p.bool(10)
	j.TemporalCVPct = p.float(11)
	j.PeakOvershootPct = p.float(12)
	j.PctTimeAboveMean10 = p.float(13)
	j.AvgSpatialSpreadW = p.float(14)
	j.SpatialSpreadPct = p.float(15)
	j.PctTimeSpreadAboveAvg = p.float(16)
	j.NodeEnergySpreadPct = p.float(17)
	return j, p.err
}

// fieldParser accumulates the first parse error over a record.
type fieldParser struct {
	rec []string
	err error
}

func (p *fieldParser) fail(i int, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("column %d (%q): %w", i, p.rec[i], err)
	}
}

func (p *fieldParser) uint(i int) uint64 {
	v, err := strconv.ParseUint(p.rec[i], 10, 64)
	if err != nil {
		p.fail(i, err)
	}
	return v
}

func (p *fieldParser) int(i int) int {
	v, err := strconv.Atoi(p.rec[i])
	if err != nil {
		p.fail(i, err)
	}
	return v
}

func (p *fieldParser) int64(i int) int64 {
	v, err := strconv.ParseInt(p.rec[i], 10, 64)
	if err != nil {
		p.fail(i, err)
	}
	return v
}

func (p *fieldParser) float(i int) float64 {
	v, err := strconv.ParseFloat(p.rec[i], 64)
	if err != nil {
		p.fail(i, err)
	}
	return v
}

func (p *fieldParser) bool(i int) bool {
	v, err := strconv.ParseBool(p.rec[i])
	if err != nil {
		p.fail(i, err)
	}
	return v
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteSystemCSV writes the cluster-level minute series.
func (d *Dataset) WriteSystemCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_unix", "active_nodes", "total_power_w"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, s := range d.System {
		err := cw.Write([]string{
			strconv.FormatInt(s.Time.Unix(), 10),
			strconv.Itoa(s.ActiveNodes),
			fmtF(s.TotalPowerW),
		})
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSystemCSV parses a system.csv series, appending to d.System.
func (d *Dataset) ReadSystemCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	if _, err := cr.Read(); err != nil {
		return fmt.Errorf("trace: reading system header: %w", err)
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: system.csv line %d: %w", line, err)
		}
		p := fieldParser{rec: rec}
		s := SystemSample{
			Time:        time.Unix(p.int64(0), 0).UTC(),
			ActiveNodes: p.int(1),
			TotalPowerW: p.float(2),
		}
		if p.err != nil {
			return fmt.Errorf("trace: system.csv line %d: %w", line, p.err)
		}
		d.System = append(d.System, s)
	}
}

// WriteSeriesCSV writes time-resolved node series in long format:
// job_id, node, sample index, sample time, power.
func (d *Dataset) WriteSeriesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job_id", "node", "idx", "time_unix", "power_w"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	ids := make([]uint64, 0, len(d.Series))
	for id := range d.Series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	row := make([]string, 5)
	for _, id := range ids {
		for _, ns := range d.Series[id] {
			for i, pw := range ns.Power {
				row[0] = strconv.FormatUint(ns.JobID, 10)
				row[1] = strconv.Itoa(ns.Node)
				row[2] = strconv.Itoa(i)
				row[3] = strconv.FormatInt(ns.Start.Add(time.Duration(i)*units.SampleInterval).Unix(), 10)
				row[4] = fmtF(pw)
				if err := cw.Write(row); err != nil {
					return fmt.Errorf("trace: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses a series.csv file into d.Series. Rows must be
// grouped by (job, node) and ordered by sample index within each group, as
// WriteSeriesCSV produces them.
func (d *Dataset) ReadSeriesCSV(r io.Reader) error {
	if d.Series == nil {
		d.Series = map[uint64][]NodeSeries{}
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	if _, err := cr.Read(); err != nil {
		return fmt.Errorf("trace: reading series header: %w", err)
	}
	var cur *NodeSeries
	flush := func() {
		if cur != nil {
			d.Series[cur.JobID] = append(d.Series[cur.JobID], *cur)
			cur = nil
		}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			flush()
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: series.csv line %d: %w", line, err)
		}
		p := fieldParser{rec: rec}
		jobID := p.uint(0)
		node := p.int(1)
		idx := p.int(2)
		ts := time.Unix(p.int64(3), 0).UTC()
		pw := p.float(4)
		if p.err != nil {
			return fmt.Errorf("trace: series.csv line %d: %w", line, p.err)
		}
		if cur == nil || cur.JobID != jobID || cur.Node != node {
			flush()
			if idx != 0 {
				return fmt.Errorf("trace: series.csv line %d: new series starts at idx %d", line, idx)
			}
			cur = &NodeSeries{JobID: jobID, Node: node, Start: ts}
		} else if idx != len(cur.Power) {
			return fmt.Errorf("trace: series.csv line %d: sample idx %d out of order", line, idx)
		}
		cur.Power = append(cur.Power, pw)
	}
}

// WriteJobsJSONL writes one JSON object per job — a convenience format for
// downstream tools that prefer JSON over CSV.
func (d *Dataset) WriteJobsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range d.Jobs {
		if err := enc.Encode(&d.Jobs[i]); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// ReadJobsJSONL parses jobs from a JSONL stream, appending to d.Jobs.
func (d *Dataset) ReadJobsJSONL(r io.Reader) error {
	dec := json.NewDecoder(r)
	for {
		var j Job
		if err := dec.Decode(&j); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		d.Jobs = append(d.Jobs, j)
	}
}
