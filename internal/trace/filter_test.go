package trace

import (
	"testing"
	"time"
)

func TestFilterJobs(t *testing.T) {
	d := testDataset()
	got := d.FilterJobs(func(j *Job) bool { return j.Nodes >= 8 })
	if len(got.Jobs) != 1 || got.Jobs[0].ID != 2 {
		t.Fatalf("filtered jobs = %+v", got.Jobs)
	}
	// The kept job's series travel with it.
	if len(got.Series) != 1 || len(got.Series[2]) != 2 {
		t.Errorf("series = %v", got.Series)
	}
	// Original untouched.
	if len(d.Jobs) != 2 {
		t.Error("filter mutated the original")
	}
}

func TestByAppByUserMultiNode(t *testing.T) {
	d := testDataset()
	if got := d.ByApp("FASTEST"); len(got.Jobs) != 1 || got.Jobs[0].App != "FASTEST" {
		t.Errorf("ByApp = %+v", got.Jobs)
	}
	if got := d.ByUser("u001"); len(got.Jobs) != 1 || got.Jobs[0].User != "u001" {
		t.Errorf("ByUser = %+v", got.Jobs)
	}
	if got := d.MultiNode(2); len(got.Jobs) != 2 {
		t.Errorf("MultiNode(2) = %d jobs", len(got.Jobs))
	}
	if got := d.MultiNode(100); len(got.Jobs) != 0 {
		t.Errorf("MultiNode(100) = %d jobs", len(got.Jobs))
	}
}

func TestTimeWindow(t *testing.T) {
	d := testDataset()
	from := t0.Add(5 * time.Minute)
	to := t0.Add(time.Hour)
	// Both jobs start at t0+10min: inside the window.
	got, err := d.TimeWindow(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 2 {
		t.Errorf("window jobs = %d", len(got.Jobs))
	}
	if !got.Meta.Start.Equal(from) || !got.Meta.End.Equal(to) {
		t.Errorf("meta window = %v..%v", got.Meta.Start, got.Meta.End)
	}
	// System samples clipped: original has t0 and t0+1m, both before from.
	if len(got.System) != 0 {
		t.Errorf("system samples = %d", len(got.System))
	}
	// Empty window rejected.
	if _, err := d.TimeWindow(to, from); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestMerge(t *testing.T) {
	d := testDataset()
	a := d.FilterJobs(func(j *Job) bool { return j.ID == 1 })
	b := d.FilterJobs(func(j *Job) bool { return j.ID == 2 })
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Jobs) != 2 || len(merged.Series) != 1 {
		t.Fatalf("merged: %d jobs, %d series", len(merged.Jobs), len(merged.Series))
	}
	if err := mergedValidate(merged); err != nil {
		t.Errorf("merged invalid: %v", err)
	}
	// Duplicate IDs rejected.
	if _, err := Merge(a, a); err == nil {
		t.Error("duplicate jobs accepted")
	}
	// Incompatible systems rejected.
	other := testDataset()
	other.Meta.System = "Other"
	if _, err := Merge(a, other); err == nil {
		t.Error("incompatible systems accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}

func mergedValidate(d *Dataset) error {
	// System samples are concatenated (duplicates allowed across parts in
	// this test); validate jobs only.
	clone := *d
	clone.System = nil
	return clone.Validate()
}
