package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestAccountingRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	var got Dataset
	if err := got.ReadAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(d.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(d.Jobs))
	}
	for i := range d.Jobs {
		want, have := &d.Jobs[i], &got.Jobs[i]
		if want.ID != have.ID || want.User != have.User || want.App != have.App ||
			want.Nodes != have.Nodes || want.ReqWall != have.ReqWall {
			t.Errorf("job %d mismatch:\nwant %+v\ngot  %+v", i, want, have)
		}
		if !want.Submit.Equal(have.Submit) || !want.Start.Equal(have.Start) || !want.End.Equal(have.End) {
			t.Errorf("job %d time mismatch", i)
		}
		// Accounting logs carry no power data.
		if have.AvgPowerPerNode != 0 || have.Energy != 0 {
			t.Errorf("job %d: power fields leaked into accounting", i)
		}
	}
}

func TestAccountingStates(t *testing.T) {
	d := testDataset()
	// Make job 1 run into its walltime: TIMEOUT.
	d.Jobs[0].End = d.Jobs[0].Start.Add(d.Jobs[0].ReqWall)
	var buf bytes.Buffer
	if err := d.WriteAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|TIMEOUT") {
		t.Errorf("timeout state missing:\n%s", out)
	}
	if !strings.Contains(out, "|COMPLETED") {
		t.Errorf("completed state missing:\n%s", out)
	}
}

func TestAccountingBadInput(t *testing.T) {
	header := strings.Join(sacctHeader, "|")
	cases := []struct {
		name string
		body string
	}{
		{"bad header", "Nope|Header\n1|u|a|x|x|x|01:00:00|1|COMPLETED\n"},
		{"short line", header + "\n1|u|a\n"},
		{"bad id", header + "\nX|u|a|2018-10-01T00:00:00|2018-10-01T00:00:00|2018-10-01T01:00:00|01:00:00|1|COMPLETED\n"},
		{"bad time", header + "\n1|u|a|yesterday|2018-10-01T00:00:00|2018-10-01T01:00:00|01:00:00|1|COMPLETED\n"},
		{"bad limit", header + "\n1|u|a|2018-10-01T00:00:00|2018-10-01T00:00:00|2018-10-01T01:00:00|forever|1|COMPLETED\n"},
		{"bad nodes", header + "\n1|u|a|2018-10-01T00:00:00|2018-10-01T00:00:00|2018-10-01T01:00:00|01:00:00|x|COMPLETED\n"},
		{"bad state", header + "\n1|u|a|2018-10-01T00:00:00|2018-10-01T00:00:00|2018-10-01T01:00:00|01:00:00|1|SLEEPING\n"},
	}
	for _, c := range cases {
		var d Dataset
		if err := d.ReadAccounting(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTimelimitFormat(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Minute, "01:30:00"},
		{time.Hour, "01:00:00"},
		{26*time.Hour + 3*time.Minute + 4*time.Second, "1-02:03:04"},
		{72 * time.Hour, "3-00:00:00"},
	}
	for _, c := range cases {
		if got := formatTimelimit(c.d); got != c.want {
			t.Errorf("formatTimelimit(%v) = %q, want %q", c.d, got, c.want)
		}
		back, err := parseTimelimit(c.want)
		if err != nil || back != c.d {
			t.Errorf("parseTimelimit(%q) = %v, %v", c.want, back, err)
		}
	}
	// MM:SS form.
	if got, err := parseTimelimit("30:00"); err != nil || got != 30*time.Minute {
		t.Errorf("parseTimelimit(30:00) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1:2:3:4", "x-00:00:00", "aa:bb"} {
		if _, err := parseTimelimit(bad); err == nil {
			t.Errorf("parseTimelimit(%q) accepted", bad)
		}
	}
}

func TestJoinPower(t *testing.T) {
	full := testDataset()
	// Accounting-only copy (no power).
	var buf bytes.Buffer
	if err := full.WriteAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	var acct Dataset
	if err := acct.ReadAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	joined := acct.JoinPower(full)
	if joined != len(full.Jobs) {
		t.Fatalf("joined %d of %d", joined, len(full.Jobs))
	}
	for i := range acct.Jobs {
		if acct.Jobs[i].AvgPowerPerNode != full.Jobs[i].AvgPowerPerNode {
			t.Errorf("job %d power not joined", i)
		}
	}
	// Unknown IDs are left untouched.
	var other Dataset
	other.Jobs = []Job{{ID: 999}}
	if n := other.JoinPower(full); n != 0 {
		t.Errorf("joined %d unknown jobs", n)
	}
}

func TestTotals(t *testing.T) {
	d := testDataset()
	var wantE float64
	var wantNH float64
	for i := range d.Jobs {
		wantE += float64(d.Jobs[i].Energy)
		wantNH += float64(d.Jobs[i].NodeHours())
	}
	if got := float64(d.TotalEnergy()); got != wantE {
		t.Errorf("TotalEnergy = %v, want %v", got, wantE)
	}
	if got := float64(d.TotalNodeHours()); got != wantNH {
		t.Errorf("TotalNodeHours = %v, want %v", got, wantNH)
	}
}
