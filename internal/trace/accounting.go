package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"hpcpower/internal/units"
)

// This file implements an sacct-style accounting-log interchange format.
// The study joins telemetry with the batch systems' accounting records
// (Torque on Emmy, Slurm on Meggie, §2.2); this format carries exactly
// the fields those records contribute, one pipe-separated line per job —
// the shape of `sacct -P` output, which downstream HPC tooling already
// speaks.

// sacctHeader is the column schema of the accounting export.
var sacctHeader = []string{
	"JobID", "User", "JobName", "Submit", "Start", "End",
	"Timelimit", "NNodes", "State",
}

const sacctTimeLayout = "2006-01-02T15:04:05"

// WriteAccounting writes the job table as a pipe-separated sacct-style
// accounting log. Power fields are not part of accounting records; use
// jobs.csv for the joined release.
func (d *Dataset) WriteAccounting(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, strings.Join(sacctHeader, "|")); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		state := "COMPLETED"
		if j.Runtime() >= j.ReqWall {
			state = "TIMEOUT" // killed at the walltime limit
		}
		_, err := fmt.Fprintf(bw, "%d|%s|%s|%s|%s|%s|%s|%d|%s\n",
			j.ID, j.User, j.App,
			j.Submit.UTC().Format(sacctTimeLayout),
			j.Start.UTC().Format(sacctTimeLayout),
			j.End.UTC().Format(sacctTimeLayout),
			formatTimelimit(j.ReqWall),
			j.Nodes, state,
		)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadAccounting parses an sacct-style log, appending jobs to d.Jobs.
// Power fields are zero (accounting records carry none); callers join
// them from telemetry.
func (d *Dataset) ReadAccounting(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if text != strings.Join(sacctHeader, "|") {
				return fmt.Errorf("trace: accounting header mismatch: %q", text)
			}
			continue
		}
		fields := strings.Split(text, "|")
		if len(fields) != len(sacctHeader) {
			return fmt.Errorf("trace: accounting line %d has %d fields, want %d", line, len(fields), len(sacctHeader))
		}
		j, err := parseAccountingLine(fields)
		if err != nil {
			return fmt.Errorf("trace: accounting line %d: %w", line, err)
		}
		d.Jobs = append(d.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

func parseAccountingLine(fields []string) (Job, error) {
	var j Job
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return j, fmt.Errorf("bad JobID %q: %w", fields[0], err)
	}
	j.ID = id
	j.User = fields[1]
	j.App = fields[2]
	if j.Submit, err = time.ParseInLocation(sacctTimeLayout, fields[3], time.UTC); err != nil {
		return j, fmt.Errorf("bad Submit: %w", err)
	}
	if j.Start, err = time.ParseInLocation(sacctTimeLayout, fields[4], time.UTC); err != nil {
		return j, fmt.Errorf("bad Start: %w", err)
	}
	if j.End, err = time.ParseInLocation(sacctTimeLayout, fields[5], time.UTC); err != nil {
		return j, fmt.Errorf("bad End: %w", err)
	}
	if j.ReqWall, err = parseTimelimit(fields[6]); err != nil {
		return j, fmt.Errorf("bad Timelimit: %w", err)
	}
	nodes, err := strconv.Atoi(fields[7])
	if err != nil {
		return j, fmt.Errorf("bad NNodes %q: %w", fields[7], err)
	}
	j.Nodes = nodes
	switch fields[8] {
	case "COMPLETED", "TIMEOUT", "FAILED", "CANCELLED":
	default:
		return j, fmt.Errorf("unknown State %q", fields[8])
	}
	return j, nil
}

// formatTimelimit renders a duration in Slurm's D-HH:MM:SS / HH:MM:SS form.
func formatTimelimit(d time.Duration) string {
	total := int64(d / time.Second)
	days := total / 86400
	h := (total % 86400) / 3600
	m := (total % 3600) / 60
	s := total % 60
	if days > 0 {
		return fmt.Sprintf("%d-%02d:%02d:%02d", days, h, m, s)
	}
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}

// parseTimelimit parses D-HH:MM:SS, HH:MM:SS, or MM:SS.
func parseTimelimit(s string) (time.Duration, error) {
	var days int64
	rest := s
	if i := strings.IndexByte(s, '-'); i >= 0 {
		d, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad day part %q", s)
		}
		days = d
		rest = s[i+1:]
	}
	parts := strings.Split(rest, ":")
	var h, m, sec int64
	var err error
	switch len(parts) {
	case 3:
		if h, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return 0, fmt.Errorf("bad hours %q", rest)
		}
		if m, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return 0, fmt.Errorf("bad minutes %q", rest)
		}
		if sec, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
			return 0, fmt.Errorf("bad seconds %q", rest)
		}
	case 2:
		if m, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return 0, fmt.Errorf("bad minutes %q", rest)
		}
		if sec, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return 0, fmt.Errorf("bad seconds %q", rest)
		}
	default:
		return 0, fmt.Errorf("bad timelimit %q", s)
	}
	return time.Duration(days*86400+h*3600+m*60+sec) * time.Second, nil
}

// JoinPower copies the power characteristics of src's jobs into d's jobs
// by job ID — the accounting-plus-telemetry join of §2.2. It returns the
// number of jobs joined.
func (d *Dataset) JoinPower(src *Dataset) int {
	byID := make(map[uint64]*Job, len(src.Jobs))
	for i := range src.Jobs {
		byID[src.Jobs[i].ID] = &src.Jobs[i]
	}
	joined := 0
	for i := range d.Jobs {
		s, ok := byID[d.Jobs[i].ID]
		if !ok {
			continue
		}
		dst := &d.Jobs[i]
		dst.AvgPowerPerNode = s.AvgPowerPerNode
		dst.Energy = s.Energy
		dst.Instrumented = s.Instrumented
		dst.TemporalCVPct = s.TemporalCVPct
		dst.PeakOvershootPct = s.PeakOvershootPct
		dst.PctTimeAboveMean10 = s.PctTimeAboveMean10
		dst.AvgSpatialSpreadW = s.AvgSpatialSpreadW
		dst.SpatialSpreadPct = s.SpatialSpreadPct
		dst.PctTimeSpreadAboveAvg = s.PctTimeSpreadAboveAvg
		dst.NodeEnergySpreadPct = s.NodeEnergySpreadPct
		joined++
	}
	return joined
}

// TotalEnergy sums the energy of all jobs in the dataset.
func (d *Dataset) TotalEnergy() units.Joules {
	var e units.Joules
	for i := range d.Jobs {
		e += d.Jobs[i].Energy
	}
	return e
}

// TotalNodeHours sums the node-hours of all jobs in the dataset.
func (d *Dataset) TotalNodeHours() units.NodeHours {
	var nh units.NodeHours
	for i := range d.Jobs {
		nh += d.Jobs[i].NodeHours()
	}
	return nh
}
