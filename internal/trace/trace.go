// Package trace defines the power-trace data model of the study and its
// on-disk formats.
//
// The paper open-sourced two kinds of data (§2.2):
//
//   - job-level records: batch-system accounting (user, size, submit/start/
//     end, requested walltime) joined with power characteristics averaged
//     over the job's runtime and nodes; and
//   - time-resolved records: per-node, per-minute RAPL power samples for
//     instrumented jobs, used for the temporal and spatial analyses.
//
// This package provides those records, the whole-dataset container, and
// CSV/JSONL serialization so a synthesized dataset can be released and
// re-loaded exactly like the Zenodo original.
package trace

import (
	"fmt"
	"sort"
	"time"

	"hpcpower/internal/units"
)

// Job is one execution instance of an application: the unit of analysis in
// the paper. Different runs of the same application are different jobs.
type Job struct {
	ID      uint64        // unique job identifier
	User    string        // anonymized user identifier ("u042")
	App     string        // application name parsed from the scheduler log
	Nodes   int           // number of exclusively allocated compute nodes
	Submit  time.Time     // submission to the batch queue
	Start   time.Time     // execution start
	End     time.Time     // execution end
	ReqWall time.Duration // requested wall time (available pre-execution)

	// AvgPowerPerNode is the paper's central metric: power averaged over
	// the job's entire runtime and all of its nodes (PKG+DRAM RAPL).
	AvgPowerPerNode units.Watts
	// Energy is the total energy consumed by the job across all nodes.
	Energy units.Joules

	// Time-resolved characterization, present when Instrumented is true
	// (the paper logged per-node counters for a one-month subset).
	Instrumented bool
	// TemporalCVPct is the std of the job's node-averaged power over time,
	// as a percentage of its mean (paper: ~11% on average).
	TemporalCVPct float64
	// PeakOvershootPct is (peak − mean)/mean of the job's power in percent
	// (Fig. 6/7a; paper: ~10-12% on average).
	PeakOvershootPct float64
	// PctTimeAboveMean10 is the percentage of runtime spent with power more
	// than 10% above the job mean (Fig. 6/7b).
	PctTimeAboveMean10 float64
	// AvgSpatialSpreadW is the mean over time of (max node power − min node
	// power) in watts (Fig. 8/9a; paper: ~20 W).
	AvgSpatialSpreadW float64
	// SpatialSpreadPct is AvgSpatialSpreadW as a percentage of
	// AvgPowerPerNode (Fig. 9b; paper: ~15%).
	SpatialSpreadPct float64
	// PctTimeSpreadAboveAvg is the percentage of runtime during which the
	// instantaneous spatial spread exceeds the job's average spread (Fig. 9c).
	PctTimeSpreadAboveAvg float64
	// NodeEnergySpreadPct is (max node energy − min node energy)/min node
	// energy in percent (Fig. 10; paper: 20% of jobs above 15%).
	NodeEnergySpreadPct float64
}

// Runtime returns the job's execution time.
func (j *Job) Runtime() time.Duration { return j.End.Sub(j.Start) }

// RuntimeMinutes returns the job runtime as a whole number of telemetry
// samples (at least one).
func (j *Job) RuntimeMinutes() int { return units.Minutes(j.Runtime()) }

// NodeHours returns the node-hours charged to the job.
func (j *Job) NodeHours() units.NodeHours {
	return units.NodeHoursOf(j.Nodes, j.Runtime())
}

// Validate reports the first structural problem with the record, if any.
func (j *Job) Validate() error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("trace: job %d has %d nodes", j.ID, j.Nodes)
	case j.End.Before(j.Start):
		return fmt.Errorf("trace: job %d ends before it starts", j.ID)
	case j.Start.Before(j.Submit):
		return fmt.Errorf("trace: job %d starts before submission", j.ID)
	case j.ReqWall <= 0:
		return fmt.Errorf("trace: job %d has non-positive requested walltime", j.ID)
	case j.AvgPowerPerNode < 0:
		return fmt.Errorf("trace: job %d has negative power", j.ID)
	case j.Energy < 0:
		return fmt.Errorf("trace: job %d has negative energy", j.ID)
	}
	return nil
}

// NodeSeries is the time-resolved power trace of one node of one job:
// one averaged sample per minute, as reported by RAPL (PKG+DRAM).
type NodeSeries struct {
	JobID uint64
	Node  int       // node index within the job, 0-based
	Start time.Time // time of the first sample
	Power []float64 // watts, one entry per minute
}

// Energy returns the total energy of the series.
func (ns *NodeSeries) Energy() units.Joules {
	var e float64
	for _, p := range ns.Power {
		e += p * units.SecondsPerSample
	}
	return units.Joules(e)
}

// SystemSample is one minute of whole-cluster telemetry: how many nodes
// were executing jobs, and the total power drawn by all compute nodes.
// Figs. 1 and 2 are drawn from this series.
type SystemSample struct {
	Time        time.Time
	ActiveNodes int
	TotalPowerW float64
}

// Meta describes the system a dataset was collected on.
type Meta struct {
	System     string    // "Emmy" or "Meggie"
	TotalNodes int       // compute nodes in the cluster
	NodeTDPW   float64   // node-level TDP in watts (CPU+DRAM)
	Start      time.Time // observation window start
	End        time.Time // observation window end
	Seed       uint64    // generator seed (0 for real data)
}

// Dataset is a complete released trace: metadata, the job table, the
// cluster-level minute series, and time-resolved node series for the
// instrumented subset of jobs.
type Dataset struct {
	Meta   Meta
	Jobs   []Job
	System []SystemSample
	// Series holds per-node series for instrumented jobs, keyed by job ID.
	Series map[uint64][]NodeSeries
}

// Job returns the job with the given ID, or nil if absent.
func (d *Dataset) Job(id uint64) *Job {
	for i := range d.Jobs {
		if d.Jobs[i].ID == id {
			return &d.Jobs[i]
		}
	}
	return nil
}

// InstrumentedJobs returns the jobs that carry time-resolved metrics.
func (d *Dataset) InstrumentedJobs() []*Job {
	var out []*Job
	for i := range d.Jobs {
		if d.Jobs[i].Instrumented {
			out = append(out, &d.Jobs[i])
		}
	}
	return out
}

// SortJobs orders the job table by start time, then ID — the order
// accounting logs are conventionally released in.
func (d *Dataset) SortJobs() {
	sort.Slice(d.Jobs, func(a, b int) bool {
		ja, jb := &d.Jobs[a], &d.Jobs[b]
		if !ja.Start.Equal(jb.Start) {
			return ja.Start.Before(jb.Start)
		}
		return ja.ID < jb.ID
	})
}

// Validate checks every job record and dataset-level invariants.
func (d *Dataset) Validate() error {
	if d.Meta.TotalNodes <= 0 {
		return fmt.Errorf("trace: dataset has %d total nodes", d.Meta.TotalNodes)
	}
	if d.Meta.NodeTDPW <= 0 {
		return fmt.Errorf("trace: dataset has TDP %v", d.Meta.NodeTDPW)
	}
	seen := make(map[uint64]bool, len(d.Jobs))
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("trace: duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
		if j.Nodes > d.Meta.TotalNodes {
			return fmt.Errorf("trace: job %d uses %d of %d nodes", j.ID, j.Nodes, d.Meta.TotalNodes)
		}
	}
	for id, series := range d.Series {
		if !seen[id] {
			return fmt.Errorf("trace: series for unknown job %d", id)
		}
		for _, ns := range series {
			if ns.JobID != id {
				return fmt.Errorf("trace: series keyed %d but tagged %d", id, ns.JobID)
			}
		}
	}
	return nil
}

// Users returns the distinct user identifiers in the job table.
func (d *Dataset) Users() []string {
	set := map[string]bool{}
	for i := range d.Jobs {
		set[d.Jobs[i].User] = true
	}
	users := make([]string, 0, len(set))
	for u := range set {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// Apps returns the distinct application names in the job table.
func (d *Dataset) Apps() []string {
	set := map[string]bool{}
	for i := range d.Jobs {
		set[d.Jobs[i].App] = true
	}
	apps := make([]string, 0, len(set))
	for a := range set {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	return apps
}
