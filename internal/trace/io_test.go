package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJobsCSVRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteJobsCSV(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var got Dataset
	if err := got.ReadJobsCSV(&buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Jobs) != len(d.Jobs) {
		t.Fatalf("job count = %d, want %d", len(got.Jobs), len(d.Jobs))
	}
	for i := range d.Jobs {
		if !jobsEqual(&d.Jobs[i], &got.Jobs[i]) {
			t.Errorf("job %d round-trip mismatch:\n want %+v\n got  %+v", i, d.Jobs[i], got.Jobs[i])
		}
	}
}

// jobsEqual compares jobs allowing for float formatting precision.
func jobsEqual(a, b *Job) bool {
	fe := func(x, y float64) bool {
		if x == 0 && y == 0 {
			return true
		}
		return math.Abs(x-y) <= 1e-6*math.Max(math.Abs(x), math.Abs(y))
	}
	return a.ID == b.ID && a.User == b.User && a.App == b.App &&
		a.Nodes == b.Nodes && a.Submit.Equal(b.Submit) &&
		a.Start.Equal(b.Start) && a.End.Equal(b.End) && a.ReqWall == b.ReqWall &&
		fe(float64(a.AvgPowerPerNode), float64(b.AvgPowerPerNode)) &&
		fe(float64(a.Energy), float64(b.Energy)) &&
		a.Instrumented == b.Instrumented &&
		fe(a.TemporalCVPct, b.TemporalCVPct) &&
		fe(a.PeakOvershootPct, b.PeakOvershootPct) &&
		fe(a.AvgSpatialSpreadW, b.AvgSpatialSpreadW)
}

func TestJobsCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"short header", "job_id,user\n"},
		{"bad id", strings.Join(jobsHeader, ",") + "\nnotanum," + strings.Repeat("1,", 16) + "1\n"},
	}
	for _, c := range cases {
		var d Dataset
		if err := d.ReadJobsCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSystemCSVRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteSystemCSV(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var got Dataset
	if err := got.ReadSystemCSV(&buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.System) != 2 {
		t.Fatalf("system samples = %d", len(got.System))
	}
	if !got.System[0].Time.Equal(d.System[0].Time) ||
		got.System[0].ActiveNodes != 500 ||
		math.Abs(got.System[1].TotalPowerW-71500.5) > 1e-6 {
		t.Errorf("system round-trip mismatch: %+v", got.System)
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteSeriesCSV(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := Dataset{}
	if err := got.ReadSeriesCSV(&buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Series) != 1 {
		t.Fatalf("series jobs = %d", len(got.Series))
	}
	ns := got.Series[2]
	if len(ns) != 2 {
		t.Fatalf("series per job = %d", len(ns))
	}
	if !reflect.DeepEqual(ns[0].Power, []float64{140, 150, 160}) {
		t.Errorf("node 0 power = %v", ns[0].Power)
	}
	if ns[1].Node != 1 || !ns[1].Start.Equal(d.Jobs[1].Start) {
		t.Errorf("node 1 meta = %+v", ns[1])
	}
}

func TestSeriesCSVOrderErrors(t *testing.T) {
	header := "job_id,node,idx,time_unix,power_w\n"
	cases := []struct {
		name string
		body string
	}{
		{"starts mid-series", header + "1,0,3,1538352000,100\n"},
		{"gap in idx", header + "1,0,0,1538352000,100\n1,0,2,1538352120,100\n"},
	}
	for _, c := range cases {
		var d Dataset
		if err := d.ReadSeriesCSV(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := testDataset()
	if err := d.Save(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Meta.System != "Emmy" || got.Meta.TotalNodes != 560 ||
		got.Meta.NodeTDPW != 210 || got.Meta.Seed != 42 {
		t.Errorf("meta = %+v", got.Meta)
	}
	if !got.Meta.Start.Equal(d.Meta.Start) {
		t.Errorf("meta start = %v", got.Meta.Start)
	}
	if len(got.Jobs) != 2 || len(got.System) != 2 || len(got.Series) != 1 {
		t.Errorf("sizes: jobs=%d system=%d series=%d", len(got.Jobs), len(got.System), len(got.Series))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded dataset invalid: %v", err)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("expected error for missing dataset")
	}
}

func TestJobsJSONLRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteJobsJSONL(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("jsonl lines = %d", lines)
	}
	var got Dataset
	if err := got.ReadJobsJSONL(&buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Jobs) != 2 || got.Jobs[1].App != "FASTEST" {
		t.Errorf("jsonl jobs = %+v", got.Jobs)
	}
	// Times survive exactly through JSON.
	if !got.Jobs[0].Start.Equal(d.Jobs[0].Start) {
		t.Errorf("jsonl time mismatch")
	}
}

func TestJSONLBadInput(t *testing.T) {
	var d Dataset
	if err := d.ReadJobsJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("expected error")
	}
}

func TestWriteJobsCSVGolden(t *testing.T) {
	// Pin the schema: the header row is part of the released-data contract.
	var d Dataset
	var buf bytes.Buffer
	if err := d.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join(jobsHeader, ",") + "\n"
	if buf.String() != want {
		t.Errorf("header = %q, want %q", buf.String(), want)
	}
}

func BenchmarkJobsCSVWrite(b *testing.B) {
	d := &Dataset{}
	base := validJob(0)
	for i := 0; i < 5000; i++ {
		j := base
		j.ID = uint64(i)
		d.Jobs = append(d.Jobs, j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := d.WriteJobsCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobsCSVRead(b *testing.B) {
	d := &Dataset{}
	base := validJob(0)
	for i := 0; i < 5000; i++ {
		j := base
		j.ID = uint64(i)
		d.Jobs = append(d.Jobs, j)
	}
	var buf bytes.Buffer
	if err := d.WriteJobsCSV(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got Dataset
		if err := got.ReadJobsCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSaveCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := testDataset()
	if err := d.SaveCompressed(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Uncompressed series must not exist; gz must.
	if _, err := os.Stat(filepath.Join(dir, "series.csv")); !os.IsNotExist(err) {
		t.Error("plain series.csv present after compressed save")
	}
	if _, err := os.Stat(filepath.Join(dir, "series.csv.gz")); err != nil {
		t.Fatalf("series.csv.gz missing: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Series) != 1 || len(got.Series[2]) != 2 {
		t.Fatalf("series round trip: %d", len(got.Series))
	}
	if !reflect.DeepEqual(got.Series[2][0].Power, d.Series[2][0].Power) {
		t.Errorf("power mismatch after gzip round trip")
	}
}

func TestSaveCompressedReplacesPlain(t *testing.T) {
	dir := t.TempDir()
	d := testDataset()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveCompressed(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "series.csv")); !os.IsNotExist(err) {
		t.Error("stale plain series.csv survives compressed save")
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("load after replace: %v", err)
	}
}
