package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Compressed release support: at full study scale the time-resolved
// series file dominates the dataset size; gzip cuts it by roughly 4×.
// SaveCompressed writes series.csv.gz instead of series.csv, and Load
// transparently reads either.

const seriesGzFile = "series.csv.gz"

// SaveCompressed writes the dataset like Save but gzips the series file.
func (d *Dataset) SaveCompressed(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: creating dataset dir: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, metaFile), d.writeMeta); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, jobsFile), d.WriteJobsCSV); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, systemFile), d.WriteSystemCSV); err != nil {
		return err
	}
	err := writeFileAtomic(filepath.Join(dir, seriesGzFile), func(w io.Writer) error {
		gz := gzip.NewWriter(w)
		if err := d.WriteSeriesCSV(gz); err != nil {
			gz.Close()
			return err
		}
		return gz.Close()
	})
	if err != nil {
		return err
	}
	// Remove a stale uncompressed series file so Load is unambiguous.
	if err := os.Remove(filepath.Join(dir, seriesFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// loadSeries reads the dataset's series from whichever form exists.
// It returns an error when neither file is present.
func (d *Dataset) loadSeries(dir string) error {
	plain := filepath.Join(dir, seriesFile)
	if _, err := os.Stat(plain); err == nil {
		return readFile(plain, d.ReadSeriesCSV)
	}
	gzPath := filepath.Join(dir, seriesGzFile)
	return readFile(gzPath, func(r io.Reader) error {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer gz.Close()
		return d.ReadSeriesCSV(gz)
	})
}
