package anomaly

import (
	"sync"
	"testing"
	"time"

	"hpcpower/internal/trace"
)

// fakeStore mirrors what tsdb does with fingerprints: one per job,
// updated per sample under a lock, copied out on lookup.
type fakeStore struct {
	mu  sync.Mutex
	fps map[uint64]*Fingerprint
}

func newFakeStore() *fakeStore { return &fakeStore{fps: map[uint64]*Fingerprint{}} }

func (s *fakeStore) apply(batch []trace.PowerSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, smp := range batch {
		if smp.JobID == 0 {
			continue
		}
		fp := s.fps[smp.JobID]
		if fp == nil {
			fp = &Fingerprint{}
			s.fps[smp.JobID] = fp
		}
		fp.Update(smp.Unix, smp.PowerW)
	}
}

func (s *fakeStore) lookup(job uint64) (Fingerprint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := s.fps[job]
	if fp == nil {
		return Fingerprint{}, false
	}
	return *fp, true
}

// harness couples a fake store with an engine, feeding samples the way
// the serving layer does: store first, then ObserveBatch.
type harness struct {
	store *fakeStore
	eng   *Engine
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	st := newFakeStore()
	cfg.Lookup = st.lookup
	eng := NewEngine(cfg)
	t.Cleanup(eng.Close)
	return &harness{store: st, eng: eng}
}

// feed applies samples in fixed-size batches.
func (h *harness) feed(samples []trace.PowerSample, batchSize int, traceID string) {
	if batchSize <= 0 {
		batchSize = 64
	}
	for len(samples) > 0 {
		n := batchSize
		if n > len(samples) {
			n = len(samples)
		}
		h.store.apply(samples[:n])
		h.eng.ObserveBatch(samples[:n], traceID)
		samples = samples[n:]
	}
}

// flatSeries builds a constant-power single-job series.
func flatSeries(job uint64, node int, start int64, minutes int, w float64) []trace.PowerSample {
	out := make([]trace.PowerSample, minutes)
	for i := range out {
		out[i] = trace.PowerSample{Node: node, JobID: job, Unix: start + int64(i)*60, PowerW: w}
	}
	return out
}

// alternating builds a high-variance series (never flat).
func alternating(job uint64, node int, start int64, minutes int, lo, hi float64) []trace.PowerSample {
	out := make([]trace.PowerSample, minutes)
	for i := range out {
		w := lo
		if i%2 == 1 {
			w = hi
		}
		out[i] = trace.PowerSample{Node: node, JobID: job, Unix: start + int64(i)*60, PowerW: w}
	}
	return out
}

func fires(e *Engine) []Event    { return e.Events(Filter{Type: EventFire, Node: -1}) }
func resolves(e *Engine) []Event { return e.Events(Filter{Type: EventResolve, Node: -1}) }

// TestEngineFireAndResolve walks one (job, rule) machine through the
// full hysteresis cycle on sample time alone.
func TestEngineFireAndResolve(t *testing.T) {
	h := newHarness(t, Config{})
	const job, node = 42, 7
	start := int64(1_700_000_000)

	// 45 minutes rock-flat at 200 W: flatline condition holds from
	// MinSamples on, fires after MinDuration (15 m) more.
	h.feed(flatSeries(job, node, start, 45, 200), 5, "trace-fire")
	fs := fires(h.eng)
	if len(fs) != 1 {
		t.Fatalf("got %d fire events, want 1: %+v", len(fs), fs)
	}
	ev := fs[0]
	if ev.Rule != DetectFlatline || ev.Job != job || ev.Node != node {
		t.Fatalf("bad fire event: %+v", ev)
	}
	if ev.Trace != "trace-fire" {
		t.Fatalf("fire event trace = %q, want the triggering batch's ID", ev.Trace)
	}
	if ev.Severity != SeverityCritical || ev.Message == "" {
		t.Fatalf("fire event missing severity/message: %+v", ev)
	}
	active := h.eng.Active()
	if len(active) != 1 || active[0].Job != job || active[0].Rule != DetectFlatline {
		t.Fatalf("active alerts = %+v, want the flatline alert", active)
	}

	// 15 minutes of mild alternation: variance recovers (clearing the
	// flatline condition) without swinging far enough to trip the
	// overshoot rule; resolve lands after ResolveAfter (10 m).
	h.feed(alternating(job, node, start+45*60, 15, 180, 230), 5, "trace-resolve")
	rs := resolves(h.eng)
	if len(rs) != 1 {
		t.Fatalf("got %d resolve events, want 1: %+v", len(rs), rs)
	}
	if rs[0].FiredUnix != ev.Unix {
		t.Fatalf("resolve.FiredUnix = %d, want the fire time %d", rs[0].FiredUnix, ev.Unix)
	}
	if len(h.eng.Active()) != 0 {
		t.Fatalf("alert still active after resolve: %+v", h.eng.Active())
	}
	st := h.eng.Snapshot()
	if st.Fired != 1 || st.Resolved != 1 || st.Active != 0 {
		t.Fatalf("counters fired=%d resolved=%d active=%d, want 1/1/0", st.Fired, st.Resolved, st.Active)
	}
}

// TestEngineDedupWhileFiring: a firing pair emits exactly one fire
// event no matter how long the condition keeps holding.
func TestEngineDedupWhileFiring(t *testing.T) {
	h := newHarness(t, Config{})
	const job = 9
	start := int64(1_700_000_000)
	h.feed(flatSeries(job, 1, start, 240, 150), 10, "t")
	if got := len(fires(h.eng)); got != 1 {
		t.Fatalf("4 hours of a held condition fired %d times, want 1", got)
	}
	st := h.eng.Snapshot()
	if st.Suppressed == 0 {
		t.Fatal("dedup did not count suppressed duplicates")
	}
	if st.Active != 1 {
		t.Fatalf("active = %d, want 1", st.Active)
	}
}

// TestEngineMinDurationGate: a condition that holds for less than
// MinDuration never fires.
func TestEngineMinDurationGate(t *testing.T) {
	h := newHarness(t, Config{})
	const job = 5
	start := int64(1_700_000_000)
	// Flat long enough for the condition to activate (MinSamples is 15)
	// but well short of flatline's 15-minute MinDuration from condition
	// start, then mildly noisy so the condition clears.
	h.feed(flatSeries(job, 1, start, 20, 200), 5, "t")
	h.feed(alternating(job, 1, start+20*60, 30, 180, 230), 5, "t")
	for _, ev := range fires(h.eng) {
		if ev.Rule == DetectFlatline {
			t.Fatalf("flatline fired without holding MinDuration: %+v", ev)
		}
	}
}

// TestEngineProfilesDetected is the detector-quality gate: every
// injector profile is caught by its matching detector, the control
// profile stays silent, and Score reports perfect precision/recall.
func TestEngineProfilesDetected(t *testing.T) {
	h := newHarness(t, Config{})
	start := int64(1_700_000_000)
	labels := Labels{}
	var all []trace.PowerSample
	jobs := append([]string{ProfileNormal}, Profiles()...)
	for i, profile := range jobs {
		job := uint64(100 + i)
		labels[job] = profile
		s, err := GenProfile(profile, job, 10+i, start, 120, 220, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, s...)
	}
	// Interleave by time the way live ingest would deliver, in batches
	// spanning ~5 sample-minutes: hysteresis advances only at batch
	// evaluations, so batches must slice time finer than the rules'
	// MinDuration windows (powload's injection path does the same).
	sortByUnix(all)
	h.feed(all, 25, "t")

	fs := fires(h.eng)
	v := Score(labels, fs)
	if v.Recall != 1 {
		t.Fatalf("recall = %v (missed jobs %v); fires: %+v", v.Recall, v.Missed, fs)
	}
	if v.Precision != 1 {
		t.Fatalf("precision = %v (false-positive jobs %v); fires: %+v", v.Precision, v.FalseJobs, fs)
	}
	for _, ev := range fs {
		if labels[ev.Job] == ProfileNormal {
			t.Fatalf("the control job fired %s: %+v", ev.Rule, ev)
		}
	}
}

func sortByUnix(s []trace.PowerSample) {
	// Insertion-free stable sort via the standard library would import
	// sort; keep it simple and explicit.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Unix < s[j-1].Unix; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestEngineDeliverGate: a follower records events but sinks stay
// silent until promotion.
func TestEngineDeliverGate(t *testing.T) {
	sink := &captureSink{}
	h := newHarness(t, Config{Sinks: []Sink{sink}})
	h.eng.SetDeliver(false)
	const job = 3
	start := int64(1_700_000_000)
	h.feed(flatSeries(job, 1, start, 60, 150), 10, "t")
	if got := len(fires(h.eng)); got != 1 {
		t.Fatalf("follower ring recorded %d fires, want 1", got)
	}
	if n := sink.count(); n != 0 {
		t.Fatalf("follower delivered %d events to sinks, want 0", n)
	}
	h.eng.SetDeliver(true)
	if !h.eng.Delivering() {
		t.Fatal("Delivering() = false after SetDeliver(true)")
	}
	// New transitions after promotion do reach the sink.
	h.feed(alternating(job, 1, start+60*60, 15, 100, 300), 10, "t")
	if n := sink.count(); n == 0 {
		t.Fatal("promoted engine delivered nothing to sinks")
	}
}

// captureSink records delivered events.
type captureSink struct {
	mu  sync.Mutex
	evs []Event
}

func (s *captureSink) Name() string { return "capture" }
func (s *captureSink) Send(ev Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}
func (s *captureSink) Health() SinkHealth {
	return SinkHealth{Name: "capture", Healthy: true, Delivered: int64(s.count())}
}
func (s *captureSink) Close() {}
func (s *captureSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evs)
}

// TestEngineEventFilters exercises the ring query surface.
func TestEngineEventFilters(t *testing.T) {
	h := newHarness(t, Config{})
	start := int64(1_700_000_000)
	h.feed(flatSeries(21, 1, start, 60, 150), 10, "t") // flatline (critical)
	// Zombie: active then floor.
	zs, _ := GenProfile(ProfileZombie, 22, 2, start, 120, 220, 7)
	h.feed(zs, 10, "t")

	all := h.eng.Events(Filter{Node: -1})
	if len(all) < 2 {
		t.Fatalf("expected at least 2 events, got %+v", all)
	}
	// Newest first.
	for i := 1; i < len(all); i++ {
		if all[i].Seq > all[i-1].Seq {
			t.Fatal("events not newest-first")
		}
	}
	onlyJob := h.eng.Events(Filter{Job: 21, Node: -1})
	for _, ev := range onlyJob {
		if ev.Job != 21 {
			t.Fatalf("job filter leaked %+v", ev)
		}
	}
	crit := h.eng.Events(Filter{Node: -1, MinSeverity: SeverityLevel(SeverityCritical)})
	for _, ev := range crit {
		if ev.Severity != SeverityCritical {
			t.Fatalf("severity filter leaked %+v", ev)
		}
	}
	if got := h.eng.Events(Filter{Node: -1, Limit: 1}); len(got) != 1 {
		t.Fatalf("limit filter returned %d events", len(got))
	}
	if got := h.eng.Events(Filter{Node: 2}); len(got) == 0 {
		t.Fatal("node filter dropped everything")
	}
	seq := all[len(all)-1].Seq
	after := h.eng.Events(Filter{Node: -1, SinceSeq: seq})
	for _, ev := range after {
		if ev.Seq <= seq {
			t.Fatalf("since-seq filter leaked %+v", ev)
		}
	}
}

// TestEngineSubscribe: streaming consumers see new events.
func TestEngineSubscribe(t *testing.T) {
	h := newHarness(t, Config{})
	id, ch := h.eng.Subscribe(16)
	defer h.eng.Unsubscribe(id)
	start := int64(1_700_000_000)
	h.feed(flatSeries(31, 1, start, 60, 150), 10, "t")
	select {
	case ev := <-ch:
		if ev.Type != EventFire || ev.Job != 31 {
			t.Fatalf("streamed event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event streamed to subscriber")
	}
}

// TestRingEviction: the ring keeps the newest events and counts what
// it evicted.
func TestRingEviction(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 10; i++ {
		r.append(Event{Type: EventFire, Job: uint64(i), Unix: int64(i)})
	}
	evs, seq := r.snapshot()
	if seq != 10 || len(evs) != 4 {
		t.Fatalf("seq=%d stored=%d, want 10/4", seq, len(evs))
	}
	if evs[0].Job != 7 || evs[3].Job != 10 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	_, evicted, stored := r.stats()
	if evicted != 6 || stored != 4 {
		t.Fatalf("evicted=%d stored=%d, want 6/4", evicted, stored)
	}
}

func TestParseInjectSpec(t *testing.T) {
	m, err := ParseInjectSpec("flatline=2,zombie=1,flatline=1, normal=3")
	if err != nil {
		t.Fatal(err)
	}
	if m[ProfileFlatline] != 3 || m[ProfileZombie] != 1 || m[ProfileNormal] != 3 {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"", "wat=1", "flatline", "flatline=0", "flatline=-1", "flatline=x"} {
		if _, err := ParseInjectSpec(bad); err == nil {
			t.Errorf("ParseInjectSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestScore(t *testing.T) {
	labels := Labels{1: ProfileFlatline, 2: ProfileZombie, 3: ProfileNormal}
	fs := []Event{
		{Type: EventFire, Job: 1, Detector: DetectFlatline},
		{Type: EventFire, Job: 2, Detector: DetectOvershoot}, // wrong detector: miss
		{Type: EventFire, Job: 3, Detector: DetectDrift},     // control job: FP
		{Type: EventFire, Job: 9, Detector: DetectZombie},    // unlabeled job: FP
		{Type: EventResolve, Job: 4, Detector: DetectZombie}, // resolves never count
	}
	v := Score(labels, fs)
	if v.Injected != 2 || v.Detected != 1 {
		t.Fatalf("injected=%d detected=%d, want 2/1", v.Injected, v.Detected)
	}
	if v.Recall != 0.5 {
		t.Fatalf("recall = %v, want 0.5", v.Recall)
	}
	// Jobs that fired: 1 (TP), 2 (anomalous: TP at job level), 3 (FP), 9 (FP).
	if v.Precision != 0.5 {
		t.Fatalf("precision = %v, want 0.5", v.Precision)
	}
	if len(v.Missed) != 1 || v.Missed[0] != 2 {
		t.Fatalf("missed = %v, want [2]", v.Missed)
	}
	if len(v.FalseJobs) != 2 {
		t.Fatalf("false jobs = %v, want two", v.FalseJobs)
	}
	// Empty inputs: perfect by definition.
	empty := Score(Labels{}, nil)
	if empty.Precision != 1 || empty.Recall != 1 {
		t.Fatalf("empty score = %+v", empty)
	}
}
