package anomaly

import (
	"math/rand"
	"testing"
)

// TestFlatlineNeverFiresOnIdleJobs is the detector's core safety
// property: a job whose power never reaches the rule's absolute floor
// cannot trip the flatline rule, no matter how perfectly flat its draw
// is — idle nodes are flat by nature and must stay silent.
func TestFlatlineNeverFiresOnIdleJobs(t *testing.T) {
	rule, _ := DefaultRule(DetectFlatline)
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// Idle-power series: everything strictly below MinW, with trial-
		// varied flatness down to perfectly constant (the worst case).
		level := rule.MinW * rng.Float64() * 0.999
		if level < 1 {
			level = 1
		}
		noise := rule.MinW * 0.001 * rng.Float64() * float64(trial%2)
		var f Fingerprint
		for i := 0; i < 500; i++ {
			w := level + noise*rng.NormFloat64()
			if w < 0.5 {
				w = 0.5
			}
			if w >= rule.MinW {
				w = rule.MinW - 0.5
			}
			f.Update(int64(1000+i*60), w)
			if active, v, th := rule.Eval(&f); active {
				t.Fatalf("trial %d: flatline fired on an idle job (level %.1fW < MinW %.1fW) at sample %d: value %v threshold %v",
					trial, level, rule.MinW, i, v, th)
			}
		}
	}
}

// TestOvershootMatchesBruteForce pins the overshoot detector to the
// paper's definition: the fingerprint's streaming (max−mean)/mean is
// bit-identical to the brute-force computation over every sample seen.
func TestOvershootMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 50 + rng.Intn(500)
		var f Fingerprint
		var sum, maxW float64
		for i := 0; i < n; i++ {
			w := 50 + 300*rng.Float64()
			if rng.Intn(20) == 0 {
				w *= 2 // occasional spike
			}
			f.Update(int64(1000+i*60), w)
			sum += w
			if w > maxW {
				maxW = w
			}
		}
		brute := 100 * (maxW - sum/float64(n)) / (sum / float64(n))
		if got := f.OvershootPct(); got != brute {
			t.Fatalf("trial %d: streaming overshoot %v != brute force %v", trial, got, brute)
		}
	}
}

// TestOvershootEvalAgainstBruteForceRule cross-checks the full rule:
// Eval's verdict equals applying the brute-force check directly.
func TestOvershootEvalAgainstBruteForceRule(t *testing.T) {
	rule, _ := DefaultRule(DetectOvershoot)
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		n := rule.MinSamples + rng.Intn(300)
		var f Fingerprint
		samples := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			w := 100 + 50*rng.NormFloat64()
			if w < 1 {
				w = 1
			}
			samples = append(samples, w)
			f.Update(int64(1000+i*60), w)
		}
		var sum, maxW float64
		for _, w := range samples {
			sum += w
			if w > maxW {
				maxW = w
			}
		}
		mean := sum / float64(len(samples))
		wantActive := 100*(maxW-mean)/mean > rule.OvershootPct
		gotActive, _, _ := rule.Eval(&f)
		if gotActive != wantActive {
			t.Fatalf("trial %d: Eval active=%v, brute force says %v (overshoot %v)",
				trial, gotActive, wantActive, 100*(maxW-mean)/mean)
		}
	}
}

// TestZombieRequiresPriorActivity: a job that never exceeded the floor
// cannot be a zombie — there was no activity to lose.
func TestZombieRequiresPriorActivity(t *testing.T) {
	rule, _ := DefaultRule(DetectZombie)
	var f Fingerprint
	for i := 0; i < 300; i++ {
		f.Update(int64(1000+i*60), rule.MinW*0.3)
		if active, _, _ := rule.Eval(&f); active {
			t.Fatalf("zombie fired at sample %d on a job that was never active", i)
		}
	}
}

// TestDriftIgnoresStepChange: a single clean step is one phase shift
// and must never satisfy the drift rule's run requirement.
func TestDriftIgnoresStepChange(t *testing.T) {
	rule, _ := DefaultRule(DetectDrift)
	var f Fingerprint
	unix := int64(1000)
	for i := 0; i < 120; i++ {
		w := 150.0
		if i >= 60 {
			w = 280
		}
		f.Update(unix, w)
		unix += 60
		if active, v, th := rule.Eval(&f); active {
			t.Fatalf("drift fired on a step change at sample %d (value %v, threshold %v, runlen %d)",
				i, v, th, f.RunLen)
		}
	}
}

// TestEvalWarmupGate: no detector evaluates before MinSamples.
func TestEvalWarmupGate(t *testing.T) {
	for _, rules := range [][]Rule{DefaultRules()} {
		for _, r := range rules {
			var f Fingerprint
			// Extreme inputs that would trip any detector once warm.
			for i := 0; i < r.MinSamples-1; i++ {
				f.Update(int64(1000+i*60), 500)
				if active, _, _ := r.Eval(&f); active {
					t.Errorf("%s fired during warmup at sample %d (< MinSamples %d)",
						r.Name, i+1, r.MinSamples)
				}
			}
		}
	}
}
