package anomaly

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestFingerprintBasics(t *testing.T) {
	var f Fingerprint
	ws := []float64{100, 110, 90, 105, 95}
	for i, w := range ws {
		f.Update(1000+int64(i)*60, w)
	}
	if f.N != int64(len(ws)) {
		t.Fatalf("N = %d, want %d", f.N, len(ws))
	}
	if f.Min != 90 || f.Max != 110 {
		t.Fatalf("min/max = %v/%v, want 90/110", f.Min, f.Max)
	}
	if f.First != 1000 || f.Last != 1000+4*60 {
		t.Fatalf("first/last = %d/%d", f.First, f.Last)
	}
	wantMean := (100.0 + 110 + 90 + 105 + 95) / 5
	if f.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", f.Mean(), wantMean)
	}
	if !f.Valid() {
		t.Fatal("fingerprint of a real series must be Valid")
	}
	var total int64
	for _, c := range f.Shape {
		total += c
	}
	if total != f.N {
		t.Fatalf("shape histogram holds %d samples, want %d", total, f.N)
	}
}

func TestFingerprintStdMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var f Fingerprint
	var ws []float64
	for i := 0; i < 500; i++ {
		w := 200 + 30*rng.NormFloat64()
		if w < 1 {
			w = 1
		}
		ws = append(ws, w)
		f.Update(int64(1000+i*60), w)
	}
	var sum float64
	for _, w := range ws {
		sum += w
	}
	mean := sum / float64(len(ws))
	var sq float64
	for _, w := range ws {
		sq += (w - mean) * (w - mean)
	}
	want := math.Sqrt(sq / float64(len(ws)))
	if got := f.Std(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("Std = %v, want %v", got, want)
	}
}

// TestFingerprintUpdateAllocFree pins the hot-path budget: folding a
// sample into a fingerprint allocates nothing (it runs inside the tsdb
// job-shard lock on every ingested sample).
func TestFingerprintUpdateAllocFree(t *testing.T) {
	var f Fingerprint
	f.Update(1000, 100)
	unix := int64(1060)
	w := 101.0
	allocs := testing.AllocsPerRun(1000, func() {
		f.Update(unix, w)
		unix += 60
		w += 0.5
		if w > 300 {
			w = 100
		}
	})
	if allocs != 0 {
		t.Fatalf("Fingerprint.Update allocates %v times per call, want 0", allocs)
	}
}

// TestFingerprintSerializeContinues pins the state-riding contract: a
// fingerprint serialized mid-stream, decoded, and fed the remaining
// samples ends bit-identical to one that saw the whole stream.
func TestFingerprintSerializeContinues(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	series := make([]float64, 400)
	for i := range series {
		series[i] = 150 + 40*math.Sin(float64(i)/20) + 10*rng.NormFloat64()
		if series[i] < 1 {
			series[i] = 1
		}
	}
	var whole Fingerprint
	for i, w := range series {
		whole.Update(int64(1000+i*60), w)
	}

	var first Fingerprint
	for i, w := range series[:137] {
		first.Update(int64(1000+i*60), w)
	}
	blob, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	var restored Fingerprint
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if !restored.Valid() {
		t.Fatal("decoded fingerprint is not Valid")
	}
	for i := 137; i < len(series); i++ {
		restored.Update(int64(1000+i*60), series[i])
	}
	if restored != whole {
		t.Fatalf("restored fingerprint diverged:\n got %+v\nwant %+v", restored, whole)
	}
}

func TestFingerprintValidRejectsCorruption(t *testing.T) {
	mk := func() Fingerprint {
		var f Fingerprint
		for i := 0; i < 30; i++ {
			f.Update(int64(1000+i*60), 100+float64(i%7))
		}
		return f
	}
	cases := []struct {
		name string
		mut  func(*Fingerprint)
	}{
		{"nan sum", func(f *Fingerprint) { f.Sum = math.NaN() }},
		{"inf ewma", func(f *Fingerprint) { f.EWFast = math.Inf(1) }},
		{"negative N", func(f *Fingerprint) { f.N = -1 }},
		{"min above max", func(f *Fingerprint) { f.Min = f.Max + 1 }},
		{"negative variance", func(f *Fingerprint) { f.EWVar = -0.5 }},
		{"first after last", func(f *Fingerprint) { f.First = f.Last + 1 }},
		{"negative shape count", func(f *Fingerprint) { f.Shape[3] = -2 }},
		{"nonzero fields at N=0", func(f *Fingerprint) { f.N = 0 }},
	}
	for _, tc := range cases {
		f := mk()
		tc.mut(&f)
		if f.Valid() {
			t.Errorf("%s: corrupted fingerprint passed Valid", tc.name)
		}
	}
	var zero Fingerprint
	if !zero.Valid() {
		t.Error("zero fingerprint must be Valid (pre-detection snapshots)")
	}
}

// TestFingerprintPhasesOnStep: a clean step change is detected as phase
// shifts, and a flat stream after the step re-arms (no runaway firing).
func TestFingerprintPhasesOnStep(t *testing.T) {
	var f Fingerprint
	unix := int64(1000)
	for i := 0; i < 60; i++ {
		f.Update(unix, 100)
		unix += 60
	}
	if f.Phases != 0 {
		t.Fatalf("flat stream produced %d phase shifts, want 0", f.Phases)
	}
	for i := 0; i < 60; i++ {
		f.Update(unix, 200)
		unix += 60
	}
	if f.Phases == 0 {
		t.Fatal("a 2x step produced no phase shift")
	}
	if math.Abs(f.EWSlow-200) > 5 {
		t.Fatalf("baseline did not adopt the new level: EWSlow = %v", f.EWSlow)
	}
	phasesAfterStep := f.Phases
	for i := 0; i < 120; i++ {
		f.Update(unix, 200)
		unix += 60
	}
	if f.Phases != phasesAfterStep {
		t.Fatalf("flat stream after adoption kept firing phase shifts: %d -> %d",
			phasesAfterStep, f.Phases)
	}
}
