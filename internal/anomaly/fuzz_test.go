package anomaly

import (
	"encoding/json"
	"testing"
)

// FuzzParseRules: any input either parses or errors — never panics —
// and every accepted spec round-trips through FormatRules.
func FuzzParseRules(f *testing.F) {
	f.Add("default")
	f.Add("flatline")
	f.Add("flatline:rel-std=0.02,min-duration=20m;overshoot:overshoot-pct=30")
	f.Add("zombie:severity=critical,low-frac=0.3")
	f.Add("drift:runs=5,drift-frac=0.5,min-w=100")
	f.Add("overshoot:name=soft,overshoot-pct=20;overshoot:name=hard,overshoot-pct=50")
	f.Add(";;;")
	f.Add("flatline:rel-std=")
	f.Add("flatline:rel-std=NaN")
	f.Add("flatline:min-duration=9999999h")
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParseRules(spec)
		if err != nil {
			return
		}
		formatted := FormatRules(rules)
		again, err := ParseRules(formatted)
		if err != nil {
			t.Fatalf("accepted spec %q formatted to unparseable %q: %v", spec, formatted, err)
		}
		if len(again) != len(rules) {
			t.Fatalf("round trip of %q changed rule count", spec)
		}
		for i := range rules {
			if rules[i] != again[i] {
				t.Fatalf("round trip of %q changed rule %d: %+v vs %+v", spec, i, rules[i], again[i])
			}
		}
	})
}

// FuzzFingerprintDecode: decoding an arbitrary fingerprint payload
// either fails or yields something Valid can classify — and updating a
// Valid fingerprint never panics or corrupts it into invalidity.
func FuzzFingerprintDecode(f *testing.F) {
	var fp Fingerprint
	for i := 0; i < 40; i++ {
		fp.Update(int64(1000+i*60), 100+float64(i%13))
	}
	seed, _ := json.Marshal(fp)
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`{"n":5,"sum":1e308,"min":0,"max":1e308}`))
	f.Add([]byte(`{"n":1,"min":2,"max":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got Fingerprint
		if err := json.Unmarshal(data, &got); err != nil {
			return
		}
		if !got.Valid() {
			return // rejected, as the restore path would
		}
		// A fingerprint that passed Valid must survive further updates.
		got.Update(got.Last+60, 123.5)
		got.Update(got.Last+60, 1)
		if got.N <= 0 {
			t.Fatalf("valid fingerprint lost its count after updates: %+v", got)
		}
	})
}

// FuzzEngineStateDecode: an arbitrary engine-state payload either fails
// to decode, fails RestoreState validation, or restores cleanly —
// never panics and never leaves the engine unusable.
func FuzzEngineStateDecode(f *testing.F) {
	h := struct{ fps map[uint64]*Fingerprint }{fps: map[uint64]*Fingerprint{}}
	lookup := func(job uint64) (Fingerprint, bool) {
		fp := h.fps[job]
		if fp == nil {
			return Fingerprint{}, false
		}
		return *fp, true
	}

	eng := NewEngine(Config{Lookup: lookup})
	seed, _ := json.Marshal(eng.ExportState())
	eng.Close()
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"jobs":[{"job":0}]}`))
	f.Add([]byte(`{"jobs":[{"job":5,"states":[{"rule":"flatline","firing":true}]}]}`))
	f.Add([]byte(`{"seq":3,"events":[{"seq":1,"type":"fire","job":9}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var st EngineState
		if err := json.Unmarshal(data, &st); err != nil {
			return
		}
		e := NewEngine(Config{RingSize: 64, Lookup: lookup})
		defer e.Close()
		if _, err := e.RestoreState(&st); err != nil {
			return
		}
		// Restored engines must remain operational.
		e.ObserveBatch(nil, "")
		_ = e.Active()
		_ = e.Events(Filter{Node: -1})
		_ = e.Snapshot()
		if _, err := json.Marshal(e.ExportState()); err != nil {
			t.Fatalf("restored engine cannot re-export: %v", err)
		}
	})
}
