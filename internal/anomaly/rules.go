package anomaly

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Detector names. Each detector reads a different face of the
// fingerprint; rule thresholds parameterize them.
const (
	DetectFlatline  = "flatline"  // variance collapse at sustained high power (cryptomining-like)
	DetectZombie    = "zombie"    // power floor after real activity (job lost its work)
	DetectOvershoot = "overshoot" // lifetime peak overshoot beyond the paper's envelope
	DetectDrift     = "drift"     // sustained same-direction baseline movement
)

// Severity levels, ordered. SeverityLevel maps them for filtering.
const (
	SeverityInfo     = "info"
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// SeverityLevel returns the rank of a severity (info 0 < warning 1 <
// critical 2); unknown strings rank below info.
func SeverityLevel(s string) int {
	switch s {
	case SeverityInfo:
		return 0
	case SeverityWarning:
		return 1
	case SeverityCritical:
		return 2
	default:
		return -1
	}
}

// Rule is one detector instance with its thresholds and hysteresis
// parameters. Durations are in sample time: a condition must hold for
// MinDuration of sample timestamps before the alert fires, and must
// stay clear for ResolveAfter before it resolves — so replaying the
// same WAL reproduces the same fire/resolve decisions.
type Rule struct {
	Detector string `json:"detector"`
	// Name identifies the rule in events, metrics labels, and exported
	// alert state. Defaults to the detector name; two rules of the same
	// detector need distinct names.
	Name     string `json:"name"`
	Severity string `json:"severity"`

	MinDuration  time.Duration `json:"min_duration"`
	ResolveAfter time.Duration `json:"resolve_after"`
	// MinSamples gates every detector until the fingerprint has seen
	// enough samples to mean anything (warmup).
	MinSamples int `json:"min_samples"`
	// MinW is an absolute watts floor: flatline requires the sustained
	// level above it, zombie requires the job's peak above it, drift
	// requires the run's starting baseline above it.
	MinW float64 `json:"min_w,omitempty"`

	// RelStd (flatline): fire when the windowed relative std falls
	// below this fraction while power is high.
	RelStd float64 `json:"rel_std,omitempty"`
	// HighFrac (flatline): "high power" means the fast EWMA is at least
	// this fraction of the job's sustained peak.
	HighFrac float64 `json:"high_frac,omitempty"`
	// LowFrac (zombie): "power floor" means the fast EWMA is at most
	// this fraction of the job's sustained peak.
	LowFrac float64 `json:"low_frac,omitempty"`
	// OvershootPct (overshoot): fire when lifetime (max−mean)/mean
	// exceeds this many percent.
	OvershootPct float64 `json:"overshoot_pct,omitempty"`
	// DriftFrac (drift): fire when a same-direction phase-shift run has
	// moved the baseline by at least this fraction.
	DriftFrac float64 `json:"drift_frac,omitempty"`
	// Runs (drift): minimum number of same-direction phase shifts in
	// the run (a genuine step change is one shift, never a drift).
	Runs int `json:"runs,omitempty"`
}

// DefaultRule returns the tuned default rule for a detector. The
// thresholds are set so the fault-free synthetic paper workload fires
// nothing (pinned by TestDefaultRulesZeroFalsePositives) while the
// injector's anomaly profiles are caught well inside the smoke's
// precision/recall bounds.
func DefaultRule(detector string) (Rule, error) {
	switch detector {
	case DetectFlatline:
		return Rule{
			Detector: DetectFlatline, Name: DetectFlatline, Severity: SeverityCritical,
			MinDuration: 15 * time.Minute, ResolveAfter: 10 * time.Minute,
			MinSamples: 15, MinW: 80, RelStd: 0.01, HighFrac: 0.60,
		}, nil
	case DetectZombie:
		return Rule{
			Detector: DetectZombie, Name: DetectZombie, Severity: SeverityWarning,
			MinDuration: 10 * time.Minute, ResolveAfter: 10 * time.Minute,
			MinSamples: 10, MinW: 80, LowFrac: 0.35,
		}, nil
	case DetectOvershoot:
		// The paper's healthy envelope is 10-12% mean overshoot, but
		// individual fault-free jobs reach the high 30s over a lifetime;
		// 50% is comfortably past anything the clean workload produces
		// while spiky runaways land well above it.
		return Rule{
			Detector: DetectOvershoot, Name: DetectOvershoot, Severity: SeverityCritical,
			MinDuration: 2 * time.Minute, ResolveAfter: 10 * time.Minute,
			MinSamples: 20, OvershootPct: 50,
		}, nil
	case DetectDrift:
		return Rule{
			Detector: DetectDrift, Name: DetectDrift, Severity: SeverityWarning,
			MinDuration: 10 * time.Minute, ResolveAfter: 20 * time.Minute,
			MinSamples: 15, MinW: 40, DriftFrac: 0.20, Runs: 3,
		}, nil
	default:
		return Rule{}, fmt.Errorf("anomaly: unknown detector %q", detector)
	}
}

// DefaultRules returns the full default rule set, one rule per
// detector, in a fixed order.
func DefaultRules() []Rule {
	out := make([]Rule, 0, 4)
	for _, d := range []string{DetectFlatline, DetectZombie, DetectOvershoot, DetectDrift} {
		r, _ := DefaultRule(d)
		out = append(out, r)
	}
	return out
}

// ParseRules parses a rule-set spec: semicolon-separated rules, each
// "detector" or "detector:key=value,key=value". Keys override the
// detector's defaults; unknown detectors, unknown keys, keys that do
// not apply to the detector, and out-of-range values are errors. The
// spec "default" (or "") yields DefaultRules. Examples:
//
//	flatline:rel-std=0.02,min-duration=20m;overshoot:overshoot-pct=30
//	zombie:severity=critical,low-frac=0.3
//
// Every accepted spec round-trips through FormatRules.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "default" {
		return DefaultRules(), nil
	}
	var rules []Rule
	names := map[string]struct{}{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		det, args, _ := strings.Cut(part, ":")
		det = strings.TrimSpace(det)
		r, err := DefaultRule(det)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(args) != "" {
			for _, kv := range strings.Split(args, ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("anomaly: rule %q: %q is not key=value", det, kv)
				}
				if err := r.set(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
					return nil, fmt.Errorf("anomaly: rule %q: %w", det, err)
				}
			}
		}
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("anomaly: rule %q: %w", det, err)
		}
		if _, dup := names[r.Name]; dup {
			return nil, fmt.Errorf("anomaly: duplicate rule name %q (use name= to distinguish)", r.Name)
		}
		names[r.Name] = struct{}{}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("anomaly: empty rule spec")
	}
	return rules, nil
}

// set applies one key=value override, enforcing detector applicability.
func (r *Rule) set(key, val string) error {
	parseFrac := func() (float64, error) {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: %v", key, err)
		}
		if !(f > 0 && f <= 1) { // flipped comparison also rejects NaN
			return 0, fmt.Errorf("%s must be in (0, 1], got %v", key, f)
		}
		return f, nil
	}
	switch key {
	case "name":
		if val == "" {
			return fmt.Errorf("name must not be empty")
		}
		r.Name = val
	case "severity":
		if SeverityLevel(val) < 0 {
			return fmt.Errorf("severity must be info, warning, or critical, got %q", val)
		}
		r.Severity = val
	case "min-duration", "resolve-after":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("%s: %v", key, err)
		}
		if d < 0 || d > 365*24*time.Hour {
			return fmt.Errorf("%s out of range: %v", key, d)
		}
		if key == "min-duration" {
			r.MinDuration = d
		} else {
			r.ResolveAfter = d
		}
	case "min-samples":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > 1<<30 {
			return fmt.Errorf("min-samples must be a positive integer, got %q", val)
		}
		r.MinSamples = n
	case "min-w":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || !(f >= 0 && f <= 1e9) {
			return fmt.Errorf("min-w must be a non-negative number of watts, got %q", val)
		}
		r.MinW = f
	case "rel-std":
		if r.Detector != DetectFlatline {
			return fmt.Errorf("rel-std only applies to flatline")
		}
		f, err := parseFrac()
		if err != nil {
			return err
		}
		r.RelStd = f
	case "high-frac":
		if r.Detector != DetectFlatline {
			return fmt.Errorf("high-frac only applies to flatline")
		}
		f, err := parseFrac()
		if err != nil {
			return err
		}
		r.HighFrac = f
	case "low-frac":
		if r.Detector != DetectZombie {
			return fmt.Errorf("low-frac only applies to zombie")
		}
		f, err := parseFrac()
		if err != nil {
			return err
		}
		r.LowFrac = f
	case "overshoot-pct":
		if r.Detector != DetectOvershoot {
			return fmt.Errorf("overshoot-pct only applies to overshoot")
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || !(f > 0 && f <= 1e6) {
			return fmt.Errorf("overshoot-pct must be a positive percentage, got %q", val)
		}
		r.OvershootPct = f
	case "drift-frac":
		if r.Detector != DetectDrift {
			return fmt.Errorf("drift-frac only applies to drift")
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || !(f > 0 && f <= 100) {
			return fmt.Errorf("drift-frac must be a positive fraction, got %q", val)
		}
		r.DriftFrac = f
	case "runs":
		if r.Detector != DetectDrift {
			return fmt.Errorf("runs only applies to drift")
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > 1<<20 {
			return fmt.Errorf("runs must be a positive integer, got %q", val)
		}
		r.Runs = n
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// validate checks cross-field coherence after overrides.
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule has no name")
	}
	if strings.ContainsAny(r.Name, ";:,= \t\n\"") {
		return fmt.Errorf("name %q contains reserved characters", r.Name)
	}
	if SeverityLevel(r.Severity) < 0 {
		return fmt.Errorf("bad severity %q", r.Severity)
	}
	return nil
}

// String renders the rule in spec syntax, emitting every applicable
// key so the output is self-describing and parses back to the same
// rule (round-trip pinned by TestParseRulesRoundTrip and the fuzzer).
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Detector)
	b.WriteString(":name=")
	b.WriteString(r.Name)
	fmt.Fprintf(&b, ",severity=%s,min-duration=%s,resolve-after=%s,min-samples=%d",
		r.Severity, r.MinDuration, r.ResolveAfter, r.MinSamples)
	switch r.Detector {
	case DetectFlatline:
		fmt.Fprintf(&b, ",min-w=%g,rel-std=%g,high-frac=%g", r.MinW, r.RelStd, r.HighFrac)
	case DetectZombie:
		fmt.Fprintf(&b, ",min-w=%g,low-frac=%g", r.MinW, r.LowFrac)
	case DetectOvershoot:
		fmt.Fprintf(&b, ",overshoot-pct=%g", r.OvershootPct)
	case DetectDrift:
		fmt.Fprintf(&b, ",min-w=%g,drift-frac=%g,runs=%d", r.MinW, r.DriftFrac, r.Runs)
	}
	return b.String()
}

// FormatRules renders a rule set in spec syntax (see ParseRules).
func FormatRules(rules []Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// RuleNames returns the rule names in evaluation order.
func RuleNames(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name
	}
	return out
}
