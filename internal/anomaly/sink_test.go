package anomaly

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	s := NewLogSink(logger)
	defer s.Close()
	s.Send(Event{Type: EventFire, Rule: "flatline", Severity: SeverityCritical,
		Job: 7, Node: 2, Unix: 100, Trace: "tr-123", Seq: 1})
	s.Send(Event{Type: EventResolve, Rule: "flatline", Severity: SeverityCritical,
		Job: 7, Node: 2, Unix: 200, Seq: 2})
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !bytes.Contains([]byte(out), []byte(`"trace_id":"tr-123"`)) {
		t.Fatalf("log line missing trace id: %s", out)
	}
	if !bytes.Contains([]byte(out), []byte(`"level":"ERROR"`)) {
		t.Fatalf("critical fire not logged at error level: %s", out)
	}
	h := s.Health()
	if !h.Healthy || h.Delivered != 2 {
		t.Fatalf("health = %+v", h)
	}
	// Nil logger discards without panicking.
	NewLogSink(nil).Send(Event{Type: EventFire})
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestWebhookSinkDelivers(t *testing.T) {
	var got atomic.Int64
	var lastTrace atomic.Pointer[string]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("bad body: %v", err)
		}
		tr := r.Header.Get("X-Trace-Id")
		lastTrace.Store(&tr)
		got.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	s, err := NewWebhookSink(WebhookConfig{URL: srv.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Send(Event{Seq: 1, Type: EventFire, Job: 5, Trace: "tr-9"})
	waitFor(t, "delivery", func() bool { return got.Load() == 1 })
	if tr := lastTrace.Load(); tr == nil || *tr != "tr-9" {
		t.Fatal("trace header not propagated")
	}
	h := s.Health()
	if !h.Healthy || h.Delivered != 1 || h.Errors != 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestWebhookSinkRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	s, err := NewWebhookSink(WebhookConfig{
		URL: srv.URL, Seed: 1,
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Send(Event{Seq: 1, Type: EventFire})
	waitFor(t, "retried delivery", func() bool { return s.Health().Delivered == 1 })
	h := s.Health()
	if h.Retries < 2 || h.Errors != 0 || !h.Healthy {
		t.Fatalf("health after retries = %+v", h)
	}
}

func TestWebhookSinkHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAttempt, secondAttempt atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAttempt.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			secondAttempt.Store(time.Now().UnixNano())
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()
	s, err := NewWebhookSink(WebhookConfig{
		URL: srv.URL, Seed: 1,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Send(Event{Seq: 1})
	waitFor(t, "delivery after Retry-After", func() bool { return s.Health().Delivered == 1 })
	gap := time.Duration(secondAttempt.Load() - firstAttempt.Load())
	// The hint is jittered over [hint/2, hint]: far above the millisecond
	// backoff the config would otherwise use.
	if gap < 400*time.Millisecond {
		t.Fatalf("Retry-After ignored: retried after %v", gap)
	}
}

func TestWebhookSinkBreakerOpensOnConsecutiveFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()
	s, err := NewWebhookSink(WebhookConfig{
		URL: srv.URL, Seed: 1, MaxAttempts: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		BreakerThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		s.Send(Event{Seq: uint64(i + 1)})
	}
	waitFor(t, "breaker to open", func() bool { return !s.Health().Healthy })
	h := s.Health()
	if h.Errors < 3 || h.LastError == "" {
		t.Fatalf("health = %+v", h)
	}
}

func TestWebhookSinkShedsWhenQueueFull(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	s, err := NewWebhookSink(WebhookConfig{URL: srv.URL, Seed: 1, MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One in flight, two queued, the rest shed.
	for i := 0; i < 10; i++ {
		s.Send(Event{Seq: uint64(i + 1)})
	}
	waitFor(t, "shedding", func() bool { return s.Health().Dropped >= 7 })
	close(release)
	s.Close()
	if h := s.Health(); h.Dropped < 7 {
		t.Fatalf("dropped = %d, want >= 7", h.Dropped)
	}
}

func TestWebhookSinkNeedsURL(t *testing.T) {
	if _, err := NewWebhookSink(WebhookConfig{}); err == nil {
		t.Fatal("empty URL accepted")
	}
}
