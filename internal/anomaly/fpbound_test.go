package anomaly

import (
	"testing"

	"hpcpower/internal/gen"
	"hpcpower/internal/trace"
)

// TestDefaultRulesZeroFalsePositives is the false-positive bound from
// the issue: replaying the fault-free synthetic paper workload (the
// same generator, system, and seed the anomaly smoke uses for its clean
// control) through the default rule set fires nothing. Every job in
// that dataset is healthy by construction — phased, noisy, and inside
// the paper's overshoot envelope — so any alert here is a detector
// threshold regression.
func TestDefaultRulesZeroFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis is seconds of work; skipped in -short")
	}
	ds, err := gen.Generate(gen.EmmyConfig(0.02, 42))
	if err != nil {
		t.Fatal(err)
	}
	samples := trace.FlattenSeries(ds)
	if len(samples) == 0 {
		t.Fatal("generator returned no retained series")
	}
	h := newHarness(t, Config{})
	// Feed in the shipper's batch size and order.
	h.feed(samples, 512, "clean")

	if evs := h.eng.Events(Filter{Node: -1}); len(evs) != 0 {
		for _, ev := range evs {
			fp, _ := h.eng.Fingerprint(ev.Job)
			t.Errorf("false positive: %s %s job %d (value %.3f threshold %.3f) fp={n %d relstd %.4f overshoot %.1f%% runlen %d drift %.3f}",
				ev.Type, ev.Rule, ev.Job, ev.Value, ev.Threshold,
				fp.N, fp.RelStdFast(), fp.OvershootPct(), fp.RunLen, fp.DriftFrac())
		}
		t.Fatalf("fault-free workload produced %d alert events, want 0 (%d jobs, %d samples)",
			len(evs), len(ds.Series), len(samples))
	}
	st := h.eng.Snapshot()
	if st.Samples != int64(len(samples)) || st.Evals == 0 {
		t.Fatalf("engine did not observe the workload: %+v", st)
	}
}
