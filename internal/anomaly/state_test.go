package anomaly

import (
	"encoding/json"
	"testing"

	"hpcpower/internal/trace"
)

// TestStateRoundTripNoDuplicateFire is the failover contract: fire an
// alert, export the engine (and fingerprint) state, restore both into a
// fresh engine — the promoted instance — and keep observing. The alert
// must stay active without re-firing, and later resolve exactly once.
func TestStateRoundTripNoDuplicateFire(t *testing.T) {
	h := newHarness(t, Config{})
	const job, node = 77, 3
	start := int64(1_700_000_000)
	h.feed(flatSeries(job, node, start, 60, 180), 10, "trace-a")
	if got := len(fires(h.eng)); got != 1 {
		t.Fatalf("setup: %d fires, want 1", got)
	}

	// Snapshot both layers the way the serving layer does, through JSON
	// (the snapshot file format).
	blob, err := json.Marshal(h.eng.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st EngineState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}

	// Promoted standby: same rules, same fingerprints (they ride the
	// tsdb snapshot), restored alert state.
	h2 := newHarness(t, Config{})
	h2.store.mu.Lock()
	h.store.mu.Lock()
	for id, fp := range h.store.fps {
		cp := *fp
		h2.store.fps[id] = &cp
	}
	h.store.mu.Unlock()
	h2.store.mu.Unlock()
	dropped, err := h2.eng.RestoreState(&st)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("restore dropped %d states, want 0", dropped)
	}

	// The restored engine already shows the alert as active and the
	// ring carries the original event.
	active := h2.eng.Active()
	if len(active) != 1 || active[0].Job != job || h2.eng.Snapshot().Active != 1 {
		t.Fatalf("restored active alerts = %+v", active)
	}
	if got := len(fires(h2.eng)); got != 1 {
		t.Fatalf("restored ring has %d fires, want 1", got)
	}

	// Keep the condition holding: no duplicate fire.
	h2.feed(flatSeries(job, node, start+60*60, 30, 180), 10, "trace-b")
	if got := len(fires(h2.eng)); got != 1 {
		t.Fatalf("promoted engine re-fired: %d fire events", got)
	}
	if h2.eng.Snapshot().Fired != 1 {
		t.Fatalf("fired counter = %d after restore+continue, want 1", h2.eng.Snapshot().Fired)
	}

	// And the cycle completes: clear the condition (mild alternation so
	// no other rule trips), resolve exactly once.
	h2.feed(alternating(job, node, start+90*60, 25, 165, 200), 10, "trace-c")
	if got := len(resolves(h2.eng)); got != 1 {
		t.Fatalf("promoted engine resolved %d times, want 1", got)
	}
}

// TestStateRestoreMidCountdown: a condition that was mid-MinDuration at
// snapshot time still fires on the restored engine — no lost alerts.
func TestStateRestoreMidCountdown(t *testing.T) {
	h := newHarness(t, Config{})
	const job = 55
	start := int64(1_700_000_000)
	// Enough for the flatline condition to activate, not enough to fire.
	h.feed(flatSeries(job, 1, start, 33, 180), 10, "t")
	if got := len(fires(h.eng)); got != 0 {
		t.Fatalf("setup: fired too early (%d)", got)
	}
	st := h.eng.ExportState()

	h2 := newHarness(t, Config{})
	h.store.mu.Lock()
	for id, fp := range h.store.fps {
		cp := *fp
		h2.store.fps[id] = &cp
	}
	h.store.mu.Unlock()
	if _, err := h2.eng.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	h2.feed(flatSeries(job, 1, start+33*60, 30, 180), 10, "t")
	if got := len(fires(h2.eng)); got != 1 {
		t.Fatalf("mid-countdown alert lost across restore: %d fires", got)
	}
}

// TestStateRestoreDropsUnknownRules: state exported under a wider rule
// set restores cleanly under a narrower one.
func TestStateRestoreDropsUnknownRules(t *testing.T) {
	h := newHarness(t, Config{})
	start := int64(1_700_000_000)
	h.feed(flatSeries(61, 1, start, 60, 180), 10, "t")
	st := h.eng.ExportState()

	only, err := ParseRules("overshoot")
	if err != nil {
		t.Fatal(err)
	}
	h2 := newHarness(t, Config{Rules: only})
	dropped, err := h2.eng.RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected the flatline machine to be dropped")
	}
	if len(h2.eng.Active()) != 0 {
		t.Fatalf("dropped rule left an active alert: %+v", h2.eng.Active())
	}
}

// TestStateRestoreRejectsBadState: validation failures leave a clear
// error instead of poisoned machines.
func TestStateRestoreRejectsBadState(t *testing.T) {
	h := newHarness(t, Config{})
	bad := []*EngineState{
		{Jobs: []JobAlertState{{Job: 0}}},
		{Jobs: []JobAlertState{{Job: 5}, {Job: 5}}},
		{Jobs: []JobAlertState{{Job: 5, States: []RuleAlertState{{Rule: "flatline", FiredUnix: -3}}}}},
	}
	for i, st := range bad {
		if _, err := h.eng.RestoreState(st); err == nil {
			t.Errorf("bad state %d accepted", i)
		}
	}
	// Nil resets.
	start := int64(1_700_000_000)
	h.feed(flatSeries(81, 1, start, 60, 180), 10, "t")
	if _, err := h.eng.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if len(h.eng.Active()) != 0 || len(fires(h.eng)) != 0 || h.eng.Snapshot().Fired != 0 {
		t.Fatal("nil restore did not reset the engine")
	}
}

// TestStateExportCanonical: two exports of the same state are
// byte-identical (snapshot determinism).
func TestStateExportCanonical(t *testing.T) {
	h := newHarness(t, Config{})
	start := int64(1_700_000_000)
	var all []trace.PowerSample
	for j := uint64(1); j <= 9; j++ {
		all = append(all, flatSeries(j, int(j), start, 60, 150+float64(j))...)
	}
	sortByUnix(all)
	h.feed(all, 128, "t")
	a, err := json.Marshal(h.eng.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(h.eng.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("ExportState is not canonical")
	}
}

// TestStateEventsSurviveRingOverflowRestore: restoring more events than
// the ring holds keeps the newest.
func TestStateEventsSurviveRingOverflowRestore(t *testing.T) {
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = Event{Seq: uint64(i + 1), Type: EventFire, Severity: SeverityInfo, Job: uint64(i + 1)}
	}
	e := NewEngine(Config{RingSize: 4, Lookup: func(uint64) (Fingerprint, bool) { return Fingerprint{}, false }})
	defer e.Close()
	if _, err := e.RestoreState(&EngineState{Seq: 10, Events: evs}); err != nil {
		t.Fatal(err)
	}
	got := e.Events(Filter{Node: -1})
	if len(got) != 4 || got[0].Job != 10 {
		t.Fatalf("overflow restore kept %+v", got)
	}
}
