package anomaly

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"hpcpower/internal/obs"
	"hpcpower/internal/trace"
)

// Config parameterizes an Engine.
type Config struct {
	// Rules is the detector set. Nil means DefaultRules.
	Rules []Rule
	// RingSize bounds the event store. 0 means 4096.
	RingSize int
	// Sinks receive fired/resolved events (while delivery is enabled).
	Sinks []Sink
	// Lookup resolves a job's current fingerprint — the tsdb store's
	// JobFingerprint method. Required.
	Lookup func(job uint64) (Fingerprint, bool)
	// Logger receives the engine's own lines (rule load, restore).
	Logger *slog.Logger
}

// Engine evaluates the rule set against job fingerprints once per
// ingested batch and runs the per-(job,rule) alert state machines:
// min-duration before fire, clear-duration before resolve, and
// exactly one firing alert per pair at a time (dedup). All timing is
// sample time. The engine is safe for concurrent ObserveBatch calls.
type Engine struct {
	rules  []Rule
	look   func(uint64) (Fingerprint, bool)
	ring   *ring
	sinks  []Sink
	logger *slog.Logger

	// deliver gates sink fan-out: a follower tracks state silently and
	// only starts delivering when promoted, so a failover never
	// double-pages — the promoted standby carries on exactly where the
	// primary's state says it was.
	deliver atomic.Bool

	shards []alertShard

	scratch sync.Pool // *obsScratch, amortizing per-batch grouping

	samples    atomic.Int64
	batches    atomic.Int64
	evals      atomic.Int64
	fired      atomic.Int64
	resolved   atomic.Int64
	suppressed atomic.Int64
	active     atomic.Int64
	lastUnix   atomic.Int64 // newest sample timestamp observed
	lastWall   atomic.Int64 // wall-clock unix of the last ObserveBatch

	firedByRule    []atomic.Int64
	resolvedByRule []atomic.Int64
}

const alertShards = 64

// alertShard stripes the per-job alert states the same way tsdb
// stripes job analytics, so concurrent workers rarely contend.
type alertShard struct {
	mu   sync.Mutex
	jobs map[uint64]*jobAlerts
}

// jobAlerts is one job's state machines, indexed by rule position.
type jobAlerts struct {
	states []ruleState
}

// ruleState is one (job, rule) hysteresis machine. condSince is the
// sample time the condition started holding (0: not holding);
// clearSince mirrors it for the resolve side while firing.
type ruleState struct {
	condSince  int64
	clearSince int64
	firing     bool
	firedUnix  int64
	node       int
	value      float64
	threshold  float64
	trace      string
	count      int64
}

// obsScratch is the reusable per-batch grouping buffer.
type obsScratch struct {
	idx  map[uint64]int32
	jobs []batchJob
}

// batchJob is one distinct job in a batch: the reporting node and the
// newest sample timestamp the batch carries for it.
type batchJob struct {
	id   uint64
	node int
	last int64
}

// NewEngine builds an engine. Delivery starts enabled; a replicated
// follower disables it via SetDeliver until promotion.
func NewEngine(cfg Config) *Engine {
	rules := cfg.Rules
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	e := &Engine{
		rules:          rules,
		look:           cfg.Lookup,
		ring:           newRing(cfg.RingSize),
		sinks:          cfg.Sinks,
		logger:         obs.Component(cfg.Logger, "anomaly"),
		shards:         make([]alertShard, alertShards),
		firedByRule:    make([]atomic.Int64, len(rules)),
		resolvedByRule: make([]atomic.Int64, len(rules)),
	}
	for i := range e.shards {
		e.shards[i].jobs = map[uint64]*jobAlerts{}
	}
	e.scratch.New = func() any {
		return &obsScratch{idx: map[uint64]int32{}}
	}
	e.deliver.Store(true)
	e.logger.Info("anomaly detection enabled",
		slog.Int("rules", len(rules)),
		slog.String("spec", FormatRules(rules)))
	return e
}

// Rules returns the engine's rule set (callers must not mutate it).
func (e *Engine) Rules() []Rule { return e.rules }

// SetDeliver enables or disables sink delivery. State tracking and the
// event ring are unaffected — a follower records everything and stays
// silent.
func (e *Engine) SetDeliver(on bool) { e.deliver.Store(on) }

// Delivering reports whether sink delivery is enabled.
func (e *Engine) Delivering() bool { return e.deliver.Load() }

// mix is the same splitmix64 finalizer tsdb uses for shard hashing.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (e *Engine) shard(job uint64) *alertShard {
	return &e.shards[mix(job)&(alertShards-1)]
}

// ObserveBatch runs detection for one applied batch: group the batch's
// samples by job, look up each job's fingerprint (already updated by
// the tsdb append), evaluate every rule, and advance the alert state
// machines. traceID is the batch's trace ID; transitions it triggers
// carry it. The per-sample cost is O(1) map work amortized through a
// pooled scratch buffer — rule evaluation happens per (job, batch),
// not per sample.
func (e *Engine) ObserveBatch(samples []trace.PowerSample, traceID string) {
	if len(samples) == 0 {
		return
	}
	sc := e.scratch.Get().(*obsScratch)
	for i := range samples {
		smp := &samples[i]
		if smp.JobID == 0 {
			continue // idle/system samples carry no job to characterize
		}
		if j, ok := sc.idx[smp.JobID]; ok {
			bj := &sc.jobs[j]
			if smp.Unix > bj.last {
				bj.last = smp.Unix
				bj.node = smp.Node
			}
			continue
		}
		sc.idx[smp.JobID] = int32(len(sc.jobs))
		sc.jobs = append(sc.jobs, batchJob{id: smp.JobID, node: smp.Node, last: smp.Unix})
	}
	var events []Event
	for i := range sc.jobs {
		events = e.observeJob(&sc.jobs[i], traceID, events)
	}
	e.samples.Add(int64(len(samples)))
	e.batches.Add(1)
	var newest int64
	for i := range sc.jobs {
		if sc.jobs[i].last > newest {
			newest = sc.jobs[i].last
		}
	}
	if newest > e.lastUnix.Load() {
		e.lastUnix.Store(newest)
	}
	e.lastWall.Store(time.Now().Unix())
	clear(sc.idx)
	sc.jobs = sc.jobs[:0]
	e.scratch.Put(sc)
	e.publish(events)
}

// observeJob advances one job's state machines and appends any
// transitions to events.
func (e *Engine) observeJob(bj *batchJob, traceID string, events []Event) []Event {
	fp, ok := e.look(bj.id)
	if !ok || fp.N == 0 {
		return events
	}
	now := bj.last
	if fp.Last > now {
		now = fp.Last
	}
	sh := e.shard(bj.id)
	sh.mu.Lock()
	ja := sh.jobs[bj.id]
	if ja == nil {
		ja = &jobAlerts{states: make([]ruleState, len(e.rules))}
		sh.jobs[bj.id] = ja
	}
	for i := range e.rules {
		r := &e.rules[i]
		st := &ja.states[i]
		active, value, threshold := r.Eval(&fp)
		e.evals.Add(1)
		if active {
			st.clearSince = 0
			if st.condSince == 0 {
				st.condSince = now
			}
			switch {
			case !st.firing && now-st.condSince >= int64(r.MinDuration/time.Second):
				st.firing = true
				st.firedUnix = now
				st.node = bj.node
				st.value, st.threshold = value, threshold
				st.trace = traceID
				st.count++
				e.fired.Add(1)
				e.firedByRule[i].Add(1)
				e.active.Add(1)
				events = append(events, Event{
					Type: EventFire, Rule: r.Name, Detector: r.Detector, Severity: r.Severity,
					Job: bj.id, Node: bj.node, Unix: now,
					Value: value, Threshold: threshold, Trace: traceID,
				})
			case st.firing:
				// Already firing: the pair is deduplicated — refresh the
				// live numbers and count the suppressed duplicate.
				st.value, st.threshold = value, threshold
				e.suppressed.Add(1)
			}
		} else {
			st.condSince = 0
			if st.firing {
				if st.clearSince == 0 {
					st.clearSince = now
				}
				if now-st.clearSince >= int64(r.ResolveAfter/time.Second) {
					st.firing = false
					e.resolved.Add(1)
					e.resolvedByRule[i].Add(1)
					e.active.Add(-1)
					events = append(events, Event{
						Type: EventResolve, Rule: r.Name, Detector: r.Detector, Severity: r.Severity,
						Job: bj.id, Node: bj.node, Unix: now,
						Value: value, Threshold: threshold,
						FiredUnix: st.firedUnix, Trace: traceID,
					})
					st.clearSince = 0
					st.firedUnix = 0
				}
			}
		}
	}
	sh.mu.Unlock()
	return events
}

// publish stamps, stores, and fans out a batch's transitions.
func (e *Engine) publish(events []Event) {
	for i := range events {
		events[i].Message = message(&events[i])
		ev := e.ring.append(events[i])
		if !e.deliver.Load() {
			continue
		}
		for _, s := range e.sinks {
			s.Send(ev)
		}
	}
}

// Events returns ring events matching f, newest first.
func (e *Engine) Events(f Filter) []Event { return e.ring.events(f) }

// Subscribe attaches a streaming consumer to the event ring.
func (e *Engine) Subscribe(depth int) (uint64, <-chan Event) { return e.ring.subscribe(depth) }

// Unsubscribe detaches a streaming consumer.
func (e *Engine) Unsubscribe(id uint64) { e.ring.unsubscribe(id) }

// Active returns the currently firing alerts, ordered by job then rule.
func (e *Engine) Active() []Alert {
	var out []Alert
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		for job, ja := range sh.jobs {
			for i := range ja.states {
				st := &ja.states[i]
				if !st.firing {
					continue
				}
				r := &e.rules[i]
				out = append(out, Alert{
					Rule: r.Name, Detector: r.Detector, Severity: r.Severity,
					Job: job, Node: st.node, FiredUnix: st.firedUnix,
					LastUnix: e.lastUnix.Load(), Value: st.value,
					Threshold: st.threshold, Trace: st.trace, Count: st.count,
				})
			}
		}
		sh.mu.Unlock()
	}
	sortAlerts(out)
	return out
}

func sortAlerts(a []Alert) {
	// Insertion sort: active-alert lists are small, and this keeps the
	// function allocation-free.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && (a[j].Job < a[j-1].Job || (a[j].Job == a[j-1].Job && a[j].Rule < a[j-1].Rule)); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Fingerprint exposes a job's current fingerprint through the engine's
// lookup — the /v1/anomalies?job=N&fingerprint=1 path.
func (e *Engine) Fingerprint(job uint64) (Fingerprint, bool) {
	if e.look == nil {
		return Fingerprint{}, false
	}
	return e.look(job)
}

// Stats is the engine's counter snapshot for /metrics and /readyz.
type Stats struct {
	Rules          int
	Jobs           int
	Samples        int64
	Batches        int64
	Evals          int64
	Fired          int64
	Resolved       int64
	Suppressed     int64
	Active         int64
	Events         uint64
	EventsEvicted  uint64
	EventsStored   int
	LastSampleUnix int64
	LastObsWall    int64
	FiredByRule    []int64
	ResolvedByRule []int64
}

// Snapshot returns the current counters.
func (e *Engine) Snapshot() Stats {
	jobs := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		jobs += len(sh.jobs)
		sh.mu.Unlock()
	}
	appended, evicted, stored := e.ring.stats()
	st := Stats{
		Rules:          len(e.rules),
		Jobs:           jobs,
		Samples:        e.samples.Load(),
		Batches:        e.batches.Load(),
		Evals:          e.evals.Load(),
		Fired:          e.fired.Load(),
		Resolved:       e.resolved.Load(),
		Suppressed:     e.suppressed.Load(),
		Active:         e.active.Load(),
		Events:         appended,
		EventsEvicted:  evicted,
		EventsStored:   stored,
		LastSampleUnix: e.lastUnix.Load(),
		LastObsWall:    e.lastWall.Load(),
		FiredByRule:    make([]int64, len(e.rules)),
		ResolvedByRule: make([]int64, len(e.rules)),
	}
	for i := range e.rules {
		st.FiredByRule[i] = e.firedByRule[i].Load()
		st.ResolvedByRule[i] = e.resolvedByRule[i].Load()
	}
	return st
}

// SinkHealths returns every sink's health, for /readyz and /metrics.
func (e *Engine) SinkHealths() []SinkHealth {
	out := make([]SinkHealth, 0, len(e.sinks))
	for _, s := range e.sinks {
		out = append(out, s.Health())
	}
	return out
}

// Close shuts down the sinks.
func (e *Engine) Close() {
	for _, s := range e.sinks {
		s.Close()
	}
}
