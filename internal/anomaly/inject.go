package anomaly

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"hpcpower/internal/trace"
)

// Injection profiles: synthetic single-node job power series with a
// known anomaly class, used by powload -anomaly and the anomaly smoke
// to measure detector precision/recall against ground truth.
const (
	ProfileNormal    = "normal" // control: phased, noisy, healthy job
	ProfileFlatline  = DetectFlatline
	ProfileZombie    = DetectZombie
	ProfileOvershoot = DetectOvershoot
	ProfileDrift     = DetectDrift
)

// Profiles lists the anomalous profile names (the injectable classes;
// "normal" is the control and detects as nothing).
func Profiles() []string {
	return []string{DetectFlatline, DetectZombie, DetectOvershoot, DetectDrift}
}

// ParseInjectSpec parses "flatline=2,zombie=1,overshoot=2,drift=1":
// how many jobs of each anomalous profile to inject. Keys may repeat
// (counts add); unknown profiles and non-positive counts are errors.
func ParseInjectSpec(spec string) (map[string]int, error) {
	out := map[string]int{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("anomaly: inject spec %q is not profile=count", kv)
		}
		k = strings.TrimSpace(k)
		valid := false
		for _, p := range Profiles() {
			if k == p {
				valid = true
				break
			}
		}
		if k == ProfileNormal {
			valid = true
		}
		if !valid {
			return nil, fmt.Errorf("anomaly: unknown profile %q (want %s or normal)", k, strings.Join(Profiles(), ", "))
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 || n > 10000 {
			return nil, fmt.Errorf("anomaly: bad count %q for profile %q", v, k)
		}
		out[k] += n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("anomaly: empty inject spec")
	}
	return out, nil
}

// GenProfile synthesizes one injected job: a single-node minute-cadence
// power series exhibiting the named profile. The series is
// deterministic in (seed); baseW sets the healthy working level.
func GenProfile(profile string, jobID uint64, node int, startUnix int64, minutes int, baseW float64, seed int64) ([]trace.PowerSample, error) {
	if minutes <= 0 {
		minutes = 120
	}
	if baseW <= 0 {
		baseW = 220
	}
	rng := rand.New(rand.NewSource(seed))
	gen, ok := profileGens[profile]
	if !ok {
		return nil, fmt.Errorf("anomaly: unknown profile %q", profile)
	}
	out := make([]trace.PowerSample, 0, minutes)
	for m := 0; m < minutes; m++ {
		w := gen(m, minutes, baseW, rng)
		if w < 1 {
			w = 1
		}
		out = append(out, trace.PowerSample{
			Node: node, JobID: jobID,
			Unix: startUnix + int64(m)*60, PowerW: w,
		})
	}
	return out, nil
}

// profileGens maps profile → per-minute wattage generator.
var profileGens = map[string]func(m, minutes int, base float64, rng *rand.Rand) float64{
	// normal: three phases around base with ~5% in-phase noise — the
	// healthy shape the default rules must stay silent on.
	ProfileNormal: func(m, minutes int, base float64, rng *rand.Rand) float64 {
		phase := 1.0
		switch (m * 3) / max(minutes, 1) {
		case 0:
			phase = 0.92
		case 1:
			phase = 1.08
		default:
			phase = 0.97
		}
		return base * phase * (1 + 0.05*rng.NormFloat64())
	},
	// flatline: a short noisy ramp, then rock-steady high power — the
	// variance collapse of a fixed-intensity interloper (cryptomining
	// profile) that ignores the job's real computational phases.
	DetectFlatline: func(m, minutes int, base float64, rng *rand.Rand) float64 {
		if m < 8 {
			return base * (0.7 + 0.05*float64(m)) * (1 + 0.04*rng.NormFloat64())
		}
		return base * 1.12 * (1 + 0.001*rng.NormFloat64())
	},
	// zombie: real phased activity for the first 40%, then a hard drop
	// to an idle floor — the job lost its work but keeps its nodes.
	DetectZombie: func(m, minutes int, base float64, rng *rand.Rand) float64 {
		cut := (minutes * 2) / 5
		if m < cut {
			return base * (1 + 0.06*rng.NormFloat64())
		}
		return base * 0.18 * (1 + 0.02*rng.NormFloat64())
	},
	// overshoot: a healthy base load punctured by tall short spikes,
	// pushing lifetime (max−mean)/mean far past the paper's 10–12%
	// envelope (and the default rule's 50% runaway threshold).
	DetectOvershoot: func(m, minutes int, base float64, rng *rand.Rand) float64 {
		if m > 10 && m%17 < 2 {
			return base * 1.9 * (1 + 0.02*rng.NormFloat64())
		}
		return base * (1 + 0.04*rng.NormFloat64())
	},
	// drift: stable, then a steady ramp to ~2.6× over the middle 3/5,
	// then a plateau — a creeping baseline no step-change explains. The
	// ramp is steep enough that the slow baseline's lag repeatedly
	// clears the CUSUM slack, building the same-direction phase-shift
	// run the drift rule keys on (shifts land minutes apart, outside
	// the step-echo merge window).
	DetectDrift: func(m, minutes int, base float64, rng *rand.Rand) float64 {
		rampStart, rampEnd := minutes/5, (4*minutes)/5
		level := 1.0
		switch {
		case m >= rampEnd:
			level = 2.6
		case m > rampStart:
			level = 1.0 + 1.6*float64(m-rampStart)/float64(max(rampEnd-rampStart, 1))
		}
		return base * level * (1 + 0.03*rng.NormFloat64())
	},
}

// Labels is the injection ground truth: job ID → profile name.
type Labels map[uint64]string

// Verdict summarizes detection quality against ground-truth labels:
// an injected job counts as detected when at least one fire event of
// the matching detector exists for it; any fire on an unlabeled job is
// a false positive.
type Verdict struct {
	Injected  int     `json:"injected"`
	Detected  int     `json:"detected"`
	Missed    []int64 `json:"missed,omitempty"` // job IDs (int64 for JSON tools)
	FalseJobs []int64 `json:"false_jobs,omitempty"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// Score computes the verdict from fire events. Detector match is
// required for recall credit (a zombie caught only by the flatline
// rule is a miss); precision is job-level (any fire on a job that was
// not injected anomalous counts against it, and "normal" control jobs
// count as negatives).
func Score(labels Labels, fires []Event) Verdict {
	byJob := map[uint64]map[string]struct{}{}
	for _, ev := range fires {
		if ev.Type != EventFire {
			continue
		}
		if byJob[ev.Job] == nil {
			byJob[ev.Job] = map[string]struct{}{}
		}
		byJob[ev.Job][ev.Detector] = struct{}{}
	}
	v := Verdict{}
	truePos := 0
	for job, profile := range labels {
		if profile == ProfileNormal {
			continue
		}
		v.Injected++
		if _, ok := byJob[job][profile]; ok {
			v.Detected++
		} else {
			v.Missed = append(v.Missed, int64(job))
		}
	}
	for job := range byJob {
		if p, ok := labels[job]; ok && p != ProfileNormal {
			truePos++
		} else {
			v.FalseJobs = append(v.FalseJobs, int64(job))
		}
	}
	alerted := len(byJob)
	if alerted > 0 {
		v.Precision = float64(truePos) / float64(alerted)
	} else {
		v.Precision = 1
	}
	if v.Injected > 0 {
		v.Recall = float64(v.Detected) / float64(v.Injected)
	} else {
		v.Recall = 1
	}
	sort.Slice(v.Missed, func(a, b int) bool { return v.Missed[a] < v.Missed[b] })
	sort.Slice(v.FalseJobs, func(a, b int) bool { return v.FalseJobs[a] < v.FalseJobs[b] })
	return v
}
