package anomaly

import (
	"fmt"
	"sync"
)

// Event types.
const (
	EventFire    = "fire"
	EventResolve = "resolve"
)

// Event is one alert transition: a rule started firing for a job, or
// stopped. Events are what the ring stores, /v1/anomalies serves, and
// sinks deliver.
type Event struct {
	Seq      uint64 `json:"seq"`
	Type     string `json:"type"`
	Rule     string `json:"rule"`
	Detector string `json:"detector"`
	Severity string `json:"severity"`
	Job      uint64 `json:"job"`
	// Node is the node whose batch triggered the transition (a job
	// spans many nodes; this is the reporting one).
	Node int `json:"node"`
	// Unix is the sample time of the transition — detector time is
	// sample-driven, so replay and restore reproduce it exactly.
	Unix      int64   `json:"unix"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// FiredUnix on a resolve event is when the alert originally fired.
	FiredUnix int64 `json:"fired_unix,omitempty"`
	// Trace is the trace ID of the ingest batch that triggered the
	// transition: one grep follows shipper → WAL → alert.
	Trace   string `json:"trace,omitempty"`
	Message string `json:"message"`
}

// Alert is one currently-firing (job, rule) pair, served by
// GET /v1/anomalies?active=1.
type Alert struct {
	Rule      string  `json:"rule"`
	Detector  string  `json:"detector"`
	Severity  string  `json:"severity"`
	Job       uint64  `json:"job"`
	Node      int     `json:"node"`
	FiredUnix int64   `json:"fired_unix"`
	LastUnix  int64   `json:"last_unix"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Trace     string  `json:"trace,omitempty"`
	Count     int64   `json:"count"` // times this pair has fired over its lifetime
}

// Filter selects events from the ring. Zero values mean "any" (job 0
// is never a real job; Node -1 means any node).
type Filter struct {
	Job         uint64
	Node        int // -1 = any
	Rule        string
	Type        string
	MinSeverity int // SeverityLevel rank; 0 admits everything
	SinceUnix   int64
	SinceSeq    uint64
	Limit       int // 0 = no cap
}

// Match reports whether an event passes the filter.
func (f *Filter) Match(ev *Event) bool {
	if f.Job != 0 && ev.Job != f.Job {
		return false
	}
	if f.Node >= 0 && ev.Node != f.Node {
		return false
	}
	if f.Rule != "" && ev.Rule != f.Rule {
		return false
	}
	if f.Type != "" && ev.Type != f.Type {
		return false
	}
	if SeverityLevel(ev.Severity) < f.MinSeverity {
		return false
	}
	if f.SinceUnix != 0 && ev.Unix < f.SinceUnix {
		return false
	}
	if f.SinceSeq != 0 && ev.Seq <= f.SinceSeq {
		return false
	}
	return true
}

// ring is the bounded event store: a fixed circular buffer with
// monotonically increasing sequence numbers, oldest events evicted,
// plus fan-out to streaming subscribers (non-blocking: a slow consumer
// drops events rather than stalling the ingest path).
type ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest stored event
	count   int
	seq     uint64
	evicted uint64

	subs    map[uint64]chan Event
	nextSub uint64
}

func newRing(size int) *ring {
	if size <= 0 {
		size = 4096
	}
	return &ring{buf: make([]Event, size), subs: map[uint64]chan Event{}}
}

// append stamps the next sequence number on ev, stores it, and fans it
// out to subscribers. Returns the stamped event.
func (r *ring) append(ev Event) Event {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if r.count == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.count--
		r.evicted++
	}
	r.buf[(r.start+r.count)%len(r.buf)] = ev
	r.count++
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never block ingest
		}
	}
	r.mu.Unlock()
	return ev
}

// events returns matching events newest-first, up to f.Limit.
func (r *ring) events(f Filter) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := []Event{}
	for i := r.count - 1; i >= 0; i-- {
		ev := r.buf[(r.start+i)%len(r.buf)]
		if !f.Match(&ev) {
			continue
		}
		out = append(out, ev)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// subscribe registers a streaming consumer; cancel with unsubscribe.
func (r *ring) subscribe(depth int) (uint64, <-chan Event) {
	if depth <= 0 {
		depth = 64
	}
	ch := make(chan Event, depth)
	r.mu.Lock()
	r.nextSub++
	id := r.nextSub
	r.subs[id] = ch
	r.mu.Unlock()
	return id, ch
}

func (r *ring) unsubscribe(id uint64) {
	r.mu.Lock()
	delete(r.subs, id)
	r.mu.Unlock()
}

// snapshot returns the stored events oldest-first plus the current
// sequence number — the export path.
func (r *ring) snapshot() ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out, r.seq
}

// restore replaces the ring contents (oldest-first) and sequence
// counter — the import path. Events beyond capacity keep the newest.
func (r *ring) restore(events []Event, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start, r.count = 0, 0
	if n := len(events) - len(r.buf); n > 0 {
		events = events[n:]
	}
	copy(r.buf, events)
	r.count = len(events)
	r.seq = seq
}

// stats returns appended-total and evicted counts.
func (r *ring) stats() (appended, evicted uint64, stored int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq, r.evicted, r.count
}

// message renders the human-readable alert line.
func message(ev *Event) string {
	switch ev.Type {
	case EventFire:
		return fmt.Sprintf("%s: job %d on node %d: %s value %.3f vs threshold %.3f",
			ev.Severity, ev.Job, ev.Node, ev.Detector, ev.Value, ev.Threshold)
	default:
		return fmt.Sprintf("resolved: job %d %s (fired at %d)", ev.Job, ev.Rule, ev.FiredUnix)
	}
}
