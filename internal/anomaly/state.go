package anomaly

import (
	"fmt"
	"sort"
)

// EngineState is the serializable alert-dedup state of an Engine: every
// (job, rule) hysteresis machine plus the event ring. It rides the
// serving layer's snapshot image (next to the tsdb StoreState that
// carries the fingerprints), so a crash restart or a promoted standby
// continues the alert timeline instead of re-firing alerts that
// already fired or dropping ones that were mid-countdown.
type EngineState struct {
	// Rules is the canonical spec of the rule set the state was
	// exported under. Restore matches states to rules by name, so a
	// restart with an edited rule set keeps what still applies and
	// drops the rest.
	Rules string `json:"rules"`
	// Seq is the event ring's sequence counter.
	Seq uint64 `json:"seq"`
	// Counters carried across restarts so rates stay monotonic.
	Fired      int64 `json:"fired"`
	Resolved   int64 `json:"resolved"`
	Suppressed int64 `json:"suppressed"`

	Jobs   []JobAlertState `json:"jobs,omitempty"`
	Events []Event         `json:"events,omitempty"`
}

// JobAlertState is one job's per-rule machines.
type JobAlertState struct {
	Job    uint64           `json:"job"`
	States []RuleAlertState `json:"states"`
}

// RuleAlertState is one (job, rule) machine, keyed by rule name.
type RuleAlertState struct {
	Rule       string  `json:"rule"`
	CondSince  int64   `json:"cond_since,omitempty"`
	ClearSince int64   `json:"clear_since,omitempty"`
	Firing     bool    `json:"firing,omitempty"`
	FiredUnix  int64   `json:"fired_unix,omitempty"`
	Node       int     `json:"node,omitempty"`
	Value      float64 `json:"value,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Trace      string  `json:"trace,omitempty"`
	Count      int64   `json:"count,omitempty"`
}

// ExportState captures the engine's alert state in canonical (sorted)
// order. The serving layer calls it under its apply lock, so the cut
// is consistent with the store snapshot taken alongside.
func (e *Engine) ExportState() *EngineState {
	st := &EngineState{
		Rules:      FormatRules(e.rules),
		Fired:      e.fired.Load(),
		Resolved:   e.resolved.Load(),
		Suppressed: e.suppressed.Load(),
	}
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		for job, ja := range sh.jobs {
			js := JobAlertState{Job: job, States: make([]RuleAlertState, 0, len(ja.states))}
			idle := true
			for i := range ja.states {
				s := &ja.states[i]
				if s.condSince == 0 && s.clearSince == 0 && !s.firing && s.count == 0 {
					continue // zero machine — no need to serialize it
				}
				idle = false
				js.States = append(js.States, RuleAlertState{
					Rule: e.rules[i].Name, CondSince: s.condSince, ClearSince: s.clearSince,
					Firing: s.firing, FiredUnix: s.firedUnix, Node: s.node,
					Value: s.value, Threshold: s.threshold, Trace: s.trace, Count: s.count,
				})
			}
			if !idle {
				st.Jobs = append(st.Jobs, js)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Jobs, func(a, b int) bool { return st.Jobs[a].Job < st.Jobs[b].Job })
	st.Events, st.Seq = e.ring.snapshot()
	return st
}

// RestoreState installs a captured alert state, replacing whatever the
// engine holds. States for rule names not in the current rule set are
// dropped (with a count returned); a nil state resets the engine.
// Restoring never re-delivers the carried events to sinks — they were
// delivered by the instance that recorded them.
func (e *Engine) RestoreState(st *EngineState) (dropped int, err error) {
	byName := map[string]int{}
	for i, r := range e.rules {
		byName[r.Name] = i
	}
	fresh := make([]map[uint64]*jobAlerts, alertShards)
	for i := range fresh {
		fresh[i] = map[uint64]*jobAlerts{}
	}
	var active int64
	if st != nil {
		seen := map[uint64]struct{}{}
		for _, js := range st.Jobs {
			if js.Job == 0 {
				return 0, fmt.Errorf("anomaly: state carries job 0")
			}
			if _, dup := seen[js.Job]; dup {
				return 0, fmt.Errorf("anomaly: state carries job %d twice", js.Job)
			}
			seen[js.Job] = struct{}{}
			ja := &jobAlerts{states: make([]ruleState, len(e.rules))}
			for _, rs := range js.States {
				i, ok := byName[rs.Rule]
				if !ok {
					dropped++
					continue
				}
				if rs.FiredUnix < 0 || rs.CondSince < 0 || rs.ClearSince < 0 || rs.Count < 0 {
					return 0, fmt.Errorf("anomaly: job %d rule %q: negative timestamps", js.Job, rs.Rule)
				}
				ja.states[i] = ruleState{
					condSince: rs.CondSince, clearSince: rs.ClearSince,
					firing: rs.Firing, firedUnix: rs.FiredUnix, node: rs.Node,
					value: rs.Value, threshold: rs.Threshold, trace: rs.Trace, count: rs.Count,
				}
				if rs.Firing {
					active++
				}
			}
			fresh[mix(js.Job)&(alertShards-1)][js.Job] = ja
		}
	}
	// Validation passed: swap everything in.
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		sh.jobs = fresh[i]
		sh.mu.Unlock()
	}
	e.active.Store(active)
	if st != nil {
		e.ring.restore(st.Events, st.Seq)
		e.fired.Store(st.Fired)
		e.resolved.Store(st.Resolved)
		e.suppressed.Store(st.Suppressed)
		if n := len(st.Events); n > 0 {
			if last := st.Events[n-1].Unix; last > e.lastUnix.Load() {
				e.lastUnix.Store(last)
			}
		}
	} else {
		e.ring.restore(nil, 0)
		e.fired.Store(0)
		e.resolved.Store(0)
		e.suppressed.Store(0)
	}
	return dropped, nil
}
