package anomaly

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hpcpower/internal/obs"
)

// Sink delivers alert events somewhere. Send must never block the
// caller (it runs on the ingest path): sinks queue internally and
// shed under sustained backlog rather than stall ingest.
type Sink interface {
	Name() string
	Send(Event)
	Health() SinkHealth
	Close()
}

// SinkHealth is one sink's delivery health, surfaced in /readyz and as
// powserved_alert_sink_* metrics.
type SinkHealth struct {
	Name      string `json:"name"`
	Healthy   bool   `json:"healthy"`
	Delivered int64  `json:"delivered"`
	Errors    int64  `json:"errors"`
	Retries   int64  `json:"retries"`
	Dropped   int64  `json:"dropped"`
	Queued    int    `json:"queued"`
	LastError string `json:"last_error,omitempty"`
}

// LogSink writes every event as a structured slog line, severity-mapped
// (critical → Error, warning → Warn, info → Info), with the trace ID of
// the triggering batch — the last hop of the one-grep pipeline.
type LogSink struct {
	logger    *slog.Logger
	delivered atomic.Int64
}

// NewLogSink returns a sink logging to logger (nil discards).
func NewLogSink(logger *slog.Logger) *LogSink {
	return &LogSink{logger: obs.Component(logger, "alert")}
}

func (s *LogSink) Name() string { return "log" }

func (s *LogSink) Send(ev Event) {
	lvl := slog.LevelInfo
	switch {
	case ev.Type == EventResolve:
		lvl = slog.LevelInfo
	case ev.Severity == SeverityCritical:
		lvl = slog.LevelError
	case ev.Severity == SeverityWarning:
		lvl = slog.LevelWarn
	}
	s.logger.Log(nil, lvl, "alert "+ev.Type,
		slog.String("rule", ev.Rule),
		slog.String("detector", ev.Detector),
		slog.String("severity", ev.Severity),
		slog.Uint64("job", ev.Job),
		slog.Int("node", ev.Node),
		slog.Int64("unix", ev.Unix),
		slog.Float64("value", ev.Value),
		slog.Float64("threshold", ev.Threshold),
		slog.String("trace_id", ev.Trace),
		slog.Uint64("seq", ev.Seq))
	s.delivered.Add(1)
}

func (s *LogSink) Health() SinkHealth {
	return SinkHealth{Name: s.Name(), Healthy: true, Delivered: s.delivered.Load()}
}

func (s *LogSink) Close() {}

// WebhookConfig parameterizes a WebhookSink.
type WebhookConfig struct {
	// URL receives one POST per event with the Event as the JSON body.
	URL string
	// Client is the HTTP client. Nil means a 5 s-timeout default.
	Client *http.Client
	// MaxPending bounds the delivery queue; events beyond it are
	// dropped (counted). 0 means 256.
	MaxPending int
	// MaxAttempts per event, including the first. 0 means 6.
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential backoff with full
	// jitter between attempts — the shipper's retry discipline. A
	// Retry-After response header overrides the computed delay
	// (jittered over [hint/2, hint]). 0 means 50 ms / 5 s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold marks the sink unhealthy after this many
	// consecutive delivery failures. 0 means 5.
	BreakerThreshold int
	// Seed makes the jitter deterministic in tests. 0 seeds from the
	// queue identity.
	Seed int64
	// Logger receives delivery-failure debug lines. Nil discards.
	Logger *slog.Logger
}

// WebhookSink POSTs events to an HTTP endpoint from a single background
// goroutine with at-least-once-effort semantics: bounded queue,
// exponential backoff with full jitter, Retry-After honored, and a
// consecutive-failure health breaker — the same discipline the shipper
// applies to sample batches, self-contained here.
type WebhookSink struct {
	cfg    WebhookConfig
	client *http.Client
	queue  chan Event
	stopc  chan struct{}
	wg     sync.WaitGroup
	logger *slog.Logger

	delivered atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	dropped   atomic.Int64
	consec    atomic.Int64
	lastErr   atomic.Pointer[string]
}

// NewWebhookSink starts the delivery goroutine.
func NewWebhookSink(cfg WebhookConfig) (*WebhookSink, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("anomaly: webhook sink needs a URL")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 256
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	cfg.Logger = obs.Component(cfg.Logger, "alert_webhook")
	s := &WebhookSink{
		cfg:    cfg,
		client: cfg.Client,
		queue:  make(chan Event, cfg.MaxPending),
		stopc:  make(chan struct{}),
		logger: cfg.Logger,
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

func (s *WebhookSink) Name() string { return "webhook" }

// Send enqueues without blocking; a full queue drops the event.
func (s *WebhookSink) Send(ev Event) {
	select {
	case s.queue <- ev:
	default:
		s.dropped.Add(1)
	}
}

func (s *WebhookSink) run() {
	defer s.wg.Done()
	seed := s.cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	for {
		select {
		case <-s.stopc:
			return
		case ev := <-s.queue:
			s.deliver(rng, ev)
		}
	}
}

// deliver attempts one event with retries; exhausting attempts counts
// one error and moves on (the event remains in the server's ring).
func (s *WebhookSink) deliver(rng *rand.Rand, ev Event) {
	body, err := json.Marshal(ev)
	if err != nil {
		s.fail(fmt.Sprintf("encoding event %d: %v", ev.Seq, err))
		return
	}
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
		}
		retryAfter, err := s.post(body, ev)
		if err == nil {
			s.delivered.Add(1)
			s.consec.Store(0)
			return
		}
		s.logger.Debug("webhook delivery failed",
			slog.Uint64("seq", ev.Seq),
			slog.Int("attempt", attempt+1),
			slog.String("error", err.Error()))
		if attempt == s.cfg.MaxAttempts-1 {
			s.fail(err.Error())
			return
		}
		select {
		case <-s.stopc:
			return
		case <-time.After(s.backoff(rng, attempt, retryAfter)):
		}
	}
}

// post runs one HTTP attempt; a Retry-After header on a non-2xx
// response is returned as a delay hint.
func (s *WebhookSink) post(body []byte, ev Event) (time.Duration, error) {
	req, err := http.NewRequest(http.MethodPost, s.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if ev.Trace != "" {
		req.Header.Set("X-Trace-Id", ev.Trace)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return 0, nil
	}
	var hint time.Duration
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			hint = time.Duration(secs) * time.Second
		}
	}
	return hint, fmt.Errorf("webhook: %s", resp.Status)
}

// backoff computes the sleep before the next attempt: the server's
// Retry-After hint jittered over [hint/2, hint] when present, else
// full jitter over an exponentially growing cap.
func (s *WebhookSink) backoff(rng *rand.Rand, attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		half := retryAfter / 2
		return half + time.Duration(rng.Int63n(int64(half)+1))
	}
	cap := s.cfg.BaseBackoff << uint(attempt)
	if cap > s.cfg.MaxBackoff || cap <= 0 {
		cap = s.cfg.MaxBackoff
	}
	return time.Duration(rng.Int63n(int64(cap)) + 1)
}

func (s *WebhookSink) fail(msg string) {
	s.errors.Add(1)
	s.consec.Add(1)
	s.lastErr.Store(&msg)
}

func (s *WebhookSink) Health() SinkHealth {
	h := SinkHealth{
		Name:      s.Name(),
		Healthy:   s.consec.Load() < int64(s.cfg.BreakerThreshold),
		Delivered: s.delivered.Load(),
		Errors:    s.errors.Load(),
		Retries:   s.retries.Load(),
		Dropped:   s.dropped.Load(),
		Queued:    len(s.queue),
	}
	if p := s.lastErr.Load(); p != nil {
		h.LastError = *p
	}
	return h
}

// Close stops the delivery goroutine; queued events are dropped
// (counted) — alerting is best-effort delivery over an authoritative
// ring.
func (s *WebhookSink) Close() {
	close(s.stopc)
	s.wg.Wait()
	s.dropped.Add(int64(len(s.queue)))
}
