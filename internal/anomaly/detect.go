package anomaly

// driftStaleSec clears the drift condition when no phase shift has
// extended the run for this long (sample time): a ramp that plateaued
// is no longer drifting, so the alert can resolve.
const driftStaleSec = 30 * 60

// Eval evaluates the rule's condition against a fingerprint. It
// returns whether the raw condition holds right now (hysteresis and
// min-duration live in the engine, not here), plus the measured value
// and the threshold it was compared against — the numbers an alert
// event carries so an operator can see how far out of band the job is.
func (r *Rule) Eval(f *Fingerprint) (active bool, value, threshold float64) {
	if f.N < int64(r.MinSamples) {
		return false, 0, 0
	}
	switch r.Detector {
	case DetectFlatline:
		// Variance collapse at sustained high power: windowed relative
		// std below RelStd while the fast EWMA is both above the
		// absolute floor and near the job's own sustained peak. Real
		// jobs hold ~11% power std (paper §4); synthetic flatlines sit
		// under 1%.
		value, threshold = f.RelStdFast(), r.RelStd
		active = f.EWFast >= r.MinW &&
			f.EWFast >= r.HighFrac*f.FastPeak &&
			value < threshold
	case DetectZombie:
		// Power floor after real activity: the job demonstrably ran hot
		// (sustained peak above MinW) but now idles at a fraction of it.
		value, threshold = f.EWFast, r.LowFrac*f.FastPeak
		active = f.FastPeak >= r.MinW && value <= threshold
	case DetectOvershoot:
		// Lifetime peak overshoot beyond the configured envelope. The
		// fingerprint's Max and Sum/N are exact, so this matches a
		// brute-force (max−mean)/mean over every sample bit-for-bit.
		value, threshold = f.OvershootPct(), r.OvershootPct
		active = value > threshold
	case DetectDrift:
		// A run of same-direction phase shifts that moved the baseline
		// by DriftFrac: a step change is one shift and never qualifies;
		// a plateaued ramp goes stale and resolves.
		value, threshold = 100*f.DriftFrac(), 100*r.DriftFrac
		active = int(f.RunLen) >= r.Runs &&
			f.RunBase >= r.MinW &&
			value >= threshold &&
			f.Last-f.LastPhase <= driftStaleSec
	}
	return active, value, threshold
}
