package anomaly

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultRules(t *testing.T) {
	rules := DefaultRules()
	if len(rules) != 4 {
		t.Fatalf("got %d default rules, want 4", len(rules))
	}
	want := []string{DetectFlatline, DetectZombie, DetectOvershoot, DetectDrift}
	for i, d := range want {
		if rules[i].Detector != d {
			t.Errorf("rule %d detector = %q, want %q", i, rules[i].Detector, d)
		}
		if rules[i].Name == "" || SeverityLevel(rules[i].Severity) < 0 {
			t.Errorf("rule %d has bad name/severity: %+v", i, rules[i])
		}
		if rules[i].MinSamples < 1 || rules[i].MinDuration <= 0 || rules[i].ResolveAfter <= 0 {
			t.Errorf("rule %d has degenerate hysteresis: %+v", i, rules[i])
		}
	}
	if _, err := DefaultRule("nope"); err == nil {
		t.Error("unknown detector accepted")
	}
}

func TestParseRulesDefaults(t *testing.T) {
	for _, spec := range []string{"", "default", "  default  "} {
		rules, err := ParseRules(spec)
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", spec, err)
		}
		if len(rules) != 4 {
			t.Fatalf("ParseRules(%q) gave %d rules, want 4", spec, len(rules))
		}
	}
}

func TestParseRulesOverrides(t *testing.T) {
	rules, err := ParseRules("flatline:rel-std=0.02,min-duration=20m;overshoot:overshoot-pct=30,severity=warning")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if rules[0].RelStd != 0.02 || rules[0].MinDuration != 20*time.Minute {
		t.Errorf("flatline overrides not applied: %+v", rules[0])
	}
	if rules[0].HighFrac != 0.60 {
		t.Errorf("unset keys must keep defaults, high-frac = %v", rules[0].HighFrac)
	}
	if rules[1].OvershootPct != 30 || rules[1].Severity != SeverityWarning {
		t.Errorf("overshoot overrides not applied: %+v", rules[1])
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		"wat",                       // unknown detector
		"flatline:nope=1",           // unknown key
		"flatline:rel-std",          // not key=value
		"flatline:rel-std=2",        // fraction out of range
		"flatline:rel-std=-0.1",     // negative fraction
		"zombie:rel-std=0.5",        // key does not apply to detector
		"overshoot:low-frac=0.5",    // key does not apply to detector
		"drift:overshoot-pct=10",    // key does not apply to detector
		"flatline:severity=fatal",   // unknown severity
		"flatline:min-duration=xyz", // bad duration
		"flatline:min-duration=-5m", // negative duration
		"flatline:min-samples=0",    // zero samples
		"flatline:min-w=-1",         // negative watts
		"drift:runs=0",              // zero runs
		"flatline;flatline",         // duplicate names
		"flatline:name=",            // empty name
		"flatline:name=a b",         // reserved characters
		"overshoot:overshoot-pct=0", // zero percentage
		";;",                        // nothing left
	}
	for _, spec := range bad {
		if _, err := ParseRules(spec); err == nil {
			t.Errorf("ParseRules(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseRulesSameDetectorTwice(t *testing.T) {
	rules, err := ParseRules("overshoot:name=soft,overshoot-pct=20,severity=info;overshoot:name=hard,overshoot-pct=50")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "soft" || rules[1].Name != "hard" {
		t.Fatalf("two named overshoot rules not parsed: %+v", rules)
	}
}

// TestParseRulesRoundTrip pins the spec syntax: formatting any accepted
// rule set and re-parsing it yields the identical rules.
func TestParseRulesRoundTrip(t *testing.T) {
	specs := []string{
		"default",
		"flatline",
		"zombie:low-frac=0.25,min-w=120",
		"flatline:rel-std=0.005;zombie;overshoot:overshoot-pct=40;drift:runs=5,drift-frac=0.3",
		"overshoot:name=soft,overshoot-pct=20;overshoot:name=hard,overshoot-pct=50,severity=critical",
	}
	for _, spec := range specs {
		rules, err := ParseRules(spec)
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", spec, err)
		}
		formatted := FormatRules(rules)
		again, err := ParseRules(formatted)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", formatted, spec, err)
		}
		if len(again) != len(rules) {
			t.Fatalf("round trip changed rule count: %q", formatted)
		}
		for i := range rules {
			if rules[i] != again[i] {
				t.Errorf("round trip of %q changed rule %d:\n got %+v\nwant %+v",
					spec, i, again[i], rules[i])
			}
		}
	}
}

func TestRuleNames(t *testing.T) {
	names := RuleNames(DefaultRules())
	joined := strings.Join(names, ",")
	if joined != "flatline,zombie,overshoot,drift" {
		t.Fatalf("RuleNames = %q", joined)
	}
}

func TestSeverityLevel(t *testing.T) {
	if SeverityLevel(SeverityInfo) != 0 || SeverityLevel(SeverityWarning) != 1 ||
		SeverityLevel(SeverityCritical) != 2 || SeverityLevel("junk") != -1 {
		t.Fatal("severity ranks are wrong")
	}
}
