// Package anomaly is the streaming power-fingerprint anomaly detector
// behind powserved's alerting pipeline. It turns the paper's central
// observation — HPC job power behavior is highly structured (stable
// per-job means, a tight 10–12% peak-overshoot envelope, recognizable
// temporal phases) — into an online detector: deviations from that
// structure are signal, not noise.
//
// The package has three layers:
//
//   - Fingerprint: an O(1), allocation-free per-job sketch updated once
//     per sample on the ingest hot path (inside the tsdb job-shard lock,
//     next to the existing Welford/P²/overshoot state): running moments,
//     fast/slow EWMA baselines, an EWMA variance proxy, CUSUM
//     phase-change detection, and a small FFT-free shape histogram.
//   - Rules + detectors: a pluggable rule set (cryptomining-like
//     flatline, zombie job, runaway overshoot, baseline drift) evaluated
//     against fingerprints once per ingested batch, off the per-sample
//     path.
//   - Engine: per-(job,rule) hysteresis state machines (min-duration
//     fire, clear-duration resolve, dedup while firing), a ring-buffered
//     event store, and pluggable delivery sinks.
//
// All detector timing is driven by sample timestamps, never wall clock,
// so WAL replay, snapshot restore, and failover reproduce the exact
// alert decisions of the original run.
package anomaly

import "math"

// EWMA smoothing factors, per telemetry sample (one per job-minute in
// the paper's setting). Fast tracks the current phase; slow is the
// baseline the detectors compare against.
const (
	alphaFast = 0.25
	alphaSlow = 0.05
	alphaVar  = 0.10

	// CUSUM slack and reset thresholds as fractions of the slow
	// baseline: residuals under 10% of baseline are "in phase" noise
	// (the paper's jobs hold ~11% overall power std); an accumulated
	// one-sided excursion worth 50% of baseline is a phase change.
	cusumSlackFrac = 0.10
	cusumResetFrac = 0.50
	cusumSlackMinW = 1.0
	cusumResetMinW = 5.0

	// phaseMergeSec merges CUSUM re-triggers into one phase shift: after
	// a genuine step change the EWMAs take a few samples to converge and
	// the CUSUM fires again in the same direction within minutes. Those
	// are echoes of a single transition — folding them keeps a step at
	// run length one, so only a sustained ramp (shifts spaced further
	// apart) can build the drift detector's run.
	phaseMergeSec = 5 * 60
)

// ShapeBuckets is the size of the fingerprint's occupancy histogram:
// each sample lands in a bucket by its ratio to the slow baseline. The
// histogram is the FFT-free shape sketch — a flat job occupies one
// bucket, a phased job spreads across several — and doubles as a cheap
// power signature for "what is this cluster running" style analysis.
const ShapeBuckets = 8

// Fingerprint is the streaming power sketch of one job. It is a plain
// value struct — fixed size, no pointers — so updating it allocates
// nothing and exporting it is a copy. The struct doubles as its own
// serialized state: every field is exported with a JSON tag, and a
// restored fingerprint continues the stream bit-for-bit.
type Fingerprint struct {
	N     int64   `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sum_sq"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`

	First int64   `json:"first_unix"`
	Last  int64   `json:"last_unix"`
	LastW float64 `json:"last_w"`

	// EWFast/EWSlow are the phase-tracking and baseline EWMAs; EWVar is
	// an EWMA of the squared fast-residual (a windowed variance proxy);
	// FastPeak is the highest sustained (fast-EWMA) power seen.
	EWFast   float64 `json:"ew_fast"`
	EWSlow   float64 `json:"ew_slow"`
	EWVar    float64 `json:"ew_var"`
	FastPeak float64 `json:"fast_peak"`

	// One-sided CUSUM accumulators over the raw residual vs. the slow
	// baseline. When either exceeds the reset threshold the fingerprint
	// records a phase change, adopts the fast EWMA as the new baseline,
	// and zeroes both sides.
	CUSUMPos float64 `json:"cusum_pos"`
	CUSUMNeg float64 `json:"cusum_neg"`

	// Phases counts baseline adoptions (phase changes); LastPhase is the
	// sample time of the latest one. RunDir/RunLen/RunBase track the
	// current run of same-direction phase shifts: a genuine step change
	// is one shift, a slow ramp is a run of them — the drift detector's
	// signal. RunBase is the baseline power when the run started.
	Phases    int64   `json:"phases"`
	LastPhase int64   `json:"last_phase_unix,omitempty"`
	RunDir    int8    `json:"run_dir,omitempty"`
	RunLen    int32   `json:"run_len,omitempty"`
	RunBase   float64 `json:"run_base,omitempty"`

	// Shape is the occupancy histogram of sample power relative to the
	// slow baseline (see ShapeBuckets).
	Shape [ShapeBuckets]int64 `json:"shape"`
}

// Update folds one sample into the fingerprint. It is the per-sample
// hot path — branch-light float arithmetic, no divisions, no
// allocations — budgeted at a few percent of the tsdb append cost.
func (f *Fingerprint) Update(unix int64, w float64) {
	if f.N == 0 {
		f.N = 1
		f.Sum, f.SumSq = w, w*w
		f.Min, f.Max = w, w
		f.First, f.Last = unix, unix
		f.LastW = w
		f.EWFast, f.EWSlow, f.FastPeak = w, w, w
		f.Shape[shapeBucket(w, w)]++
		return
	}
	f.N++
	f.Sum += w
	f.SumSq += w * w
	if w < f.Min {
		f.Min = w
	}
	if w > f.Max {
		f.Max = w
	}
	if unix > f.Last {
		f.Last = unix
	}
	f.LastW = w

	f.EWFast += alphaFast * (w - f.EWFast)
	r := w - f.EWFast
	f.EWVar += alphaVar * (r*r - f.EWVar)
	f.EWSlow += alphaSlow * (w - f.EWSlow)
	if f.EWFast > f.FastPeak {
		f.FastPeak = f.EWFast
	}
	f.Shape[shapeBucket(w, f.EWSlow)]++

	d := w - f.EWSlow
	k := cusumSlackFrac * f.EWSlow
	if k < cusumSlackMinW {
		k = cusumSlackMinW
	}
	if p := f.CUSUMPos + d - k; p > 0 {
		f.CUSUMPos = p
	} else {
		f.CUSUMPos = 0
	}
	if n := f.CUSUMNeg - d - k; n > 0 {
		f.CUSUMNeg = n
	} else {
		f.CUSUMNeg = 0
	}
	h := cusumResetFrac * f.EWSlow
	if h < cusumResetMinW {
		h = cusumResetMinW
	}
	if f.CUSUMPos > h || f.CUSUMNeg > h {
		dir := int8(1)
		if f.CUSUMNeg > f.CUSUMPos {
			dir = -1
		}
		f.phaseShift(dir, unix)
	}
}

// phaseShift records a detected phase change and adopts the fast EWMA
// as the new baseline so the CUSUM re-arms against the new level.
func (f *Fingerprint) phaseShift(dir int8, unix int64) {
	if dir == f.RunDir && f.LastPhase != 0 && unix-f.LastPhase <= phaseMergeSec {
		// Convergence echo of the previous shift (see phaseMergeSec):
		// re-adopt the baseline but do not extend the run.
		f.LastPhase = unix
		f.EWSlow = f.EWFast
		f.CUSUMPos, f.CUSUMNeg = 0, 0
		return
	}
	f.Phases++
	f.LastPhase = unix
	if dir == f.RunDir {
		f.RunLen++
	} else {
		f.RunDir = dir
		f.RunLen = 1
		f.RunBase = f.EWSlow
	}
	f.EWSlow = f.EWFast
	f.CUSUMPos, f.CUSUMNeg = 0, 0
}

// shapeBucket maps a sample to its occupancy bucket by ratio to the
// baseline, without a division: thresholds are baseline multiples.
func shapeBucket(w, base float64) int {
	if base <= 0 {
		return ShapeBuckets - 1
	}
	switch {
	case w < 0.25*base:
		return 0
	case w < 0.50*base:
		return 1
	case w < 0.75*base:
		return 2
	case w < 0.95*base:
		return 3
	case w < 1.05*base:
		return 4
	case w < 1.25*base:
		return 5
	case w < 1.50*base:
		return 6
	default:
		return 7
	}
}

// Mean returns the lifetime mean power.
func (f *Fingerprint) Mean() float64 {
	if f.N == 0 {
		return 0
	}
	return f.Sum / float64(f.N)
}

// Std returns the lifetime population standard deviation.
func (f *Fingerprint) Std() float64 {
	if f.N == 0 {
		return 0
	}
	m := f.Mean()
	v := f.SumSq/float64(f.N) - m*m
	if v < 0 {
		v = 0 // floating-point cancellation guard
	}
	return math.Sqrt(v)
}

// RelStdFast returns the windowed relative standard deviation — the
// EWMA variance proxy over the fast baseline — the flatline detector's
// variance-collapse signal.
func (f *Fingerprint) RelStdFast() float64 {
	if f.EWFast <= 0 || f.EWVar <= 0 {
		return 0
	}
	return math.Sqrt(f.EWVar) / f.EWFast
}

// OvershootPct returns the lifetime peak overshoot (max − mean)/mean in
// percent — identical by construction to the brute-force check over all
// samples, because Max and Sum/N are exact.
func (f *Fingerprint) OvershootPct() float64 {
	m := f.Mean()
	if m <= 0 {
		return 0
	}
	return 100 * (f.Max - m) / m
}

// DriftFrac returns the fractional baseline movement of the current
// same-direction phase-shift run (0 when no run is in progress).
func (f *Fingerprint) DriftFrac() float64 {
	if f.RunLen == 0 || f.RunBase <= 0 {
		return 0
	}
	return math.Abs(f.EWSlow-f.RunBase) / f.RunBase
}

// Valid reports whether a decoded fingerprint is internally coherent —
// the gate the snapshot-restore path uses so a corrupt or adversarial
// payload is rejected instead of poisoning detector math with NaNs.
func (f *Fingerprint) Valid() bool {
	if f.N < 0 {
		return false
	}
	if f.N == 0 {
		return *f == Fingerprint{}
	}
	for _, v := range [...]float64{f.Sum, f.SumSq, f.Min, f.Max, f.LastW, f.EWFast, f.EWSlow, f.EWVar, f.FastPeak, f.CUSUMPos, f.CUSUMNeg, f.RunBase} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	if f.Min > f.Max || f.SumSq < 0 || f.EWVar < 0 {
		return false
	}
	if f.First > f.Last {
		return false
	}
	for _, c := range f.Shape {
		if c < 0 {
			return false
		}
	}
	return true
}
