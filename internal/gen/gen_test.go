package gen

import (
	"hpcpower/internal/apps"
	"hpcpower/internal/cluster"
	"hpcpower/internal/rng"
	"hpcpower/internal/users"
	"testing"
	"time"

	"hpcpower/internal/stats"
	"hpcpower/internal/trace"
)

// testScale keeps unit-test generation around a week of trace.
const testScale = 0.05

// Cached datasets: generation is the expensive step, and many tests
// inspect the same output.
var (
	emmyDS   *trace.Dataset
	meggieDS *trace.Dataset
)

func emmy(t testing.TB) *trace.Dataset {
	t.Helper()
	if emmyDS == nil {
		ds, err := Generate(EmmyConfig(testScale, 42))
		if err != nil {
			t.Fatal(err)
		}
		emmyDS = ds
	}
	return emmyDS
}

func meggie(t testing.TB) *trace.Dataset {
	t.Helper()
	if meggieDS == nil {
		ds, err := Generate(MeggieConfig(testScale, 42))
		if err != nil {
			t.Fatal(err)
		}
		meggieDS = ds
	}
	return meggieDS
}

func TestGenerateProducesValidDataset(t *testing.T) {
	ds := emmy(t)
	if err := ds.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	if len(ds.Jobs) < 500 {
		t.Errorf("only %d jobs generated", len(ds.Jobs))
	}
	if ds.Meta.System != "Emmy" || ds.Meta.TotalNodes != 560 {
		t.Errorf("meta = %+v", ds.Meta)
	}
	if len(ds.System) == 0 {
		t.Error("no system series")
	}
	if len(ds.Series) == 0 {
		t.Error("no retained raw series")
	}
}

func TestJobsStartWithinWindow(t *testing.T) {
	ds := emmy(t)
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		if j.Start.Before(ds.Meta.Start) || !j.Start.Before(ds.Meta.End) {
			t.Fatalf("job %d starts at %v, window [%v, %v)", j.ID, j.Start, ds.Meta.Start, ds.Meta.End)
		}
	}
}

func TestSystemSeriesBounds(t *testing.T) {
	for _, ds := range []*trace.Dataset{emmy(t), meggie(t)} {
		budget := float64(ds.Meta.TotalNodes) * ds.Meta.NodeTDPW
		for i, s := range ds.System {
			if s.ActiveNodes < 0 || s.ActiveNodes > ds.Meta.TotalNodes {
				t.Fatalf("%s minute %d: active=%d", ds.Meta.System, i, s.ActiveNodes)
			}
			if s.TotalPowerW < 0 || s.TotalPowerW > budget {
				t.Fatalf("%s minute %d: power=%v of budget %v", ds.Meta.System, i, s.TotalPowerW, budget)
			}
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := EmmyConfig(0.01, 7)
	cfg.Workers = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	for i := range a.System {
		if a.System[i] != b.System[i] {
			t.Fatalf("system sample %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := Generate(EmmyConfig(0.01, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(EmmyConfig(0.01, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) == len(b.Jobs) {
		same := 0
		for i := range a.Jobs {
			if a.Jobs[i].AvgPowerPerNode == b.Jobs[i].AvgPowerPerNode {
				same++
			}
		}
		if same > len(a.Jobs)/10 {
			t.Errorf("seeds 1 and 2 share %d/%d identical job powers", same, len(a.Jobs))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := EmmyConfig(0.01, 1)
	bad.OfferedLoad = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero load accepted")
	}
	bad = EmmyConfig(0.01, 1)
	bad.Duration = time.Minute
	if _, err := Generate(bad); err == nil {
		t.Error("tiny duration accepted")
	}
	bad = EmmyConfig(0.01, 1)
	bad.Spec.Nodes = 0
	if _, err := Generate(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

// --- Calibration checks against the paper's aggregates ---

func perNodePowers(ds *trace.Dataset) []float64 {
	out := make([]float64, len(ds.Jobs))
	for i := range ds.Jobs {
		out[i] = float64(ds.Jobs[i].AvgPowerPerNode)
	}
	return out
}

func TestCalibrationEmmyPowerDistribution(t *testing.T) {
	// Paper Fig. 3a: Emmy mean per-node power ≈149 W (71% of 210 W TDP),
	// std ≈39 W (26% of mean).
	s := stats.Summarize(perNodePowers(emmy(t)))
	if s.Mean < 135 || s.Mean > 163 {
		t.Errorf("Emmy mean per-node power = %.1f W, want ~149 W", s.Mean)
	}
	if s.CVPercent < 16 || s.CVPercent > 36 {
		t.Errorf("Emmy power CV = %.1f%%, want ~26%%", s.CVPercent)
	}
}

func TestCalibrationMeggiePowerDistribution(t *testing.T) {
	// Paper Fig. 3b: Meggie mean ≈114 W (59% of 195 W TDP), std ≈20 W
	// (18% of mean).
	s := stats.Summarize(perNodePowers(meggie(t)))
	if s.Mean < 100 || s.Mean > 128 {
		t.Errorf("Meggie mean per-node power = %.1f W, want ~114 W", s.Mean)
	}
	if s.CVPercent < 10 || s.CVPercent > 28 {
		t.Errorf("Meggie power CV = %.1f%%, want ~18%%", s.CVPercent)
	}
}

func TestCalibrationUtilization(t *testing.T) {
	// Paper Fig. 1: Emmy ≈87%, Meggie ≈80% system utilization.
	util := func(ds *trace.Dataset) float64 {
		var sum float64
		for _, s := range ds.System {
			sum += float64(s.ActiveNodes) / float64(ds.Meta.TotalNodes)
		}
		return sum / float64(len(ds.System))
	}
	ue, um := util(emmy(t)), util(meggie(t))
	if ue < 0.75 || ue > 0.97 {
		t.Errorf("Emmy utilization = %.2f, want ~0.87", ue)
	}
	if um < 0.68 || um > 0.92 {
		t.Errorf("Meggie utilization = %.2f, want ~0.80", um)
	}
}

func TestCalibrationPowerUtilization(t *testing.T) {
	// Paper Fig. 2: Emmy ≈69% (never >85%), Meggie ≈51% (never >70%).
	powerUtil := func(ds *trace.Dataset) (mean, max float64) {
		budget := float64(ds.Meta.TotalNodes) * ds.Meta.NodeTDPW
		var sum float64
		for _, s := range ds.System {
			u := s.TotalPowerW / budget
			sum += u
			if u > max {
				max = u
			}
		}
		return sum / float64(len(ds.System)), max
	}
	em, ex := powerUtil(emmy(t))
	if em < 0.60 || em > 0.78 {
		t.Errorf("Emmy power utilization = %.2f, want ~0.69", em)
	}
	if ex > 0.88 {
		t.Errorf("Emmy peak power utilization = %.2f, paper: never above 0.85", ex)
	}
	mm, mx := powerUtil(meggie(t))
	if mm < 0.44 || mm > 0.62 {
		t.Errorf("Meggie power utilization = %.2f, want ~0.51", mm)
	}
	if mx > 0.75 {
		t.Errorf("Meggie peak power utilization = %.2f, paper: never above 0.70", mx)
	}
}

func TestCalibrationTable2Correlations(t *testing.T) {
	// Paper Table 2 (Spearman): Emmy length 0.42 / size 0.21; Meggie
	// length 0.12 / size 0.42. We assert sign, rough magnitude, and the
	// ordering flip between the systems.
	corrs := func(ds *trace.Dataset) (length, size stats.CorrResult) {
		var lens, sizes, pows []float64
		for i := range ds.Jobs {
			j := &ds.Jobs[i]
			lens = append(lens, j.Runtime().Hours())
			sizes = append(sizes, float64(j.Nodes))
			pows = append(pows, float64(j.AvgPowerPerNode))
		}
		return stats.SpearmanTest(lens, pows), stats.SpearmanTest(sizes, pows)
	}
	el, es := corrs(emmy(t))
	ml, ms := corrs(meggie(t))
	if el.R < 0.20 || el.R > 0.60 {
		t.Errorf("Emmy length-power Spearman = %.2f, want ~0.42", el.R)
	}
	if es.R < 0.05 || es.R > 0.40 {
		t.Errorf("Emmy size-power Spearman = %.2f, want ~0.21", es.R)
	}
	if ml.R < -0.05 || ml.R > 0.30 {
		t.Errorf("Meggie length-power Spearman = %.2f, want ~0.12", ml.R)
	}
	if ms.R < 0.20 || ms.R > 0.60 {
		t.Errorf("Meggie size-power Spearman = %.2f, want ~0.42", ms.R)
	}
	if !(el.R > es.R) {
		t.Errorf("Emmy: length (%.2f) should beat size (%.2f)", el.R, es.R)
	}
	if !(ms.R > ml.R) {
		t.Errorf("Meggie: size (%.2f) should beat length (%.2f)", ms.R, ml.R)
	}
	for _, c := range []stats.CorrResult{el, es, ms} {
		if c.P > 0.01 {
			t.Errorf("correlation p-value = %v, want ≈0", c.P)
		}
	}
}

func TestCalibrationUserConcentration(t *testing.T) {
	// Paper Fig. 11: top 20% of users hold ≈85% of node-hours and energy.
	for _, ds := range []*trace.Dataset{emmy(t), meggie(t)} {
		nodeHours := map[string]float64{}
		energy := map[string]float64{}
		for i := range ds.Jobs {
			j := &ds.Jobs[i]
			nodeHours[j.User] += float64(j.NodeHours())
			energy[j.User] += float64(j.Energy)
		}
		nh := make([]float64, 0, len(nodeHours))
		for _, v := range nodeHours {
			nh = append(nh, v)
		}
		en := make([]float64, 0, len(energy))
		for _, v := range energy {
			en = append(en, v)
		}
		shareNH := stats.NewConcentration(nh).TopShare(0.2)
		shareEN := stats.NewConcentration(en).TopShare(0.2)
		if shareNH < 0.70 {
			t.Errorf("%s: top-20%% node-hours share = %.2f, want ~0.85", ds.Meta.System, shareNH)
		}
		if shareEN < 0.70 {
			t.Errorf("%s: top-20%% energy share = %.2f, want ~0.85", ds.Meta.System, shareEN)
		}
		k := len(nodeHours) / 5
		if overlap := stats.TopOverlap(nodeHours, energy, k); overlap < 0.75 {
			t.Errorf("%s: node-hours/energy top-set overlap = %.2f, want ~0.9", ds.Meta.System, overlap)
		}
	}
}

func TestCalibrationTemporalSpatial(t *testing.T) {
	// Paper §4: mean temporal CV ≈11%; mean peak overshoot ≈10-12%; mean
	// spatial spread ≈20 W and ≈15% of per-node power.
	ds := emmy(t)
	var cv, over, spreadW, spreadPct []float64
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		cv = append(cv, j.TemporalCVPct)
		over = append(over, j.PeakOvershootPct)
		if j.Nodes >= 2 {
			spreadW = append(spreadW, j.AvgSpatialSpreadW)
			spreadPct = append(spreadPct, j.SpatialSpreadPct)
		}
	}
	if m := stats.Mean(cv); m < 3 || m > 16 {
		t.Errorf("mean temporal CV = %.1f%%, want ~11%%", m)
	}
	if m := stats.Mean(over); m < 6 || m > 18 {
		t.Errorf("mean peak overshoot = %.1f%%, want ~10-12%%", m)
	}
	if m := stats.Mean(spreadW); m < 10 || m > 32 {
		t.Errorf("mean spatial spread = %.1f W, want ~20 W", m)
	}
	if m := stats.Mean(spreadPct); m < 8 || m > 24 {
		t.Errorf("mean spatial spread %% = %.1f%%, want ~15%%", m)
	}
}

func TestCalibrationRankingFlip(t *testing.T) {
	// Paper Fig. 4: MD-0 and FASTEST swap their per-node power ranking
	// between the systems.
	appMean := func(ds *trace.Dataset, app string) float64 {
		var sum float64
		n := 0
		for i := range ds.Jobs {
			if ds.Jobs[i].App == app {
				sum += float64(ds.Jobs[i].AvgPowerPerNode)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	e, m := emmy(t), meggie(t)
	if !(appMean(e, "MD-0") > appMean(e, "FASTEST")) {
		t.Errorf("Emmy: MD-0 (%f) should out-draw FASTEST (%f)", appMean(e, "MD-0"), appMean(e, "FASTEST"))
	}
	if !(appMean(m, "FASTEST") > appMean(m, "MD-0")) {
		t.Errorf("Meggie: FASTEST (%f) should out-draw MD-0 (%f)", appMean(m, "FASTEST"), appMean(m, "MD-0"))
	}
}

func BenchmarkGenerateEmmyDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := EmmyConfig(1.0/151, uint64(i))
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJobInvariants(t *testing.T) {
	ds := emmy(t)
	validApps := map[string]bool{}
	for _, a := range apps.Catalog() {
		validApps[a.Name] = true
	}
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		if !validApps[j.App] {
			t.Fatalf("job %d runs unknown app %q", j.ID, j.App)
		}
		if len(j.User) != 4 || j.User[0] != 'u' {
			t.Fatalf("job %d has malformed user %q", j.ID, j.User)
		}
		if j.Runtime() > j.ReqWall {
			t.Fatalf("job %d ran %v beyond its %v walltime", j.ID, j.Runtime(), j.ReqWall)
		}
		if !j.Instrumented {
			t.Fatalf("job %d not instrumented", j.ID)
		}
		// Energy identity: Energy = AvgPowerPerNode × nodes × minutes × 60.
		want := float64(j.AvgPowerPerNode) * float64(j.Nodes) * float64(j.RuntimeMinutes()) * 60
		if got := float64(j.Energy); got != 0 && (got < 0.999*want || got > 1.001*want) {
			t.Fatalf("job %d energy %v inconsistent with power (%v)", j.ID, got, want)
		}
		// Power within the synthesizer's clamp.
		if p := float64(j.AvgPowerPerNode); p < 0.1*ds.Meta.NodeTDPW || p > ds.Meta.NodeTDPW {
			t.Fatalf("job %d power %v outside [0.1, 1]×TDP", j.ID, p)
		}
	}
}

func TestRetainedSeriesShape(t *testing.T) {
	ds := emmy(t)
	for id, series := range ds.Series {
		j := ds.Job(id)
		if j == nil {
			t.Fatalf("series for unknown job %d", id)
		}
		if len(series) != j.Nodes {
			t.Fatalf("job %d: %d series for %d nodes", id, len(series), j.Nodes)
		}
		for n, ns := range series {
			if ns.Node != n {
				t.Fatalf("job %d: series %d labeled node %d", id, n, ns.Node)
			}
			if len(ns.Power) != j.RuntimeMinutes() {
				t.Fatalf("job %d: %d samples for %d minutes", id, len(ns.Power), j.RuntimeMinutes())
			}
			if !ns.Start.Equal(j.Start) {
				t.Fatalf("job %d: series starts at %v, job at %v", id, ns.Start, j.Start)
			}
		}
	}
}

func TestLoadShapeBounds(t *testing.T) {
	// The arrival modulation must stay within sane bounds and dip on
	// weekends and at night.
	weekdayNoon := time.Date(2018, 10, 3, 12, 0, 0, 0, time.UTC) // Wednesday
	weekdayNight := time.Date(2018, 10, 3, 3, 0, 0, 0, time.UTC) // Wednesday 3am
	weekendNoon := time.Date(2018, 10, 6, 12, 0, 0, 0, time.UTC) // Saturday
	if !(loadShape(weekdayNoon) > loadShape(weekdayNight)) {
		t.Error("night load not below day load")
	}
	if !(loadShape(weekdayNoon) > loadShape(weekendNoon)) {
		t.Error("weekend load not below weekday load")
	}
	for _, ts := range []time.Time{weekdayNoon, weekdayNight, weekendNoon} {
		if f := loadShape(ts); f < 0.3 || f > 1.5 {
			t.Errorf("loadShape(%v) = %v", ts, f)
		}
	}
}

func TestDrawRuntimeBounds(t *testing.T) {
	src := rng.New(9)
	pop, err := users.NewPopulation(cluster.Emmy(), users.DefaultParams(cluster.Emmy()), src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		u := pop.SampleUser(src)
		c := u.SampleConfig(src, 0.5)
		run := drawRuntime(c, src)
		if run < time.Minute {
			t.Fatalf("runtime %v below a minute", run)
		}
		if run > c.ReqWall {
			t.Fatalf("runtime %v exceeds request %v", run, c.ReqWall)
		}
	}
}

func TestTargetMeanPowerClamped(t *testing.T) {
	spec := cluster.Emmy()
	cal := calibrationFor(spec.Arch)
	app, err := apps.ByName("GROMACS")
	if err != nil {
		t.Fatal(err)
	}
	// Extreme tilt and size must stay within the clamp.
	c := users.Config{App: "GROMACS", Nodes: 128, ReqWall: 72 * time.Hour, PowerTilt: 1.4, WallUseMean: 0.98}
	w := targetMeanPower(spec, cal, app, c)
	if w > 0.97*float64(spec.NodeTDP) || w <= 0 {
		t.Errorf("power %v outside clamp", w)
	}
	c = users.Config{App: "GROMACS", Nodes: 1, ReqWall: time.Hour, PowerTilt: 0.6, WallUseMean: 0.1}
	w = targetMeanPower(spec, cal, app, c)
	if w < 0.15*float64(spec.NodeTDP) {
		t.Errorf("power %v below clamp", w)
	}
}

func TestWinterBreakDip(t *testing.T) {
	christmas := time.Date(2018, 12, 25, 12, 0, 0, 0, time.UTC) // Tuesday
	newYear := time.Date(2019, 1, 1, 12, 0, 0, 0, time.UTC)     // Tuesday
	ordinary := time.Date(2018, 11, 6, 12, 0, 0, 0, time.UTC)   // Tuesday
	if !isWinterBreak(christmas) || !isWinterBreak(newYear) {
		t.Error("holiday window not detected")
	}
	if isWinterBreak(ordinary) {
		t.Error("ordinary day flagged as holiday")
	}
	if !(loadShape(christmas) < 0.75*loadShape(ordinary)) {
		t.Errorf("no holiday dip: %v vs %v", loadShape(christmas), loadShape(ordinary))
	}
}
