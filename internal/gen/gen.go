// Package gen synthesizes complete five-month power-trace datasets for the
// Emmy and Meggie systems: the substitution for the paper's production
// data collection.
//
// The pipeline chains every substrate of the reproduction:
//
//	users.Population ──▶ job submissions ──▶ sched.Simulate (FCFS+EASY)
//	     │                                          │
//	     └── per-config power tilts                 ▼
//	                                   telemetry.Synthesize per job
//	                                          │
//	            trace.Dataset  ◀── jobs + system series + sample series
//
// Generation is parallel across jobs (a worker pool sized to GOMAXPROCS)
// and fully deterministic: every job derives an rng substream from
// (seed, jobID), so the dataset is bit-identical for a given Config no
// matter how many workers run.
package gen

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"hpcpower/internal/apps"
	"hpcpower/internal/cluster"
	"hpcpower/internal/rng"
	"hpcpower/internal/sched"
	"hpcpower/internal/telemetry"
	"hpcpower/internal/trace"
	"hpcpower/internal/units"
	"hpcpower/internal/users"
)

// Config parameterizes dataset synthesis for one system.
type Config struct {
	Spec  cluster.Spec
	Users users.Params
	// Start and Duration define the observation window. The paper's
	// window is Oct 1 2018 to Feb 28 2019 (151 days).
	Start    time.Time
	Duration time.Duration
	// OfferedLoad is the mean offered load as a fraction of machine
	// capacity. Values near (but below) 1 reproduce the production regime
	// of high utilization with queueing.
	OfferedLoad float64
	// Seed makes the dataset reproducible.
	Seed uint64
	// KeepSeries bounds how many jobs retain raw per-node minute series
	// in the released dataset (the paper instruments a subset).
	KeepSeries int
	// Workers overrides the worker-pool size (0 = GOMAXPROCS).
	Workers int
}

// StudyStart is the first day of the paper's observation window.
var StudyStart = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)

// StudyDuration is the five-month window of the paper (Oct'18 - Feb'19).
const StudyDuration = 151 * 24 * time.Hour

// EmmyConfig returns the default generation config for Emmy, scaled by
// scale in (0, 1]: scale 1 is the full five-month study (~48k jobs).
func EmmyConfig(scale float64, seed uint64) Config {
	spec := cluster.Emmy()
	return Config{
		Spec:        spec,
		Users:       users.DefaultParams(spec),
		Start:       StudyStart,
		Duration:    scaleDuration(scale),
		OfferedLoad: 0.98,
		Seed:        seed,
		KeepSeries:  40,
	}
}

// MeggieConfig returns the default generation config for Meggie, scaled by
// scale in (0, 1]: scale 1 is the full five-month study (~36k jobs).
func MeggieConfig(scale float64, seed uint64) Config {
	spec := cluster.Meggie()
	return Config{
		Spec:        spec,
		Users:       users.DefaultParams(spec),
		Start:       StudyStart,
		Duration:    scaleDuration(scale),
		OfferedLoad: 0.90,
		Seed:        seed,
		KeepSeries:  40,
	}
}

func scaleDuration(scale float64) time.Duration {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	d := time.Duration(float64(StudyDuration) * scale)
	if d < 24*time.Hour {
		d = 24 * time.Hour
	}
	return d
}

// Calibration constants per architecture: how per-node power scales with
// job size and length. The paper's Table 2 finds length the stronger
// correlate on Emmy (ρ≈0.42 vs 0.21) and size the stronger one on Meggie
// (ρ≈0.42 vs 0.12); these exponents, together with the application
// structure, reproduce those orderings.
type calibration struct {
	SizeCoeff   float64 // per unit ln(nodes/4)
	LengthCoeff float64 // per unit ln(runtimeHours/6)
	IdleFrac    float64 // idle node draw as fraction of TDP
}

func calibrationFor(arch cluster.Arch) calibration {
	switch arch {
	case cluster.Broadwell:
		return calibration{SizeCoeff: 0.070, LengthCoeff: 0.002, IdleFrac: 0.15}
	default: // IvyBridge
		return calibration{SizeCoeff: 0.045, LengthCoeff: 0.028, IdleFrac: 0.15}
	}
}

// submission couples a scheduler request with its generating config.
type submission struct {
	cfg users.Config
}

// Generate synthesizes the dataset described by cfg.
func Generate(cfg Config) (*trace.Dataset, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.OfferedLoad <= 0 || cfg.OfferedLoad > 1.5 {
		return nil, fmt.Errorf("gen: offered load %v out of (0, 1.5]", cfg.OfferedLoad)
	}
	if cfg.Duration < time.Hour {
		return nil, fmt.Errorf("gen: duration %v too short", cfg.Duration)
	}
	root := rng.New(cfg.Seed)
	pop, err := users.NewPopulation(cfg.Spec, cfg.Users, root.Split(1))
	if err != nil {
		return nil, err
	}

	reqs, subs := synthesizeArrivals(cfg, pop, root)
	placements, err := sched.Simulate(cfg.Spec.Nodes, reqs)
	if err != nil {
		return nil, err
	}

	grid := units.GridOver(cfg.Start, cfg.Start.Add(cfg.Duration))
	ds, err := synthesizeTelemetry(cfg, placements, subs, grid, root)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// synthesizeArrivals draws the submission stream: a nonhomogeneous Poisson
// process with weekly and diurnal modulation, users sampled by activity,
// configs from each user's repertoire.
func synthesizeArrivals(cfg Config, pop *users.Population, root *rng.Source) ([]sched.Request, map[uint64]submission) {
	src := root.Split(2)
	// Estimate mean node-minutes per submission to convert offered load
	// into an arrival rate.
	est := root.Split(3)
	var nodeMinutes float64
	const probes = 4000
	for i := 0; i < probes; i++ {
		u := pop.SampleUser(est)
		c := u.SampleConfig(est, cfg.Users.Diversity)
		run := expectedRuntime(c)
		nodeMinutes += float64(c.Nodes) * run.Minutes()
	}
	meanNodeMinutes := nodeMinutes / probes
	// Arrivals per minute so that offered node-minutes/minute equals
	// OfferedLoad × machine size.
	lambda := cfg.OfferedLoad * float64(cfg.Spec.Nodes) / meanNodeMinutes

	var reqs []sched.Request
	subs := make(map[uint64]submission)
	end := cfg.Start.Add(cfg.Duration)
	id := uint64(1)
	for t := cfg.Start; t.Before(end); {
		rate := lambda * loadShape(t)
		dt := src.Exp(1 / rate) // minutes until the next arrival
		// Whole-second submissions: accounting logs are second-granular,
		// and the released CSV stores unix seconds, so sub-second times
		// would not survive a round trip.
		t = t.Add(time.Duration(dt * float64(time.Minute))).Truncate(time.Second)
		if !t.Before(end) {
			break
		}
		jsrc := root.Split(4, id)
		u := pop.SampleUser(jsrc)
		c := u.SampleConfig(jsrc, cfg.Users.Diversity)
		run := drawRuntime(c, jsrc)
		reqs = append(reqs, sched.Request{
			ID: id, User: u.ID, App: c.App, Nodes: c.Nodes,
			ReqWall: c.ReqWall, Runtime: run, Submit: t,
		})
		subs[id] = submission{cfg: c}
		id++
	}
	return reqs, subs
}

// loadShape modulates the arrival rate: weekdays above weekends, days
// above nights, and a holiday dip over the winter break — the usage
// pattern visible in the paper's Fig. 1 (the window spans Christmas).
func loadShape(t time.Time) float64 {
	f := 1.0
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		f *= 0.70
	}
	h := t.Hour()
	if h >= 8 && h < 20 {
		f *= 1.15
	} else {
		f *= 0.85
	}
	if isWinterBreak(t) {
		f *= 0.55
	}
	return f
}

// isWinterBreak reports whether t falls in the Dec 23 - Jan 2 window.
func isWinterBreak(t time.Time) bool {
	m, d := t.Month(), t.Day()
	return (m == time.December && d >= 23) || (m == time.January && d <= 2)
}

// expectedRuntime returns the mean actual runtime of a config.
func expectedRuntime(c users.Config) time.Duration {
	return time.Duration(float64(c.ReqWall) * c.WallUseMean)
}

// drawRuntime draws a job's actual runtime: a truncated normal fraction
// of the request around the config's mean use, with a small chance of an
// early failure and of running into the walltime kill.
func drawRuntime(c users.Config, src *rng.Source) time.Duration {
	// ~4% of runs die early (crash, bad input): minutes-scale runtimes.
	if src.Bool(0.02) {
		d := time.Duration(1+src.Intn(15)) * time.Minute
		return d
	}
	frac := src.TruncNormal(c.WallUseMean, 0.12, 0.03, 1.0)
	d := time.Duration(frac * float64(c.ReqWall)).Truncate(time.Second)
	if d < time.Minute {
		d = time.Minute
	}
	return d
}

// jobResult carries one synthesized job out of the worker pool.
type jobResult struct {
	job    trace.Job
	series []trace.NodeSeries // nil unless the job retains raw samples
	// startIdx and minutePower hold the job's total power per minute for
	// the cluster series; merging happens serially in placement order so
	// the dataset is bit-identical for any worker count.
	startIdx    int
	minutePower []float64
}

// synthesizeTelemetry runs the per-job power synthesis in parallel and
// assembles the final dataset.
func synthesizeTelemetry(cfg Config, placements []sched.Placement, subs map[uint64]submission, grid units.TimeGrid, root *rng.Source) (*trace.Dataset, error) {
	cal := calibrationFor(cfg.Spec.Arch)
	fleet := cluster.NewFleet(cfg.Spec, root.Split(5))

	// Jobs that retain raw series: the first KeepSeries multi-node jobs
	// with at least 30 minutes of runtime, by ID (deterministic).
	keep := make(map[uint64]bool)
	if cfg.KeepSeries > 0 {
		ids := make([]uint64, 0, len(placements))
		for i := range placements {
			p := &placements[i]
			if p.Nodes >= 2 && p.Runtime >= 30*time.Minute {
				ids = append(ids, p.ID)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for i := 0; i < len(ids) && i < cfg.KeepSeries; i++ {
			keep[ids[i]] = true
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	results := make([]jobResult, len(placements))
	var firstErr error
	var errOnce sync.Once

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := synthesizeOne(cfg, cal, fleet, &placements[i], subs, keep, grid, root, &results[i]); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := range placements {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Serial, order-independent-of-workers reduction of the cluster
	// minute power series.
	jobPower := make([]float64, grid.N)
	for i := range results {
		r := &results[i]
		for m, v := range r.minutePower {
			idx := r.startIdx + m
			if idx >= 0 && idx < grid.N {
				jobPower[idx] += v
			}
		}
		r.minutePower = nil
	}

	ds := &trace.Dataset{
		Meta: trace.Meta{
			System:     cfg.Spec.Name,
			TotalNodes: cfg.Spec.Nodes,
			NodeTDPW:   float64(cfg.Spec.NodeTDP),
			Start:      grid.Start,
			End:        grid.End(),
			Seed:       cfg.Seed,
		},
		Series: map[uint64][]trace.NodeSeries{},
	}
	for i := range results {
		r := &results[i]
		if r.job.ID == 0 {
			continue // job outside the observation window
		}
		ds.Jobs = append(ds.Jobs, r.job)
		if r.series != nil {
			ds.Series[r.job.ID] = r.series
		}
	}
	ds.SortJobs()

	// System series: busy nodes from the scheduler, power from the jobs
	// plus the idle draw of unoccupied nodes.
	active := sched.ActiveNodes(placements, grid)
	idleW := cal.IdleFrac * float64(cfg.Spec.NodeTDP)
	ds.System = make([]trace.SystemSample, grid.N)
	for i := 0; i < grid.N; i++ {
		idle := cfg.Spec.Nodes - active[i]
		ds.System[i] = trace.SystemSample{
			Time:        grid.At(i),
			ActiveNodes: active[i],
			TotalPowerW: jobPower[i] + float64(idle)*idleW,
		}
	}
	return ds, nil
}

// synthesizeOne produces the trace record for a single placement and adds
// its per-minute power into the worker's local minute buckets.
func synthesizeOne(cfg Config, cal calibration, fleet *cluster.Fleet, p *sched.Placement, subs map[uint64]submission, keep map[uint64]bool, grid units.TimeGrid, root *rng.Source, out *jobResult) error {
	// Only jobs that start within the observation window enter the
	// released job table (matching how accounting windows are cut).
	if p.Start.Before(grid.Start) || !p.Start.Before(grid.End()) {
		return nil
	}
	sub, ok := subs[p.ID]
	if !ok {
		return fmt.Errorf("gen: placement %d has no submission record", p.ID)
	}
	app, err := apps.ByName(sub.cfg.App)
	if err != nil {
		return err
	}

	minutes := units.Minutes(p.Runtime)
	meanW := targetMeanPower(cfg.Spec, cal, app, sub.cfg)

	jsrc := root.Split(6, p.ID)
	params := telemetry.Params{
		JobID: p.ID, App: app, Spec: cfg.Spec,
		NodeIDs: p.NodeIDs, Minutes: minutes,
		MeanPowerW: meanW, Src: jsrc,
	}

	// Stream per-minute job power into the cluster minute buckets; retain
	// raw series only for selected jobs.
	startIdx := int((p.Start.Sub(grid.Start) + units.SampleInterval - 1) / units.SampleInterval)
	var series []trace.NodeSeries
	if keep[p.ID] {
		series = make([]trace.NodeSeries, len(p.NodeIDs))
		for n := range series {
			series[n] = trace.NodeSeries{
				JobID: p.ID, Node: n, Start: p.Start,
				Power: make([]float64, 0, minutes),
			}
		}
	}
	out.startIdx = startIdx
	out.minutePower = make([]float64, 0, minutes)
	emit := func(minute int, powers []float64) {
		var sum float64
		for _, pw := range powers {
			sum += pw
		}
		out.minutePower = append(out.minutePower, sum)
		if series != nil {
			for n, pw := range powers {
				series[n].Power = append(series[n].Power, pw)
			}
		}
	}
	summary, err := telemetry.Synthesize(params, fleet, emit)
	if err != nil {
		return err
	}

	out.job = trace.Job{
		ID: p.ID, User: p.User, App: p.App, Nodes: p.Nodes,
		Submit: p.Submit, Start: p.Start, End: p.End, ReqWall: p.ReqWall,
		AvgPowerPerNode:       units.Watts(summary.AvgPowerPerNode),
		Energy:                units.Joules(summary.Energy),
		Instrumented:          true,
		TemporalCVPct:         summary.TemporalCVPct,
		PeakOvershootPct:      summary.PeakOvershootPct,
		PctTimeAboveMean10:    summary.PctTimeAboveMean10,
		AvgSpatialSpreadW:     summary.AvgSpatialSpreadW,
		SpatialSpreadPct:      summary.SpatialSpreadPct,
		PctTimeSpreadAboveAvg: summary.PctTimeSpreadAboveAvg,
		NodeEnergySpreadPct:   summary.NodeEnergySpreadPct,
	}
	out.series = series
	return nil
}

// targetMeanPower computes a job's target mean per-node power: the
// application's architecture-specific fraction of TDP, the configuration's
// persistent tilt, and the calibrated size and length scalings.
//
// The length scaling uses the configuration's EXPECTED runtime, not the
// realized one: power draw is a property of what the job computes, so
// repeated runs of one configuration draw near-identical power — the
// repetitive-job structure behind the paper's Figs. 13-15 — while the
// cross-job correlation between runtime and power (Table 2) still emerges
// because the expected and realized runtimes track each other.
func targetMeanPower(spec cluster.Spec, cal calibration, app apps.Profile, c users.Config) float64 {
	frac := app.PowerFrac[spec.Arch] * c.PowerTilt
	frac *= 1 + cal.SizeCoeff*math.Log(float64(c.Nodes)/4)
	hours := c.ReqWall.Hours() * c.WallUseMean
	if hours < 0.05 {
		hours = 0.05
	}
	frac *= 1 + cal.LengthCoeff*math.Log(hours/6)
	frac = units.Clamp(frac, 0.15, 0.97)
	return frac * float64(spec.NodeTDP)
}
