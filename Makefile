GO ?= go

.PHONY: all build vet test race bench bench-block smoke chaos-smoke crash-smoke failover-smoke election-smoke disk-smoke overload-smoke anomaly-smoke fuzz-wal fuzz-repl fuzz-block fuzz-vfs fuzz-admit fuzz-elect fuzz-anomaly block-check obs-check ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serving-layer benchmarks (tsdb write hot path + predict handler).
bench:
	$(GO) test -run xxx -bench 'IngestBatch|PredictEndpoint' -benchtime=1s .

# Block-store benchmarks: Gorilla encode cost + bytes/sample, and the
# merged range-scan hot path behind /v1/query/range.
bench-block:
	$(GO) test -run xxx -bench 'BlockEncode|RangeScan' -benchtime=1s ./internal/block/

# End-to-end smoke: generate a small dataset, export a model, start
# powserved on a random port, replay the dataset with powload, and check
# zero dropped batches + offline/online prediction parity.
smoke:
	./scripts/smoke.sh

# Chaos smoke: replay through a fault-injecting proxy and verify zero
# loss / zero double-counting against a fault-free baseline.
chaos-smoke:
	./scripts/chaos_smoke.sh

# Crash smoke: SIGKILL powserved mid-ingest, corrupt the WAL tail, and
# verify the recovered analytics are byte-identical to a control run.
crash-smoke:
	./scripts/crash_smoke.sh

# Failover smoke: replicated primary/standby pair under ≥10% injected
# faults; SIGKILL the primary mid-ingest, promote the standby, and
# verify zero loss, byte-identical analytics, and stale-primary fencing.
failover-smoke:
	./scripts/failover_smoke.sh

# Election smoke (jepsen-lite): a 3-node failover group — primary,
# standby, witness — behind per-link chaos proxies, driven through six
# rounds of SIGKILLs, symmetric and asymmetric partitions, and link
# flaps with no operator intervention. Verifies bounded leader
# recovery, a single lease-holder at every settled point, automatic
# rejoin of deposed primaries (diverged-WAL truncation), zero acked
# loss, and analytics byte-identical to a fault-free control.
election-smoke:
	./scripts/election_smoke.sh

# Disk-fault smoke: powserved under an injected filesystem (vfs.FaultFS)
# — an ENOSPC window mid-ingest, probe EIO, and an offline bit flip of a
# sealed block. Verifies 503 storage_degraded backpressure with zero
# loss, self-clearing degraded mode, and scrub quarantine with
# bit-exact rollup fallback.
disk-smoke:
	./scripts/disk_smoke.sh

# Overload smoke: drive the admission layer at 2x measured capacity
# through a fault-injecting proxy (with a replicating follower) and
# verify shed-not-crash: zero loss for acked batches, goodput near
# capacity, bounded accounted memory, drained replication lag, and a
# memory-watermark degrade/clear cycle with the full 429 surface.
overload-smoke:
	./scripts/overload_smoke.sh

# Anomaly smoke: the fault-free paper workload must fire zero alerts;
# labeled anomalous jobs injected through the chaos proxy must be
# detected with precision >= 0.9 and recall >= 0.9; and one trace ID
# must grep from the shipper log through the WAL to the fired alert.
anomaly-smoke:
	./scripts/anomaly_smoke.sh

# Fuzz the WAL segment reader: arbitrary corruption must yield clean
# truncation or a typed error, never a panic or a silently wrong record.
fuzz-wal:
	$(GO) test -run xxx -fuzz FuzzSegmentRead -fuzztime 30s ./internal/wal/

# Fuzz the replication stream reader: arbitrary bytes must yield clean
# frames, ErrTorn, or a typed corruption error — never a panic.
fuzz-repl:
	$(GO) test -run xxx -fuzz FuzzReplStream -fuzztime 30s ./internal/repl/

# Fuzz the block chunk decoder and the block-file index/read path:
# arbitrary bytes must decode or error — never panic or over-read.
fuzz-block:
	$(GO) test -run xxx -fuzz FuzzChunkDecode -fuzztime 30s ./internal/block/
	$(GO) test -run xxx -fuzz FuzzBlockIndex -fuzztime 30s ./internal/block/

# Fuzz the fault-injection layer and WAL recovery under it: the
# -fault-disk spec parser must never panic, and a single-byte flip
# anywhere in a sealed segment must recover to an exact prefix of the
# original records.
fuzz-vfs:
	$(GO) test -run xxx -fuzz FuzzParseFaultSpec -fuzztime 15s ./internal/vfs/
	$(GO) test -run xxx -fuzz FuzzWALBitFlip -fuzztime 30s ./internal/wal/

# Fuzz the admission-spec parser: arbitrary specs must parse or error —
# never panic — and every accepted spec must round-trip through String.
fuzz-admit:
	$(GO) test -run xxx -fuzz FuzzParseConfig -fuzztime 30s ./internal/admit/

# Fuzz the election and frontier wire decoders: arbitrary bytes from an
# untrusted peer must decode or error — never panic — and every
# accepted message must survive an encode/decode round trip.
fuzz-elect:
	$(GO) test -run xxx -fuzz FuzzElectDecode -fuzztime 30s ./internal/elect/
	$(GO) test -run xxx -fuzz FuzzFrontierDecode -fuzztime 30s ./internal/repl/

# Fuzz the anomaly layer: the rule-spec parser must parse or error
# (and every accepted spec must round-trip through String), and
# fingerprint / engine-state JSON from a snapshot or peer must restore
# or error — never panic, never poison the engine.
fuzz-anomaly:
	$(GO) test -run xxx -fuzz FuzzParseRules -fuzztime 30s ./internal/anomaly/
	$(GO) test -run xxx -fuzz FuzzFingerprintDecode -fuzztime 15s ./internal/anomaly/
	$(GO) test -run xxx -fuzz FuzzEngineStateDecode -fuzztime 15s ./internal/anomaly/

# Block-store gate: vet plus the block and tsdb packages (encode/decode
# losslessness, rollup exactness, head/block merge, crash frontier)
# under the race detector.
block-check:
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/block/ ./internal/tsdb/

# Observability gate: vet, the obs package under the race detector
# (lock-free histogram Observe vs. concurrent /metrics scrapes), and
# the serving layer's exposition-format lint + legacy-name regression.
obs-check:
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -count=1 -run 'TestMetrics|TestIngestTrace|TestTracePropagates' ./internal/serve/

ci: vet build race obs-check block-check smoke crash-smoke failover-smoke election-smoke disk-smoke overload-smoke anomaly-smoke
