GO ?= go

.PHONY: all build vet test race bench smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serving-layer benchmarks (tsdb write hot path + predict handler).
bench:
	$(GO) test -run xxx -bench 'IngestBatch|PredictEndpoint' -benchtime=1s .

# End-to-end smoke: generate a small dataset, export a model, start
# powserved on a random port, replay the dataset with powload, and check
# zero dropped batches + offline/online prediction parity.
smoke:
	./scripts/smoke.sh

ci: vet build race smoke
